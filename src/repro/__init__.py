"""repro — adaptive sampling for top-K group betweenness centrality.

A complete, self-contained reproduction of *“An Adaptive Sampling
Algorithm for the Top-K Group Betweenness Centrality”* (ICDE 2025):
the AdaAlg algorithm, the HEDGE / CentRa / EXHAUST comparison
algorithms, exact references (Brandes, Puzis greedy, brute force), the
graph and sampling substrates they run on, and the experiment harness
that regenerates every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import AdaAlg, datasets
>>> graph = datasets.load("GrQc", seed=7)
>>> result = AdaAlg(eps=0.3, gamma=0.01, seed=7).run(graph, k=10)
>>> len(result.group)
10
"""

from . import (
    bounds,
    coverage,
    datasets,
    engine,
    experiments,
    graph,
    nodebc,
    paths,
    session,
)
from .algorithms import (
    AdaAlg,
    BruteForce,
    CentRa,
    Exhaust,
    GBCAlgorithm,
    GBCResult,
    Hedge,
    PuzisGreedy,
)
from .exceptions import (
    AlgorithmError,
    CheckpointError,
    DatasetError,
    GraphError,
    ParameterError,
    ReproError,
    SessionInterrupted,
)
from .engine import (
    BatchEngine,
    ProcessPoolEngine,
    SampleEngine,
    SerialEngine,
    create_engine,
)
from .graph import CSRGraph, WeightedCSRGraph, from_edges, from_weighted_edges
from .paths import PathSampler, betweenness_centrality, exact_gbc, normalized_gbc
from .session import SampleStore, SamplingSession

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AdaAlg",
    "Hedge",
    "CentRa",
    "Exhaust",
    "PuzisGreedy",
    "BruteForce",
    "GBCAlgorithm",
    "GBCResult",
    "CSRGraph",
    "WeightedCSRGraph",
    "from_edges",
    "from_weighted_edges",
    "PathSampler",
    "SampleEngine",
    "SerialEngine",
    "BatchEngine",
    "ProcessPoolEngine",
    "create_engine",
    "betweenness_centrality",
    "exact_gbc",
    "normalized_gbc",
    "SampleStore",
    "SamplingSession",
    "ReproError",
    "GraphError",
    "ParameterError",
    "AlgorithmError",
    "DatasetError",
    "CheckpointError",
    "SessionInterrupted",
    "graph",
    "paths",
    "engine",
    "coverage",
    "bounds",
    "datasets",
    "experiments",
    "nodebc",
    "session",
]
