"""A small blocking client for the serve protocol.

Used by the test suite and the CI smoke script; production callers can
speak the one-line-of-JSON-per-request protocol from any language.

::

    with ServeClient(port=7332) as client:
        answer = client.query("SyntheticNetwork-BA", "adaalg", k=3,
                              eps=0.5, gamma=0.1, seed=7)
        print(answer["result"]["group"])
"""

from __future__ import annotations

import json
import socket

from ..exceptions import ServeError

__all__ = ["ServeClient"]

_DEFAULT_TIMEOUT = 300.0


class ServeClient:
    """One connection to a running ``repro-gbc serve`` daemon.

    Parameters
    ----------
    host, port:
        TCP endpoint (ignored when ``socket_path`` is given).
    socket_path:
        Unix-socket endpoint, when the daemon was started with
        ``--socket``.
    timeout:
        Per-response socket timeout in seconds — generous by default,
        since a cold query on a large dataset legitimately samples for
        a while.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int | None = None,
        socket_path: str | None = None,
        timeout: float = _DEFAULT_TIMEOUT,
    ):
        if socket_path:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            if port is None:
                raise ServeError("ServeClient needs a port or a socket_path")
            self._sock = socket.create_connection(
                (host, int(port)), timeout=timeout
            )
        self._reader = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    def request(self, frame: dict) -> dict:
        """Send one frame, block for its response line."""
        self._sock.sendall(json.dumps(frame).encode() + b"\n")
        line = self._reader.readline()
        if not line:
            raise ServeError("server closed the connection mid-request")
        return json.loads(line)

    def query(
        self,
        dataset: str,
        algorithm: str = "adaalg",
        *,
        k: int = 1,
        eps: float = 0.3,
        gamma: float = 0.01,
        seed: int = 0,
    ) -> dict:
        """One top-K query; raises :class:`~repro.exceptions.ServeError`
        on a server-side rejection or failure."""
        answer = self.request(
            {
                "op": "query",
                "dataset": dataset,
                "algorithm": algorithm,
                "k": k,
                "eps": eps,
                "gamma": gamma,
                "seed": seed,
            }
        )
        if not answer.get("ok"):
            raise ServeError(answer.get("error", "query failed"))
        return answer

    def mutate(
        self,
        dataset: str,
        *,
        insert=(),
        delete=(),
        reweight=(),
        touch_radius: int = 1,
    ) -> dict:
        """Apply an edge delta to a held dataset.

        ``insert`` rows are ``(u, v)`` or ``(u, v, w)``, ``delete``
        rows ``(u, v)``, ``reweight`` rows ``(u, v, w)``;
        ``touch_radius`` controls the invalidation frontier around
        each mutated edge (0 = endpoints only).  Returns the server's
        ``mutated`` summary (touched frontier size, samples
        invalidated/surviving across warm lanes, new graph version);
        raises :class:`~repro.exceptions.ServeError` on rejection.
        """
        answer = self.request(
            {
                "op": "mutate",
                "dataset": dataset,
                "insert": [list(map(int, row)) for row in insert],
                "delete": [list(map(int, row)) for row in delete],
                "reweight": [list(map(int, row)) for row in reweight],
                "touch_radius": int(touch_radius),
            }
        )
        if not answer.get("ok"):
            raise ServeError(answer.get("error", "mutation failed"))
        return answer

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
