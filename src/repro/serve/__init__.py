"""GBC-as-a-service: the long-lived top-K query daemon.

The ROADMAP's serving layer: load each graph once, keep one warm
:class:`~repro.session.SamplingSession` lane per
(dataset, algorithm, seed), and answer concurrent top-K queries over a
line-delimited JSON API with result caching, single-flight request
coalescing, and warm-store sample reuse.

Entry points:

* :func:`repro.serve.daemon.serve_main` — the ``repro-gbc serve``
  subcommand body.
* :class:`repro.serve.client.ServeClient` — a small blocking client
  for scripts and tests.

See ``docs/serving.md`` for the wire protocol, the cache/coalescing
semantics, and the drain behavior.
"""

from __future__ import annotations

from .cache import LRUCache
from .client import ServeClient
from .protocol import QueryKey, parse_request, result_payload

__all__ = [
    "LRUCache",
    "QueryKey",
    "ServeClient",
    "parse_request",
    "result_payload",
]
