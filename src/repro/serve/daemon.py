"""The resident query daemon behind ``repro-gbc serve``.

One asyncio event loop accepts line-delimited JSON frames over TCP or
a Unix socket; one dedicated compute thread runs the sampling
algorithms.  The split is deliberate:

* the loop thread owns the LRU result cache, the single-flight table,
  and the ``serve.*`` telemetry — all single-threaded state;
* the compute thread owns the warm
  :class:`~repro.session.SamplingSession` lanes and everything the
  algorithms touch (engines, stores, spans).  Serializing queries
  through one thread keeps the per-run telemetry hub and the lane
  stores free of data races, and matches the workload: sampling is
  CPU-bound, so a second compute thread would only fight the GIL —
  parallelism lives *inside* a query (the process/epoch engines),
  not across queries.

Answer paths, cheapest first:

1. **Cache** — equal :class:`~repro.serve.protocol.QueryKey` already
   answered (``serve.cache_hits``).
2. **Coalesce** — an equal key is in flight; the request awaits the
   leader's future instead of recomputing (``serve.coalesced``).
3. **Warm lane** — the (dataset, algorithm, seed) lane already holds
   samples from earlier queries; the run reuses them and only tops up
   (``serve.batched`` / ``serve.samples_reused``) — the admission
   batching of the ROADMAP item, riding the same monotone-reuse
   semantics as the warm-started eps sweeps.
4. **Cold** — first query on the lane: the session is built from the
   algorithm's own RNG (:meth:`~repro.algorithms.base
   .SamplingAlgorithm.build_session`), so the answer is bit-identical
   to the single-shot ``repro-gbc run`` with the same seed and engine
   configuration.

A ``mutate`` op applies an edge delta to a held dataset *in place*:
the update compacts into a fresh CSR on the compute thread, every warm
lane of that dataset migrates onto it (invalidating exactly the stored
paths that traversed the touched frontier, keeping the rest), and the
dataset's graph version bumps — retiring the superseded generation's
cache entries, since :class:`~repro.serve.protocol.QueryKey` carries
the version it was admitted under.

``SIGTERM``/``SIGINT`` trigger a graceful drain: stop accepting,
finish in-flight queries, checkpoint every warm lane to ``--warm-dir``
(if set), close the sessions (stopping epoch workers and unlinking
shared-memory segments), and exit 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from pathlib import Path

from ..exceptions import CheckpointError, ServeError
from ..graph.csr import CSRGraph
from ..graph.delta import DeltaGraph, GraphUpdate
from ..obs import JsonlSink, Telemetry, monotonic
from ..session import SamplingSession
from .cache import LRUCache
from .protocol import (
    QueryKey,
    build_algorithm,
    parse_mutation,
    parse_request,
    result_payload,
)

__all__ = ["GBCServer", "ServerConfig", "serve_main"]

_PROTOCOL_VERSION = 1

#: Upper bound on one request line; a frame larger than this is a
#: client bug, not a query.
_MAX_FRAME = 1 << 20


class _LockedTelemetry(Telemetry):
    """A :class:`~repro.obs.Telemetry` hub safe for the daemon's two
    writers: the event loop (``serve.*`` counters and events) and the
    compute thread (algorithm spans, ``engine.*``/``session.*``
    counters).  Counter updates, event appends, and sink emission are
    serialized; span aggregation stays compute-thread-only, and the
    loop thread reads counters only through
    :meth:`counters_snapshot`."""

    def __init__(self, sinks=()):
        super().__init__(sinks=sinks)
        self._lock = threading.RLock()

    def count(self, name: str, value: int = 1) -> None:
        with self._lock:
            super().count(name, value)

    def event(self, name: str, **fields) -> dict:
        with self._lock:
            return super().event(name, **fields)

    def _emit(self, record: dict) -> None:
        with self._lock:
            super()._emit(record)

    def counters_snapshot(self) -> dict:
        """Point-in-time counter copy, safe against the compute thread
        inserting new counter names mid-copy (a bare ``dict(counters)``
        can raise ``RuntimeError: dictionary changed size``)."""
        with self._lock:
            return dict(self.counters)


@dataclass
class ServerConfig:
    """Everything ``repro-gbc serve`` resolved from its flags."""

    datasets: dict  # name -> CSRGraph, loaded once at startup
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in ready_file
    socket_path: str | None = None  # Unix socket; overrides host/port
    engine: str = "serial"
    workers: int | None = None
    kernel: str = "wavefront"
    cache_sources: int = 0
    epoch_size: int | None = None
    delta: int | None = None
    cache_size: int = 128
    warm_dir: str | None = None
    log_json: str | None = None
    ready_file: str | None = None
    debug: bool = False


@dataclass
class _Lane:
    """One warm (dataset, algorithm, seed) sampling lane."""

    session: SamplingSession
    queries: int = 0


def _lane_filename(dataset: str, algorithm: str, seed: int) -> str:
    safe = "".join(c if (c.isalnum() or c in "-_.") else "_" for c in dataset)
    return f"{safe}__{algorithm}__{seed}.warm.npz"


class GBCServer:
    """The daemon: owns the listener, the cache, the single-flight
    table, and (through its compute thread) the warm lanes."""

    def __init__(self, config: ServerConfig):
        if not config.datasets:
            raise ServeError("a server needs at least one dataset to hold")
        self.config = config
        sinks = [JsonlSink(config.log_json)] if config.log_json else []
        self.telemetry = _LockedTelemetry(sinks=sinks)
        self.cache = LRUCache(config.cache_size)
        self._inflight: dict[QueryKey, asyncio.Future] = {}
        self._lanes: dict[tuple[str, str, int], _Lane] = {}
        # guards the *structure* the two threads share: the _lanes dict
        # and the datasets mapping.  The compute thread holds it only
        # for inserts/swaps/snapshots — never across a sampling run —
        # so the loop thread's stats handler answers instantly instead
        # of queueing behind a long compute.  Held without any other
        # lock inside (the telemetry lock in particular), so no lock
        # order can invert (RPR602).
        self._lane_lock = threading.RLock()
        # per-dataset graph generation, bumped by every mutate op; new
        # query keys are stamped with it (loop-thread state)
        self._versions: dict[str, int] = dict.fromkeys(config.datasets, 0)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="gbc-compute"
        )
        self._server: asyncio.AbstractServer | None = None
        self._draining = asyncio.Event()
        self._started = monotonic()
        self._engine_kwargs = {
            "engine": config.engine,
            "workers": config.workers,
            "kernel": config.kernel,
            "cache_sources": config.cache_sources,
            "epoch_size": config.epoch_size,
            "delta": config.delta,
        }
        self.bound_port: int | None = None

    # ------------------------------------------------------------------
    # compute-thread side
    # ------------------------------------------------------------------
    def _compute(self, key: QueryKey) -> tuple[dict, int]:
        """Answer ``key`` on the compute thread; returns
        ``(result_payload, warm_samples_reused)``."""
        graph: CSRGraph = self.config.datasets[key.dataset]
        algorithm = build_algorithm(
            key,
            telemetry=self.telemetry,
            debug=self.config.debug,
            **self._engine_kwargs,
        )
        lane_key = (key.dataset, key.algorithm, key.seed)
        with self._lane_lock:
            lane = self._lanes.get(lane_key)
        if lane is None:
            # cold lane: consume the algorithm's RNG exactly as a fresh
            # run would, so this answer is bit-identical to the CLI's.
            # Built outside the lock (it spawns workers); queries are
            # serialized on this thread, so no double-build race.
            lane = _Lane(session=algorithm.build_session(graph))
            with self._lane_lock:
                self._lanes[lane_key] = lane
        reused = lane.session.total_samples
        algorithm.session = lane.session
        lane.queries += 1
        with self.telemetry.span(
            "serve.compute",
            dataset=key.dataset,
            algorithm=key.algorithm,
            k=key.k,
        ):
            result = algorithm.run(graph, key.k)
        return result_payload(result, key.k), reused

    def _apply_mutation(
        self, dataset: str, update: GraphUpdate, touch_radius: int = 1
    ) -> dict:
        """Apply one edge-delta batch to ``dataset`` (compute thread).

        Runs the update through a :class:`~repro.graph.delta.DeltaGraph`
        overlay, compacts once, migrates every warm lane of the dataset
        onto the new snapshot (invalidating exactly the stored paths
        that traversed the touched frontier), and swaps the held graph.
        Queries queued behind this job on the single compute thread see
        the new graph; queries ahead of it finished on the old one.
        """
        graph: CSRGraph = self.config.datasets[dataset]
        delta = DeltaGraph(
            graph, touch_radius=touch_radius, telemetry=self.telemetry
        )
        touched = delta.apply(update)
        new_graph = delta.compact()
        invalidated = surviving = lanes_updated = 0
        with self._lane_lock:
            lanes = sorted(self._lanes.items())
        for (name, _algorithm, _seed), lane in lanes:
            if name != dataset:
                continue
            stats = lane.session.migrate(new_graph, touched)
            invalidated += stats["invalidated"]
            surviving += stats["surviving"]
            lanes_updated += 1
        with self._lane_lock:
            self.config.datasets[dataset] = new_graph
        return {
            "dataset": dataset,
            "ops": int(update.num_ops),
            "touched": int(touched.size),
            "lanes_updated": lanes_updated,
            "invalidated": invalidated,
            "surviving": surviving,
            "n": int(new_graph.n),
            "m": int(new_graph.num_edges),
        }

    def _checkpoint_lanes(self) -> int:
        """Freeze every warm lane to ``warm_dir`` (compute thread)."""
        if self.config.warm_dir is None:
            return 0
        warm = Path(self.config.warm_dir)
        warm.mkdir(parents=True, exist_ok=True)
        written = 0
        with self._lane_lock:
            lanes = sorted(self._lanes.items())
        for (dataset, algorithm, seed), lane in lanes:
            path = warm / _lane_filename(dataset, algorithm, seed)
            lane.session.checkpoint(
                str(path),
                state={
                    "serve": {
                        "dataset": dataset,
                        "algorithm": algorithm,
                        "seed": seed,
                    }
                },
            )
            written += 1
        return written

    def _close_lanes(self) -> None:
        """Release every lane's engines (workers, shm) — compute thread."""
        with self._lane_lock:
            lanes, self._lanes = self._lanes, {}
        for lane in lanes.values():
            lane.session.close()

    def _thaw_lanes(self) -> int:
        """Re-attach warm lanes checkpointed by an earlier drain
        (compute thread, called once before serving).  A checkpoint
        that no longer matches its graph — or references a dataset this
        server does not hold — is skipped with a warning, never fatal."""
        if self.config.warm_dir is None:
            return 0
        thawed = 0
        for path in sorted(Path(self.config.warm_dir).glob("*.warm.npz")):
            try:
                meta = SamplingSession.peek(str(path))
                tag = (meta.get("state") or {}).get("serve") or {}
                dataset = tag.get("dataset")
                if dataset not in self.config.datasets:
                    print(
                        f"serve: skipping warm lane {path.name}: dataset "
                        f"{dataset!r} is not held by this server",
                        file=sys.stderr,
                    )
                    continue
                # the full lane key must parse *before* resume spawns the
                # session's workers: a malformed tag after resume would
                # leak a live session and abort the whole startup
                lane_key = (dataset, str(tag["algorithm"]), int(tag["seed"]))
                session, _state = SamplingSession.resume(
                    str(path),
                    self.config.datasets[dataset],
                    telemetry=self.telemetry,
                    debug=self.config.debug,
                )
            except (CheckpointError, KeyError, TypeError, ValueError) as exc:
                print(
                    f"serve: skipping warm lane {path.name}: {exc!r}",
                    file=sys.stderr,
                )
                continue
            with self._lane_lock:
                self._lanes[lane_key] = _Lane(session=session)
            thawed += 1
        return thawed

    # ------------------------------------------------------------------
    # event-loop side
    # ------------------------------------------------------------------
    async def _answer_query(self, key: QueryKey) -> dict:
        """Resolve one admitted query through cache → coalesce →
        compute, maintaining the ``serve.*`` counters."""
        hub = self.telemetry
        hub.count("serve.queries", 1)
        cached = self.cache.get(key)
        if cached is not None:
            hub.count("serve.cache_hits", 1)
            return {
                "ok": True,
                "result": cached,
                "served": {"source": "cache", "samples_reused": 0},
            }
        hub.count("serve.cache_misses", 1)
        loop = asyncio.get_running_loop()
        leader_future = self._inflight.get(key)
        if leader_future is not None:
            hub.count("serve.coalesced", 1)
            payload, reused = await leader_future
            return {
                "ok": True,
                "result": payload,
                "served": {"source": "coalesced", "samples_reused": reused},
            }
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            payload, reused = await loop.run_in_executor(
                self._executor, partial(self._compute, key)
            )
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                future.exception()  # mark retrieved for the leader's copy
            raise
        else:
            future.set_result((payload, reused))
            return payload, reused
        finally:
            self._inflight.pop(key, None)

    async def _serve_query(self, key: QueryKey) -> dict:
        hub = self.telemetry
        began = monotonic()
        answer = await self._answer_query(key)
        if isinstance(answer, dict):
            source = answer["served"]["source"]
            reused = answer["served"]["samples_reused"]
        else:
            payload, reused = answer
            hub.count("serve.computed", 1)
            if reused:
                hub.count("serve.batched", 1)
                hub.count("serve.samples_reused", reused)
            self.cache.put(key, payload)
            source = "computed"
            answer = {
                "ok": True,
                "result": payload,
                "served": {"source": source, "samples_reused": reused},
            }
        hub.event(
            "serve.request",
            dataset=key.dataset,
            algorithm=key.algorithm,
            k=key.k,
            eps=key.eps,
            gamma=key.gamma,
            seed=key.seed,
            source=source,
            seconds=monotonic() - began,
        )
        return answer

    async def _serve_mutation(
        self, dataset: str, update: GraphUpdate, touch_radius: int = 1
    ) -> dict:
        """Run one admitted ``mutate`` op: apply on the compute thread,
        then retire the superseded generation's cache entries and bump
        the dataset's version (loop thread)."""
        hub = self.telemetry
        began = monotonic()
        loop = asyncio.get_running_loop()
        mutated = await loop.run_in_executor(
            self._executor,
            partial(self._apply_mutation, dataset, update, touch_radius),
        )
        # bump only after the compute thread swapped the graph: queries
        # admitted during the mutation were stamped with the old version
        # and computed on the old graph, so their cache entries stay
        # correct for that generation — and unreachable after this
        self._versions[dataset] += 1
        mutated["version"] = self._versions[dataset]
        mutated["cache_evicted"] = self.cache.evict(
            lambda key: key.dataset == dataset
        )
        hub.count("serve.mutations", 1)
        hub.event(
            "serve.mutate",
            seconds=monotonic() - began,
            **mutated,
        )
        return {"ok": True, "mutated": mutated}

    def _stats_payload(self) -> dict:
        """Build the ``stats`` answer on the *loop* thread.

        Everything else here is loop-owned (cache, versions, uptime);
        the two structures the compute thread also writes — the lanes
        dict and the datasets mapping — are snapshotted under the lane
        lock, so stats never queues behind a long compute and never
        iterates a dict mid-insert.  The telemetry copy happens outside
        the lane lock (the two locks are never nested, by design)."""
        with self._lane_lock:
            lane_items = sorted(self._lanes.items())
            dataset_items = sorted(self.config.datasets.items())
        lanes = [
            {
                "dataset": dataset,
                "algorithm": algorithm,
                "seed": seed,
                "samples": lane.session.total_samples,
                "queries": lane.queries,
            }
            for (dataset, algorithm, seed), lane in lane_items
        ]
        return {
            "ok": True,
            "version": _PROTOCOL_VERSION,
            "uptime_seconds": monotonic() - self._started,
            "datasets": {
                name: {
                    "n": int(graph.n),
                    "m": int(graph.num_edges),
                    "directed": bool(graph.directed),
                    "mmap": graph.mmap_source,
                    "version": self._versions.get(name, 0),
                }
                for name, graph in dataset_items
            },
            "cache": {
                "size": len(self.cache),
                "capacity": self.cache.capacity,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
            },
            "lanes": lanes,
            "counters": self.telemetry.counters_snapshot(),
        }

    async def _dispatch(self, frame: dict) -> dict:
        op = frame.get("op", "query") if isinstance(frame, dict) else None
        if op == "ping":
            return {"ok": True, "pong": True, "version": _PROTOCOL_VERSION}
        if op == "stats":
            # answered right here on the loop thread — the shared lane
            # structures are read under the lane lock, so stats no
            # longer queues behind whatever compute job is running
            return self._stats_payload()
        if op == "query":
            key = parse_request(frame, self.config.datasets, self._versions)
            return await self._serve_query(key)
        if op == "mutate":
            dataset, update, radius = parse_mutation(
                frame, self.config.datasets
            )
            return await self._serve_mutation(dataset, update, radius)
        raise ServeError(
            f"unknown op {op!r}; expected query, ping, stats, or mutate"
        )

    async def _handle_client(self, reader, writer) -> None:
        self.telemetry.count("serve.connections", 1)
        try:
            while not self._draining.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError):
                    # ValueError: the frame overran _MAX_FRAME
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self.telemetry.count("serve.requests", 1)
                try:
                    frame = json.loads(line)
                except ValueError:
                    response = {"ok": False, "error": "frame is not valid JSON"}
                    self.telemetry.count("serve.errors", 1)
                else:
                    try:
                        response = await self._dispatch(frame)
                    except ServeError as exc:
                        response = {"ok": False, "error": str(exc)}
                        self.telemetry.count("serve.errors", 1)
                    except Exception as exc:
                        # a failed computation poisons neither the
                        # connection nor the daemon
                        response = {
                            "ok": False,
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                        self.telemetry.count("serve.errors", 1)
                writer.write(json.dumps(response).encode() + b"\n")
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        thawed = await loop.run_in_executor(self._executor, self._thaw_lanes)
        if thawed:
            print(f"serve: thawed {thawed} warm lane(s)", file=sys.stderr)
        if self.config.socket_path:
            self._server = await asyncio.start_unix_server(
                self._handle_client,
                path=self.config.socket_path,
                limit=_MAX_FRAME,
            )
            endpoint = self.config.socket_path
        else:
            self._server = await asyncio.start_server(
                self._handle_client,
                host=self.config.host,
                port=self.config.port,
                limit=_MAX_FRAME,
            )
            self.bound_port = self._server.sockets[0].getsockname()[1]
            endpoint = f"{self.config.host}:{self.bound_port}"
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._draining.set)
            except (ValueError, NotImplementedError, RuntimeError):
                # embedded in a non-main thread (tests): the owner calls
                # request_drain() instead of sending a signal
                break
        if self.config.ready_file:
            # the smoke scripts poll this file to learn the ephemeral
            # port and to know the listener is accepting; written off
            # the loop so a slow filesystem can't stall the listener
            payload = json.dumps(
                {
                    "endpoint": endpoint,
                    "port": self.bound_port,
                    "socket": self.config.socket_path,
                }
            )
            await asyncio.to_thread(
                Path(self.config.ready_file).write_text, payload
            )
        print(
            f"serve: listening on {endpoint} "
            f"({len(self.config.datasets)} dataset(s), "
            f"engine={self.config.engine})",
            file=sys.stderr,
        )

    def request_drain(self) -> None:
        """Programmatic equivalent of SIGTERM (must be called on the
        server's event loop thread)."""
        self._draining.set()

    async def drain(self) -> None:
        """Finish in-flight work, persist warm lanes, release engines."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while self._inflight:
            await asyncio.gather(
                *self._inflight.values(), return_exceptions=True
            )
        loop = asyncio.get_running_loop()
        written = await loop.run_in_executor(
            self._executor, self._checkpoint_lanes
        )
        await loop.run_in_executor(self._executor, self._close_lanes)
        self.telemetry.event("serve.drain", checkpoints=written)
        # the blocking join of the compute thread happens off the loop
        await asyncio.to_thread(partial(self._executor.shutdown, wait=True))
        self.telemetry.close()
        print(
            f"serve: drained ({written} warm lane(s) checkpointed)",
            file=sys.stderr,
        )

    async def run_forever(self) -> None:
        """Serve until a termination signal arrives, then drain."""
        await self.start()
        await self._draining.wait()
        print("serve: draining on signal", file=sys.stderr)
        await self.drain()


def serve_main(config: ServerConfig) -> int:
    """Blocking entry point used by the CLI ``serve`` subcommand."""
    server = GBCServer(config)
    asyncio.run(server.run_forever())
    return 0
