"""A small LRU result cache for the query daemon.

Keys are :class:`~repro.serve.protocol.QueryKey` instances; values are
the finished JSON result payloads.  The daemon is single-threaded on
its event loop, so no locking is needed here — the compute thread
never touches the cache.
"""

from __future__ import annotations

from collections import OrderedDict

from ..exceptions import ParameterError

__all__ = ["LRUCache"]


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``put`` inserts or refreshes and evicts
    the coldest entry past ``capacity``.  ``capacity=0`` disables
    caching (every ``get`` misses).
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ParameterError(
                f"cache capacity must be non-negative, got {capacity}"
            )
        self.capacity = int(capacity)
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key):
        """The cached value, or ``None``; refreshes recency on a hit."""
        if key not in self._entries:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key, value) -> None:
        """Insert (or refresh) ``key``; evicts the coldest entry when
        over capacity."""
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def evict(self, predicate) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns
        the number evicted.  Used by the daemon's ``mutate`` op to
        retire results computed on a superseded graph version."""
        stale = [key for key in self._entries if predicate(key)]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
