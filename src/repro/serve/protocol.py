"""The serve wire protocol: request parsing and the result contract.

One request per line, one response per line, both JSON objects.  A
query request looks like::

    {"op": "query", "dataset": "SyntheticNetwork-BA", "algorithm":
     "adaalg", "k": 3, "eps": 0.3, "gamma": 0.1, "seed": 42}

and its response carries the same deterministic ``result`` payload the
CLI writes with ``run --json`` — byte-comparable by construction —
plus a ``served`` block saying how the answer was produced (cache hit,
coalesced onto an in-flight leader, computed, warm samples reused).

``op`` values: ``"query"``, ``"ping"`` (liveness), ``"stats"``
(telemetry counters + lane inventory), ``"mutate"`` (apply an edge
delta to a held dataset; see :func:`parse_mutation`).  Anything else —
or a malformed frame — earns ``{"ok": false, "error": ...}`` and
leaves the connection open.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms import AdaAlg, CentRa, Exhaust, Hedge
from ..exceptions import GraphError, ServeError
from ..graph.delta import GraphUpdate

__all__ = [
    "ALGORITHMS",
    "QueryKey",
    "build_algorithm",
    "parse_mutation",
    "parse_request",
    "result_payload",
]

#: Query ``algorithm`` values the daemon accepts (the checkpointable
#: sampling algorithms; the exact baselines have no sampling session
#: to keep warm and are out of scope for the serving tier).
ALGORITHMS = ("adaalg", "hedge", "centra", "exhaust")

_CLASSES = {
    "adaalg": AdaAlg,
    "hedge": Hedge,
    "centra": CentRa,
    "exhaust": Exhaust,
}


@dataclass(frozen=True)
class QueryKey:
    """The identity of one query — the LRU-cache and coalescing key.

    Two requests with equal keys are answered identically (the daemon
    is deterministic per key and per warm-lane history), so they may
    legitimately share one cached result or one in-flight computation.
    """

    dataset: str
    algorithm: str
    k: int
    eps: float
    gamma: float
    seed: int
    #: The dataset's graph version at admission time.  ``mutate`` bumps
    #: it, so results cached before an update can never answer queries
    #: arriving after it — same parameters, different graph, different
    #: key.
    version: int = 0


def _named_dataset(frame: dict, datasets) -> str:
    if not isinstance(frame, dict):
        raise ServeError("request frame must be a JSON object")
    dataset = frame.get("dataset")
    if dataset not in datasets:
        known = ", ".join(sorted(datasets))
        raise ServeError(
            f"unknown dataset {dataset!r}; this server holds: {known}"
        )
    return dataset


def parse_request(frame: dict, datasets, versions=None) -> QueryKey:
    """Validate a ``query`` frame against the served ``datasets``.

    ``versions`` (dataset name -> current graph version) stamps the
    key, keying the daemon's cache and coalescing by graph generation.
    Raises :class:`~repro.exceptions.ServeError` with a message safe to
    echo back to the client.
    """
    dataset = _named_dataset(frame, datasets)
    algorithm = frame.get("algorithm", "adaalg")
    if algorithm not in ALGORITHMS:
        known = ", ".join(ALGORITHMS)
        raise ServeError(
            f"unknown algorithm {algorithm!r}; expected one of: {known}"
        )
    try:
        k = int(frame.get("k", 1))
        eps = float(frame.get("eps", 0.3))
        gamma = float(frame.get("gamma", 0.01))
        seed = int(frame.get("seed", 0))
    except (TypeError, ValueError) as exc:
        raise ServeError(f"malformed query parameter: {exc}")
    if k < 1:
        raise ServeError(f"need k >= 1, got k={k}")
    if not 0.0 < eps < 1.0:
        raise ServeError(f"eps must lie in (0, 1), got {eps}")
    if not 0.0 < gamma < 1.0:
        raise ServeError(f"gamma must lie in (0, 1), got {gamma}")
    return QueryKey(
        dataset=dataset,
        algorithm=algorithm,
        k=k,
        eps=eps,
        gamma=gamma,
        seed=seed,
        version=int(versions.get(dataset, 0)) if versions else 0,
    )


def parse_mutation(frame: dict, datasets) -> tuple[str, GraphUpdate, int]:
    """Validate a ``mutate`` frame; returns
    ``(dataset, update, touch_radius)``.

    The frame carries the ops as JSON lists of edge rows::

        {"op": "mutate", "dataset": "...",
         "insert": [[u, v], [u, v, w], ...],
         "delete": [[u, v], ...],
         "reweight": [[u, v, w], ...],
         "touch_radius": 1}

    ``touch_radius`` (optional, default 1) controls how many hops the
    touched-node frontier expands around each mutated edge when
    invalidating warm-lane samples; 0 = endpoints only.  Shape errors
    (and graph-level validity, checked later against the actual graph)
    surface as :class:`~repro.exceptions.ServeError`.
    """
    dataset = _named_dataset(frame, datasets)
    try:
        radius = int(frame.get("touch_radius", 1))
    except (TypeError, ValueError):
        raise ServeError("touch_radius must be an integer")
    if radius < 0:
        raise ServeError("touch_radius must be >= 0")
    try:
        inserts = [
            (int(row[0]), int(row[1]), int(row[2]) if len(row) >= 3 else 1)
            for row in frame.get("insert") or ()
        ]
        deletes = [
            (int(row[0]), int(row[1])) for row in frame.get("delete") or ()
        ]
        reweights = [
            (int(row[0]), int(row[1]), int(row[2]))
            for row in frame.get("reweight") or ()
        ]
    except (TypeError, ValueError, IndexError) as exc:
        raise ServeError(f"malformed mutation op: {exc}")
    try:
        update = GraphUpdate.from_ops(inserts, deletes, reweights)
    except GraphError as exc:
        raise ServeError(str(exc))
    if update.is_empty:
        raise ServeError(
            "mutate frame carries no ops; expected at least one of "
            "insert, delete, or reweight"
        )
    return dataset, update, radius


def build_algorithm(key: QueryKey, *, telemetry=None, debug=False, **engine):
    """The algorithm instance answering ``key`` — constructed exactly
    like the CLI ``run`` command's, so a cold-lane answer is
    bit-identical to the single-shot ``repro-gbc run`` with the same
    seed and engine configuration.

    ``engine`` carries the daemon-wide sampling knobs (``engine``,
    ``workers``, ``kernel``, ``cache_sources``, ``epoch_size``,
    ``delta``).
    """
    cls = _CLASSES[key.algorithm]
    kwargs = {"seed": key.seed, "telemetry": telemetry, "debug": debug, **engine}
    if key.algorithm != "exhaust":
        # EXHAUST pins its own tiny (eps, gamma); mirroring the CLI
        # factory, the query's values are ignored for it
        kwargs.update(eps=key.eps, gamma=key.gamma)
    return cls(**kwargs)


def result_payload(result, k: int) -> dict:
    """The deterministic result contract shared by ``run --json`` and
    the daemon's ``result`` response field.

    Deliberately excludes wall-clock time and checkpoint/resume
    bookkeeping, so an interrupted-and-resumed run, an uninterrupted
    one, and a served cold-lane answer all produce identical payloads
    (the CI resume and serve-smoke checks diff them byte-for-byte).
    """
    return {
        "algorithm": result.algorithm,
        "k": int(k),
        "group": sorted(int(v) for v in result.group),
        "estimate": result.estimate,
        "estimate_unbiased": result.estimate_unbiased,
        "num_samples": int(result.num_samples),
        "iterations": int(result.iterations),
        "converged": bool(result.converged),
    }
