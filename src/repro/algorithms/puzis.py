"""Exact (1 - 1/e) greedy for top-K GBC [Puzis et al., Phys. Rev. E 2007].

The classic polynomial-time reference the paper cites: precompute the
all-pairs distance and path-count matrices, then greedily add the node
with the largest exact marginal gain, maintaining the matrix

    sigmaC[u, w] = number of shortest u→w paths avoiding the chosen
                   group C entirely (endpoints included),

via the successive update

    sigmaC'[u, w] = sigmaC[u, w] - sigmaC[u, v] * sigmaC[v, w]
                                        if d(u,v) + d(v,w) = d(u,w),

which telescopes inclusion–exclusion exactly: after selecting ``v``,
``sigmaC[v, ·]`` and ``sigmaC[·, v]`` become 0, so later selections
never double-subtract paths.  The marginal gain of a candidate ``v`` is

    gain(v) = sum over valid pairs of sigmaC[s, v] sigmaC[v, t] / sigma[s, t],

covering endpoint pairs automatically because ``d(v, v) = 0`` and
``sigmaC[v, v] = 1`` until ``v`` is chosen.

Complexity is O(n·m) preprocessing plus O(n^2) per candidate per round
(numpy-vectorized), i.e. O(K n^3) total — the paper's reason for
needing sampling algorithms at all.  Use only on small graphs; the
endpoint-included convention is the only one supported (the avoid-set
matrix cannot express per-pair avoid sets).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from ..paths.allpairs import all_pairs_sigma
from .base import GBCAlgorithm, GBCResult

__all__ = ["PuzisGreedy"]


class PuzisGreedy(GBCAlgorithm):
    """Exact greedy top-K GBC (endpoints included).

    Parameters
    ----------
    max_nodes:
        Refuse graphs larger than this (the dense matrices are O(n^2)).
    """

    name = "PuzisGreedy"

    def __init__(self, max_nodes: int = 2000):
        self.max_nodes = max_nodes

    def run(self, graph: CSRGraph, k: int) -> GBCResult:
        self._validate(graph, k)
        if graph.n > self.max_nodes:
            raise ParameterError(
                f"PuzisGreedy is O(K n^3); n={graph.n} exceeds "
                f"max_nodes={self.max_nodes}"
            )
        start = self._timer()

        dist, sigma = all_pairs_sigma(graph, max_nodes=self.max_nodes)
        n = graph.n
        connected = dist >= 0
        np.fill_diagonal(connected, False)
        # sigma[s, s] = 1 by convention; guard division on disconnected pairs
        safe_sigma = np.where(connected, sigma, 1.0)

        sigma_c = sigma.copy()
        group: list[int] = []
        gains: list[float] = []
        total = 0.0

        for _ in range(k):
            best_node, best_gain = -1, -1.0
            for v in range(n):
                if v in group:
                    continue
                gain = self._gain(v, dist, sigma_c, safe_sigma, connected)
                if gain > best_gain:
                    best_node, best_gain = v, gain
            group.append(best_node)
            gains.append(best_gain)
            total += best_gain
            self._select(best_node, dist, sigma_c)

        return GBCResult(
            algorithm=self.name,
            group=group,
            estimate=total,
            num_samples=0,
            iterations=k,
            converged=True,
            elapsed_seconds=self._timer() - start,
            diagnostics={"gains": gains},
        )

    @staticmethod
    def _timer() -> float:
        from ..obs import monotonic

        return monotonic()

    @staticmethod
    def _on_path_mask(v: int, dist: np.ndarray) -> np.ndarray:
        """Pairs (s, t) for which ``v`` lies on some shortest s→t path."""
        to_v = dist[:, v]
        from_v = dist[v, :]
        reach = (to_v[:, None] >= 0) & (from_v[None, :] >= 0) & (dist >= 0)
        return reach & (to_v[:, None] + from_v[None, :] == dist)

    def _gain(
        self,
        v: int,
        dist: np.ndarray,
        sigma_c: np.ndarray,
        safe_sigma: np.ndarray,
        connected: np.ndarray,
    ) -> float:
        """Exact marginal gain of adding ``v`` to the current group."""
        mask = self._on_path_mask(v, dist) & connected
        if not mask.any():
            return 0.0
        through = sigma_c[:, v][:, None] * sigma_c[v, :][None, :]
        return float((through[mask] / safe_sigma[mask]).sum())

    def _select(self, v: int, dist: np.ndarray, sigma_c: np.ndarray) -> None:
        """Apply the successive update after choosing ``v``."""
        mask = self._on_path_mask(v, dist)
        through = sigma_c[:, v][:, None] * sigma_c[v, :][None, :]
        sigma_c -= np.where(mask, through, 0.0)
