"""Top-K GBC algorithms: AdaAlg (the paper), baselines, exact references."""

from .adaalg import AdaAlg, AdaAlgIteration
from .base import GBCAlgorithm, GBCResult, SamplingAlgorithm
from .brute import BruteForce
from .centra import CentRa
from .exhaust import Exhaust
from .hedge import Hedge
from .heuristics import TopBetweenness, TopDegree
from .puzis import PuzisGreedy
from .yoshida import YoshidaSketch, yoshida_sample_size

__all__ = [
    "GBCAlgorithm",
    "SamplingAlgorithm",
    "GBCResult",
    "AdaAlg",
    "AdaAlgIteration",
    "Hedge",
    "CentRa",
    "Exhaust",
    "PuzisGreedy",
    "YoshidaSketch",
    "yoshida_sample_size",
    "BruteForce",
    "TopDegree",
    "TopBetweenness",
]
