"""Brute-force optimal top-K GBC for tiny graphs.

Enumerates every K-subset and evaluates it exactly, using the same
avoid-matrix arithmetic as :mod:`repro.algorithms.puzis` so a single
all-pairs preprocessing serves all subsets.  Only feasible for tiny
``C(n, K)`` — this exists to give the test suite a true ``opt`` against
which the ``(1 - 1/e - eps)`` guarantees of the sampling algorithms
can be checked.
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np

from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from ..paths.allpairs import all_pairs_sigma
from .base import GBCAlgorithm, GBCResult

__all__ = ["BruteForce"]


class BruteForce(GBCAlgorithm):
    """Exact optimum by exhaustive enumeration (endpoints included).

    Parameters
    ----------
    max_subsets:
        Refuse instances with more than this many K-subsets.
    """

    name = "BruteForce"

    def __init__(self, max_subsets: int = 500_000):
        self.max_subsets = max_subsets

    def run(self, graph: CSRGraph, k: int) -> GBCResult:
        self._validate(graph, k)
        total_subsets = math.comb(graph.n, k)
        if total_subsets > self.max_subsets:
            raise ParameterError(
                f"C({graph.n}, {k}) = {total_subsets} subsets exceeds "
                f"max_subsets={self.max_subsets}"
            )
        from ..obs import monotonic

        start = monotonic()
        dist, sigma = all_pairs_sigma(graph)
        connected = dist >= 0
        np.fill_diagonal(connected, False)
        safe_sigma = np.where(connected, sigma, 1.0)
        base_fraction = np.where(connected, 1.0, 0.0)

        best_group: tuple[int, ...] = tuple(range(k))
        best_value = -1.0
        for group in combinations(range(graph.n), k):
            value = self._evaluate(group, dist, sigma, safe_sigma, base_fraction)
            if value > best_value:
                best_group, best_value = group, value

        return GBCResult(
            algorithm=self.name,
            group=list(best_group),
            estimate=best_value,
            num_samples=0,
            iterations=total_subsets,
            converged=True,
            elapsed_seconds=monotonic() - start,
        )

    @staticmethod
    def _evaluate(group, dist, sigma, safe_sigma, base_fraction) -> float:
        """Exact B(C) via successive avoid-matrix updates."""
        sigma_c = sigma.copy()
        for v in group:
            to_v = dist[:, v]
            from_v = dist[v, :]
            on_path = (
                (to_v[:, None] >= 0)
                & (from_v[None, :] >= 0)
                & (dist >= 0)
                & (to_v[:, None] + from_v[None, :] == dist)
            )
            through = sigma_c[:, v][:, None] * sigma_c[v, :][None, :]
            sigma_c -= np.where(on_path, through, 0.0)
        remaining = sigma_c / safe_sigma
        reduced = np.where(base_fraction > 0, remaining, 0.0)
        return float((base_fraction - reduced).sum())
