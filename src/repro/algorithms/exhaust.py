"""EXHAUST — the quality yardstick of the paper's evaluation.

EXHAUST is simply HEDGE run with a very small error ratio and error
probability (the paper uses ``eps = 0.03`` and ``gamma = 0.01%``), so
its output is essentially a ``(1 - 1/e)``-approximation; the other
algorithms' normalized GBCs are reported as fractions of EXHAUST's
(Figs. 2–3).

The theoretically mandated sample count at ``eps = 0.03`` is enormous
(tens of millions of paths); the original C++ implementation absorbed
that on a workstation, a pure-Python reproduction cannot.  EXHAUST
therefore accepts a ``num_samples`` override: draw exactly that many
paths once and run greedy max coverage on them.  The default (200k) is
far past the empirical convergence of the estimates on the scaled-down
datasets (see the Fig. 1 bench: the relative error halves with every
doubling of L and is well under 1% at this size), so the yardstick
property is preserved.  Pass ``num_samples=None`` to run the faithful
(slow) schedule.
"""

from __future__ import annotations

from ..coverage import greedy_max_cover
from ..graph.csr import CSRGraph
from .base import GBCResult
from .hedge import Hedge

__all__ = ["Exhaust"]

_DEFAULT_SAMPLES = 200_000


class Exhaust(Hedge):
    """HEDGE with tiny (eps, gamma); a near-``(1 - 1/e) opt`` reference."""

    name = "EXHAUST"

    def __init__(
        self,
        eps: float = 0.03,
        gamma: float = 1e-4,
        num_samples: int | None = _DEFAULT_SAMPLES,
        include_endpoints: bool = True,
        sampler_method: str = "bidirectional",
        seed=None,
        engine: str = "serial",
        workers: int | None = None,
        kernel: str = "wavefront",
        cache_sources: int = 0,
        epoch_size: int | None = None,
        delta: int | None = None,
        max_samples: int | None = None,
        telemetry=None,
        debug: bool = False,
        session=None,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 1,
        resume_from: str | None = None,
        stop_after_checkpoints: int | None = None,
    ):
        super().__init__(
            eps=eps,
            gamma=gamma,
            include_endpoints=include_endpoints,
            sampler_method=sampler_method,
            seed=seed,
            engine=engine,
            workers=workers,
            kernel=kernel,
            cache_sources=cache_sources,
            epoch_size=epoch_size,
            delta=delta,
            max_samples=max_samples,
            telemetry=telemetry,
            debug=debug,
            session=session,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume_from=resume_from,
            stop_after_checkpoints=stop_after_checkpoints,
        )
        self.num_samples = num_samples

    def _checkpoint_params(self) -> dict:
        return {
            **super()._checkpoint_params(),
            "num_samples": self.num_samples,
        }

    def run(self, graph: CSRGraph, k: int) -> GBCResult:
        if self.num_samples is None:
            return super().run(graph, k)
        self._validate(graph, k)
        start = self._timer()
        self._begin_run()
        telemetry = self.telemetry

        session, state, owns = self._open_session(graph, k, self.session_lanes)
        try:
            instance = session.store(0)
            with telemetry.span("exhaust", k=k, n=graph.n):
                with telemetry.span("sample", target=self.num_samples):
                    # idempotent on resume: a store already holding the
                    # budget draws nothing more
                    session.extend(self.num_samples, lane=0)
                self._checkpoint(session, k, {"drawn": True})
                with telemetry.span("greedy"):
                    cover = greedy_max_cover(instance, k, telemetry=telemetry)
        finally:
            if owns:
                session.close()
        estimate = cover.covered / instance.num_paths * graph.num_ordered_pairs
        telemetry.event(
            "iteration",
            algorithm=self.name,
            q=1,
            samples=instance.num_paths,
            estimate=estimate,
            converged=True,
        )

        return GBCResult(
            algorithm=self.name,
            group=cover.group,
            estimate=estimate,
            num_samples=instance.num_paths,
            iterations=1,
            converged=True,
            elapsed_seconds=self._timer() - start,
            diagnostics={
                "fixed_budget": True,
                **self._session_diagnostics(session, owns),
            },
        )
