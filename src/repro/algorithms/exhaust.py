"""EXHAUST — the quality yardstick of the paper's evaluation.

EXHAUST is simply HEDGE run with a very small error ratio and error
probability (the paper uses ``eps = 0.03`` and ``gamma = 0.01%``), so
its output is essentially a ``(1 - 1/e)``-approximation; the other
algorithms' normalized GBCs are reported as fractions of EXHAUST's
(Figs. 2–3).

The theoretically mandated sample count at ``eps = 0.03`` is enormous
(tens of millions of paths); the original C++ implementation absorbed
that on a workstation, a pure-Python reproduction cannot.  EXHAUST
therefore accepts a ``num_samples`` override: draw exactly that many
paths once and run greedy max coverage on them.  The default (200k) is
far past the empirical convergence of the estimates on the scaled-down
datasets (see the Fig. 1 bench: the relative error halves with every
doubling of L and is well under 1% at this size), so the yardstick
property is preserved.  Pass ``num_samples=None`` to run the faithful
(slow) schedule.
"""

from __future__ import annotations

from ..coverage import CoverageInstance, greedy_max_cover
from ..graph.csr import CSRGraph
from .base import GBCResult
from .hedge import Hedge

__all__ = ["Exhaust"]

_DEFAULT_SAMPLES = 200_000


class Exhaust(Hedge):
    """HEDGE with tiny (eps, gamma); a near-``(1 - 1/e) opt`` reference."""

    name = "EXHAUST"

    def __init__(
        self,
        eps: float = 0.03,
        gamma: float = 1e-4,
        num_samples: int | None = _DEFAULT_SAMPLES,
        include_endpoints: bool = True,
        sampler_method: str = "bidirectional",
        seed=None,
        engine: str = "serial",
        workers: int | None = None,
        kernel: str = "wavefront",
        cache_sources: int = 0,
        max_samples: int | None = None,
        telemetry=None,
        debug: bool = False,
    ):
        super().__init__(
            eps=eps,
            gamma=gamma,
            include_endpoints=include_endpoints,
            sampler_method=sampler_method,
            seed=seed,
            engine=engine,
            workers=workers,
            kernel=kernel,
            cache_sources=cache_sources,
            max_samples=max_samples,
            telemetry=telemetry,
            debug=debug,
        )
        self.num_samples = num_samples

    def run(self, graph: CSRGraph, k: int) -> GBCResult:
        if self.num_samples is None:
            return super().run(graph, k)
        self._validate(graph, k)
        start = self._timer()
        telemetry = self.telemetry

        (engine,) = engines = self._make_engines(graph, 1)
        instance = CoverageInstance(graph.n)
        try:
            with telemetry.span("exhaust", k=k, n=graph.n):
                with telemetry.span("sample", target=self.num_samples):
                    engine.extend(instance, self.num_samples)
                with telemetry.span("greedy"):
                    cover = greedy_max_cover(instance, k)
        finally:
            self._close_all(engines)
        estimate = cover.covered / instance.num_paths * graph.num_ordered_pairs
        telemetry.event(
            "iteration",
            algorithm=self.name,
            q=1,
            samples=instance.num_paths,
            estimate=estimate,
            converged=True,
        )

        return GBCResult(
            algorithm=self.name,
            group=cover.group,
            estimate=estimate,
            num_samples=instance.num_paths,
            iterations=1,
            converged=True,
            elapsed_seconds=self._timer() - start,
            diagnostics={
                "fixed_budget": True,
                **self._engine_diagnostics(engines),
            },
        )
