"""AdaAlg — the paper's adaptive sampling algorithm (Algorithm 1).

The algorithm maintains two growing sample sets of shortest paths:

* ``S`` — used to *find* a tentative group ``C_q`` (greedy max
  coverage) and its **biased** estimate ``Bhat`` (Eq. 4; biased
  because the group was optimized on these very samples);
* ``T`` — an independent set used to compute the **unbiased** estimate
  ``Bbar`` of the same group (Eq. 8).

At iteration ``q`` the guess of the optimum is ``g_q = n(n-1)/b^q``
and both sets are grown to ``L_q = theta * b^q`` samples (Eq. 6–7).
A counter ``cnt`` tracks how often the event ``Bbar >= g_q`` has
occurred; once it has occurred twice, the guess is provably below
``opt / b^(cnt-2)`` with high probability (Lemma 3), which certifies a
sample count large enough to bound the estimation error ``eps_1``
(Eq. 10, Lemmas 4–5).  The run stops when the accumulated error

    eps_sum = beta (1 - 1/e)(1 - eps_1) + (2 - 1/e) eps_1

drops below the requested ``eps`` (Ineq. 11), where
``beta = 1 - Bbar/Bhat`` is the observed relative bias.  The returned
group is then a ``(1 - 1/e - eps)``-approximation with probability at
least ``1 - gamma`` (Lemma 6 / Theorem 1).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

from ..bounds.martingale import epsilon_one
from ..bounds.sample_size import adaalg_schedule
from ..coverage import greedy_max_cover
from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from ..obs import check_coverage
from .base import GBCResult, SamplingAlgorithm

__all__ = ["AdaAlg", "AdaAlgIteration"]

_EULER = 1.0 - 1.0 / math.e


@dataclass(frozen=True)
class AdaAlgIteration:
    """Per-iteration trace record (kept in ``diagnostics['trace']``)."""

    q: int
    guess: float
    samples: int
    biased: float
    unbiased: float
    cnt: int
    beta: float | None
    eps1: float | None
    eps_sum: float | None


class AdaAlg(SamplingAlgorithm):
    """The adaptive top-K GBC algorithm of the paper.

    Parameters
    ----------
    eps:
        Error ratio in ``(0, 1 - 1/e)``; the output is a
        ``(1 - 1/e - eps)``-approximation w.h.p.
    gamma:
        Error probability (success probability is ``1 - gamma``).
    b_min:
        Floor for the geometric base ``b`` (Eq. 13; paper uses 1.1).
    include_endpoints, sampler_method, seed:
        See :class:`~repro.algorithms.base.SamplingAlgorithm`.
    max_samples:
        Optional safety cap on the size of *each* sample set; when hit,
        the run returns its current tentative group with
        ``converged=False`` instead of sampling further.  If the cap
        preempts even the first scheduled iteration, the run still
        spends the full ``max_samples`` budget once and returns the
        exactly-``K`` greedy group it supports (never an empty group).
    validation_set:
        The paper's design keeps an independent sample set ``T`` for
        the unbiased estimate (default).  ``False`` is the ablation:
        the biased estimate doubles as the "unbiased" one (so
        ``beta = 0`` identically and the stop test degenerates to
        ``(2 - 1/e) eps_1 <= eps``), halving the samples but
        forfeiting the bias correction the guarantee rests on.
    """

    name = "AdaAlg"
    session_lanes = 2

    def __init__(
        self,
        eps: float = 0.3,
        gamma: float = 0.01,
        b_min: float = 1.1,
        include_endpoints: bool = True,
        sampler_method: str = "bidirectional",
        seed=None,
        engine: str = "serial",
        workers: int | None = None,
        kernel: str = "wavefront",
        cache_sources: int = 0,
        epoch_size: int | None = None,
        delta: int | None = None,
        max_samples: int | None = None,
        validation_set: bool = True,
        telemetry=None,
        debug: bool = False,
        session=None,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 1,
        resume_from: str | None = None,
        stop_after_checkpoints: int | None = None,
    ):
        super().__init__(
            eps=eps,
            gamma=gamma,
            include_endpoints=include_endpoints,
            sampler_method=sampler_method,
            seed=seed,
            engine=engine,
            workers=workers,
            kernel=kernel,
            cache_sources=cache_sources,
            epoch_size=epoch_size,
            delta=delta,
            telemetry=telemetry,
            debug=debug,
            session=session,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume_from=resume_from,
            stop_after_checkpoints=stop_after_checkpoints,
        )
        if not 0.0 < eps < _EULER:
            # stricter than the base class: the approximation target
            # (1 - 1/e - eps) must stay positive
            raise ParameterError(f"AdaAlg needs eps in (0, 1 - 1/e); got {eps}")
        self.b_min = b_min
        self.max_samples = max_samples
        self.validation_set = validation_set

    def _checkpoint_params(self) -> dict:
        return {
            **super()._checkpoint_params(),
            "b_min": self.b_min,
            "max_samples": self.max_samples,
            "validation_set": self.validation_set,
        }

    # ------------------------------------------------------------------
    def run(self, graph: CSRGraph, k: int) -> GBCResult:
        """Execute Algorithm 1 on ``graph`` for group size ``k``."""
        self._validate(graph, k)
        start = self._timer()
        self._begin_run()

        n = graph.n
        pairs = graph.num_ordered_pairs
        b, q_max, theta = adaalg_schedule(n, self.eps, self.gamma, b_min=self.b_min)
        session, state, owns = self._open_session(graph, k, self.session_lanes)

        cnt = 0
        trace: list[AdaAlgIteration] = []
        group: list[int] = []
        biased = 0.0
        unbiased = 0.0
        converged = False
        capped = False
        start_q = 1
        telemetry = self.telemetry

        try:
            # everything after _open_session sits inside the try: a
            # malformed checkpoint state must not leak the session (and
            # its engines' worker processes)
            selection = session.store(0)  # S — selection set
            validation = session.store(1)  # T — independent validation set
            # continue the outer loop exactly where the checkpoint froze
            # it; a checkpoint without loop state (written by `mutate`
            # after a graph update invalidated part of the pool) instead
            # re-enters the stopping rule from iteration 1 over the
            # warm pool — extends are monotone, so only the shortfall
            # is resampled
            loop = state.get("loop") if state is not None else None
            if loop is not None:
                start_q = int(loop["q"]) + 1
                cnt = int(loop["cnt"])
                group = [int(v) for v in loop["group"]]
                biased = float(loop["biased"])
                unbiased = float(loop["unbiased"])
                trace = [AdaAlgIteration(**entry) for entry in loop["trace"]]
            with telemetry.span("adaalg", k=k, n=n):
                for q in range(start_q, q_max + 1):
                    guess = pairs / b**q
                    target = math.ceil(theta * b**q)
                    if self.max_samples is not None and target > self.max_samples:
                        capped = True
                        if not group:
                            # the cap preempted even the first iteration:
                            # spend the whole budget once so the result
                            # still satisfies |C| = K (converged stays
                            # False — no guarantee was certified)
                            group, biased, unbiased = self._capped_run(
                                session, k, pairs
                            )
                            telemetry.event(
                                "capped",
                                algorithm=self.name,
                                q=q,
                                target=target,
                                max_samples=self.max_samples,
                                samples=selection.num_paths
                                + validation.num_paths,
                            )
                        break

                    # line 10: grow S, re-run greedy, biased estimate (Eq. 4)
                    with telemetry.span("sample", set="S", target=target):
                        session.extend(target, lane=0)
                    with telemetry.span("greedy"):
                        cover = greedy_max_cover(selection, k, telemetry=telemetry)
                    group = cover.group
                    biased = cover.covered / selection.num_paths * pairs

                    # line 11: grow T independently, unbiased estimate (Eq. 8)
                    if self.validation_set:
                        with telemetry.span("sample", set="T", target=target):
                            session.extend(target, lane=1)
                        covered_t = (
                            check_coverage(validation, group)
                            if self.debug
                            else validation.covered_count(group)
                        )
                        unbiased = covered_t / validation.num_paths * pairs
                    else:
                        unbiased = biased  # ablation: no independent T set

                    beta = eps1 = eps_sum = None
                    if unbiased >= guess:
                        cnt += 1  # line 13
                    if cnt >= 2:
                        # lines 17-27: error accounting and the stop test
                        c1 = math.log(4.0 / self.gamma) / (theta * b ** (cnt - 2))
                        eps1 = epsilon_one(c1)
                        if biased > 0.0 and eps1 < 1.0:
                            beta = 1.0 - unbiased / biased
                            eps_sum = (
                                beta * _EULER * (1.0 - eps1)
                                + (2.0 - 1.0 / math.e) * eps1
                            )
                    trace.append(
                        AdaAlgIteration(
                            q=q,
                            guess=guess,
                            samples=selection.num_paths + validation.num_paths,
                            biased=biased,
                            unbiased=unbiased,
                            cnt=cnt,
                            beta=beta,
                            eps1=eps1,
                            eps_sum=eps_sum,
                        )
                    )
                    telemetry.event(
                        "iteration",
                        algorithm=self.name,
                        q=q,
                        guess=guess,
                        samples=selection.num_paths + validation.num_paths,
                        biased=biased,
                        unbiased=unbiased,
                        cnt=cnt,
                        eps1=eps1,
                        eps_sum=eps_sum,
                    )
                    if eps_sum is not None and eps_sum <= self.eps:
                        converged = True  # line 24
                        break
                    # iteration boundary: the sample stream is untouched
                    # here, so checkpoints never perturb the run
                    self._checkpoint(
                        session,
                        k,
                        {
                            "q": q,
                            "cnt": cnt,
                            "group": [int(v) for v in group],
                            "biased": float(biased),
                            "unbiased": float(unbiased),
                            "trace": [asdict(entry) for entry in trace],
                        },
                    )
        finally:
            if owns:
                session.close()

        return GBCResult(
            algorithm=self.name,
            group=group,
            estimate=biased,
            estimate_unbiased=unbiased,
            num_samples=selection.num_paths + validation.num_paths,
            iterations=len(trace),
            converged=converged,
            elapsed_seconds=self._timer() - start,
            diagnostics={
                "base": b,
                "q_max": q_max,
                "theta": theta,
                "cnt": cnt,
                "capped": capped,
                "trace": trace,
                **self._session_diagnostics(session, owns),
            },
        )

    def _capped_run(
        self, session, k: int, pairs: int
    ) -> tuple[list[int], float, float]:
        """One greedy pass on ``max_samples`` paths when the schedule's
        very first target already exceeds the cap.

        Historically this path returned an *empty* group (violating the
        ``|C| = K`` contract); instead, spend the allowed budget once
        and return the exactly-``K`` greedy group it supports.
        """
        selection = session.store(0)
        validation = session.store(1)
        with self.telemetry.span("sample", set="S", target=self.max_samples):
            session.extend(self.max_samples, lane=0)
        with self.telemetry.span("greedy"):
            cover = greedy_max_cover(selection, k, telemetry=self.telemetry)
        biased = (
            cover.covered / selection.num_paths * pairs
            if selection.num_paths
            else 0.0
        )
        if self.validation_set:
            with self.telemetry.span("sample", set="T", target=self.max_samples):
                session.extend(self.max_samples, lane=1)
            unbiased = (
                validation.covered_count(cover.group)
                / validation.num_paths
                * pairs
                if validation.num_paths
                else 0.0
            )
        else:
            unbiased = biased
        return cover.group, biased, unbiased
