"""YoshidaSketch — the pair-sampling baseline [Yoshida, KDD'14].

The earliest sampling approach to centrality maximization the paper
reviews (Sec. II): each sample is the **whole shortest-path DAG** of a
random pair (a "hypergraph sketch"), and greedy max coverage picks the
K nodes hitting the most sketches.

Two caveats, both quantified by the pair-vs-path ablation benchmark:

* the objective optimized — the fraction of pairs whose DAG is touched
  — **upper-bounds** the true group betweenness (touching one shortest
  path of a pair is counted as covering the pair entirely), so the
  reported estimate is optimistic;
* the stated sample bound ``L_1 = O((log(1/gamma) + log n^2) /
  (eps^2 mu^2))`` carries a ``1/mu^2`` (Mahmoody et al. showed it is
  also insufficient for a ``(1-1/e-eps)`` guarantee on B(C)), and each
  sample costs two full truncated BFS traversals instead of a balanced
  bidirectional one.

The implementation wraps the bound in the same guess-and-halve outer
loop as HEDGE so the sample-count comparison is like-for-like.
"""

from __future__ import annotations

import math

from ..bounds.sample_size import guess_schedule
from ..coverage import CoverageInstance, greedy_max_cover
from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from ..paths.pair_sampler import PairSampler
from .base import GBCResult, SamplingAlgorithm

__all__ = ["YoshidaSketch", "yoshida_sample_size"]


def yoshida_sample_size(n: int, eps: float, gamma: float, mu: float) -> int:
    """``L_1(mu)`` with an explicit constant (module docstring)."""
    if n < 2:
        raise ParameterError(f"need n >= 2, got {n}")
    if not 0.0 < eps < 1.0 or not 0.0 < gamma < 1.0:
        raise ParameterError("eps and gamma must lie in (0, 1)")
    if not 0.0 < mu <= 1.0:
        raise ParameterError(f"mu must lie in (0, 1], got {mu}")
    complexity = math.log(2.0 / gamma) + 2.0 * math.log(n)
    return math.ceil(2.0 * (2.0 + eps / 3.0) * complexity / (eps * eps * mu * mu))


class YoshidaSketch(SamplingAlgorithm):
    """Pair-sampling (hypergraph sketch) centrality maximization.

    Note the endpoint convention: DAG node sets include the pair's
    endpoints, matching the package default;
    ``include_endpoints=False`` strips them.
    """

    name = "YoshidaSketch"

    def __init__(
        self,
        eps: float = 0.3,
        gamma: float = 0.01,
        guess_base: float = 2.0,
        include_endpoints: bool = True,
        seed=None,
        max_samples: int | None = None,
    ):
        super().__init__(
            eps=eps,
            gamma=gamma,
            include_endpoints=include_endpoints,
            sampler_method="bidirectional",  # unused; pair sampler below
            seed=seed,
        )
        if guess_base <= 1.0:
            raise ParameterError(f"guess_base must exceed 1, got {guess_base}")
        self.guess_base = guess_base
        self.max_samples = max_samples

    def run(self, graph: CSRGraph, k: int) -> GBCResult:
        self._validate(graph, k)
        start = self._timer()

        n = graph.n
        pairs = graph.num_ordered_pairs
        sampler = PairSampler(graph, seed=self._rng)
        instance = CoverageInstance(n)

        group: list[int] = []
        estimate = 0.0
        iterations = 0
        converged = False
        capped = False

        for _, guess, mu in guess_schedule(n, base=self.guess_base):
            target = yoshida_sample_size(n, self.eps, self.gamma, mu)
            if self.max_samples is not None and target > self.max_samples:
                capped = True
                break
            iterations += 1
            while instance.num_paths < target:
                sample = sampler.sample()
                nodes = sample.nodes
                if not self.include_endpoints and nodes.size:
                    keep = (nodes != sample.source) & (nodes != sample.target)
                    nodes = nodes[keep]
                instance.add_path(nodes)
            cover = greedy_max_cover(instance, k)
            group = cover.group
            estimate = cover.covered / instance.num_paths * pairs
            if estimate >= guess:
                converged = True
                break

        return GBCResult(
            algorithm=self.name,
            group=group,
            estimate=estimate,
            num_samples=instance.num_paths,
            iterations=iterations,
            converged=converged,
            elapsed_seconds=self._timer() - start,
            diagnostics={
                "capped": capped,
                "edges_explored": sampler.total_edges_explored,
                "objective": "touched-pairs (upper bound on B(C))",
            },
        )
