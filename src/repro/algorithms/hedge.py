"""HEDGE — the union-bound sampling baseline [Mahmoody et al., KDD'16].

HEDGE guarantees that the estimate of **every** group with at most K
nodes stays within ``(eps/2)·opt`` of its expectation, which costs a
``K ln n`` union-bound factor in the sample size
(:func:`repro.bounds.sample_size.hedge_sample_size`).

Because the bound depends on the unknown ``mu_opt = opt/n(n-1)``, the
implementation wraps it in the standard guess-and-halve outer loop: try
``guess = n(n-1)/base^q`` for growing ``q``; draw the samples the bound
demands for that guess; run greedy max coverage; accept once the
estimated centrality of the found group reaches the guess (at that
point the deviation guarantee certifies the guess was at most
~``opt``, so enough samples were drawn).  The failure budget ``gamma``
is split evenly across the possible guesses.
"""

from __future__ import annotations

import math

from ..bounds.sample_size import guess_schedule, hedge_sample_size
from ..coverage import greedy_max_cover
from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from .base import GBCResult, SamplingAlgorithm

__all__ = ["Hedge"]


class Hedge(SamplingAlgorithm):
    """The HEDGE baseline.

    Parameters
    ----------
    guess_base:
        Geometric factor between successive guesses of ``opt``
        (2.0 — halving — is the conventional choice).
    max_samples:
        Safety cap on the sample-set size; when the bound demands more,
        the run stops and returns its best group with
        ``converged=False``.
    """

    name = "HEDGE"

    def __init__(
        self,
        eps: float = 0.3,
        gamma: float = 0.01,
        guess_base: float = 2.0,
        include_endpoints: bool = True,
        sampler_method: str = "bidirectional",
        seed=None,
        engine: str = "serial",
        workers: int | None = None,
        kernel: str = "wavefront",
        cache_sources: int = 0,
        epoch_size: int | None = None,
        delta: int | None = None,
        max_samples: int | None = None,
        telemetry=None,
        debug: bool = False,
        session=None,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 1,
        resume_from: str | None = None,
        stop_after_checkpoints: int | None = None,
    ):
        super().__init__(
            eps=eps,
            gamma=gamma,
            include_endpoints=include_endpoints,
            sampler_method=sampler_method,
            seed=seed,
            engine=engine,
            workers=workers,
            kernel=kernel,
            cache_sources=cache_sources,
            epoch_size=epoch_size,
            delta=delta,
            telemetry=telemetry,
            debug=debug,
            session=session,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume_from=resume_from,
            stop_after_checkpoints=stop_after_checkpoints,
        )
        if guess_base <= 1.0:
            raise ParameterError(f"guess_base must exceed 1, got {guess_base}")
        self.guess_base = guess_base
        self.max_samples = max_samples

    def _sample_bound(self, n: int, k: int, gamma_each: float, mu: float) -> int:
        """The per-guess sample requirement (overridden by CentRa)."""
        return hedge_sample_size(n, k, self.eps, gamma_each, mu)

    def _checkpoint_params(self) -> dict:
        return {
            **super()._checkpoint_params(),
            "guess_base": self.guess_base,
            "max_samples": self.max_samples,
        }

    # ------------------------------------------------------------------
    def run(self, graph: CSRGraph, k: int) -> GBCResult:
        """Guess-and-halve outer loop around the union-bound sampler."""
        self._validate(graph, k)
        start = self._timer()
        self._begin_run()

        n = graph.n
        pairs = graph.num_ordered_pairs
        num_guesses = max(1, math.ceil(math.log(pairs) / math.log(self.guess_base)))
        gamma_each = self.gamma / num_guesses

        session, state, owns = self._open_session(graph, k, self.session_lanes)

        group: list[int] = []
        estimate = 0.0
        iterations = 0
        converged = False
        capped = False
        skip = 0
        telemetry = self.telemetry

        try:
            # state parsing happens inside the try so a malformed
            # checkpoint cannot leak the session's worker processes
            instance = session.store(0)
            # every completed iteration consumed exactly one schedule
            # entry, so the iteration count doubles as the resume
            # cursor; a checkpoint without loop state (written by
            # `mutate` after a graph update) restarts the schedule over
            # the warm pool — extends are monotone, so only the
            # shortfall is resampled
            loop = state.get("loop") if state is not None else None
            if loop is not None:
                iterations = skip = int(loop["iterations"])
                group = [int(v) for v in loop["group"]]
                estimate = float(loop["estimate"])
            with telemetry.span(self.name.lower(), k=k, n=n):
                for index, (_, guess, mu) in enumerate(
                    guess_schedule(n, base=self.guess_base)
                ):
                    if index < skip:
                        continue
                    target = self._sample_bound(n, k, gamma_each, mu)
                    if self.max_samples is not None and target > self.max_samples:
                        capped = True
                        telemetry.event(
                            "capped",
                            algorithm=self.name,
                            target=target,
                            max_samples=self.max_samples,
                            samples=instance.num_paths,
                        )
                        break
                    iterations += 1
                    with telemetry.span("sample", target=target):
                        session.extend(target, lane=0)
                    with telemetry.span("greedy"):
                        cover = greedy_max_cover(instance, k, telemetry=telemetry)
                    group = cover.group
                    estimate = cover.covered / instance.num_paths * pairs
                    if estimate >= guess:
                        converged = True
                    telemetry.event(
                        "iteration",
                        algorithm=self.name,
                        q=iterations,
                        guess=guess,
                        target=target,
                        samples=instance.num_paths,
                        estimate=estimate,
                        converged=converged,
                    )
                    if converged:
                        break
                    self._checkpoint(
                        session,
                        k,
                        {
                            "iterations": iterations,
                            "group": [int(v) for v in group],
                            "estimate": float(estimate),
                        },
                    )
        finally:
            if owns:
                session.close()

        return GBCResult(
            algorithm=self.name,
            group=group,
            estimate=estimate,
            num_samples=instance.num_paths,
            iterations=iterations,
            converged=converged,
            elapsed_seconds=self._timer() - start,
            diagnostics={
                "num_guesses": num_guesses,
                "capped": capped,
                **self._session_diagnostics(session, owns),
            },
        )
