"""CentRa — the Rademacher-average baseline [Pellegrina, KDD'23].

CentRa is the state of the art the paper compares against.  Its sample
size replaces HEDGE's crude ``K ln n`` union bound with the Rademacher
complexity of the group-coverage family,
``K (ln K)(ln ln n)(ln 1/mu)``, and its variance-aware tail bounds
sharpen the leading constant
(:func:`repro.bounds.sample_size.centra_sample_size`).

The outer structure is the same guess-and-halve loop as
:class:`~repro.algorithms.hedge.Hedge`.  Optionally
(``empirical_stop=True``) the run also evaluates a Monte-Carlo
empirical Rademacher average on the drawn samples at each guess and
stops as soon as the resulting uniform-deviation bound certifies a
``(eps/2)·guess`` accuracy — mirroring how the original exploits
empirical (rather than worst-case) complexity.  The MC-ERA inner
supremum is a greedy approximation (see
:mod:`repro.bounds.rademacher`), so the empirical mode is offered for
the ablation study and is off by default.
"""

from __future__ import annotations

import math

from ..bounds.rademacher import era_deviation_bound, monte_carlo_era
from ..bounds.sample_size import centra_sample_size, guess_schedule
from ..coverage import greedy_max_cover
from ..graph.csr import CSRGraph
from .base import GBCResult
from .hedge import Hedge

__all__ = ["CentRa"]


class CentRa(Hedge):
    """The CentRa baseline (state of the art before AdaAlg)."""

    name = "CentRa"

    def __init__(
        self,
        eps: float = 0.3,
        gamma: float = 0.01,
        guess_base: float = 2.0,
        include_endpoints: bool = True,
        sampler_method: str = "bidirectional",
        seed=None,
        engine: str = "serial",
        workers: int | None = None,
        kernel: str = "wavefront",
        cache_sources: int = 0,
        epoch_size: int | None = None,
        delta: int | None = None,
        max_samples: int | None = None,
        empirical_stop: bool = False,
        era_draws: int = 8,
        telemetry=None,
        debug: bool = False,
        session=None,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 1,
        resume_from: str | None = None,
        stop_after_checkpoints: int | None = None,
    ):
        super().__init__(
            eps=eps,
            gamma=gamma,
            guess_base=guess_base,
            include_endpoints=include_endpoints,
            sampler_method=sampler_method,
            seed=seed,
            engine=engine,
            workers=workers,
            kernel=kernel,
            cache_sources=cache_sources,
            epoch_size=epoch_size,
            delta=delta,
            max_samples=max_samples,
            telemetry=telemetry,
            debug=debug,
            session=session,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume_from=resume_from,
            stop_after_checkpoints=stop_after_checkpoints,
        )
        self.empirical_stop = empirical_stop
        self.era_draws = era_draws

    def _sample_bound(self, n: int, k: int, gamma_each: float, mu: float) -> int:
        return centra_sample_size(n, k, self.eps, gamma_each, mu)

    def _checkpoint_params(self) -> dict:
        return {
            **super()._checkpoint_params(),
            "empirical_stop": self.empirical_stop,
            "era_draws": self.era_draws,
        }

    # ------------------------------------------------------------------
    def run(self, graph: CSRGraph, k: int) -> GBCResult:
        if not self.empirical_stop:
            return super().run(graph, k)
        return self._run_empirical(graph, k)

    def _run_empirical(self, graph: CSRGraph, k: int) -> GBCResult:
        """Guess-and-halve with the MC-ERA early stop layered on top."""
        self._validate(graph, k)
        start = self._timer()
        self._begin_run()

        n = graph.n
        pairs = graph.num_ordered_pairs
        num_guesses = max(1, math.ceil(math.log(pairs) / math.log(self.guess_base)))
        gamma_each = self.gamma / (2 * num_guesses)

        session, state, owns = self._open_session(graph, k, self.session_lanes)

        group: list[int] = []
        estimate = 0.0
        iterations = 0
        converged = False
        stopped_by_era = False
        skip = 0
        telemetry = self.telemetry

        try:
            # state parsing happens inside the try so a malformed
            # checkpoint cannot leak the session's worker processes
            instance = session.store(0)
            # the MC-ERA draws consumed self._rng, whose state the
            # checkpoint restored alongside the engine streams; a
            # checkpoint without loop state (post-mutate) restarts the
            # schedule over the warm pool
            loop = state.get("loop") if state is not None else None
            if loop is not None:
                iterations = skip = int(loop["iterations"])
                group = [int(v) for v in loop["group"]]
                estimate = float(loop["estimate"])
            with telemetry.span("centra", k=k, n=n, empirical=True):
                for index, (_, guess, mu) in enumerate(
                    guess_schedule(n, base=self.guess_base)
                ):
                    if index < skip:
                        continue
                    target = self._sample_bound(n, k, gamma_each, mu)
                    if self.max_samples is not None and target > self.max_samples:
                        telemetry.event(
                            "capped",
                            algorithm=self.name,
                            target=target,
                            max_samples=self.max_samples,
                            samples=instance.num_paths,
                        )
                        break
                    iterations += 1
                    with telemetry.span("sample", target=target):
                        session.extend(target, lane=0)
                    with telemetry.span("greedy"):
                        cover = greedy_max_cover(instance, k, telemetry=telemetry)
                    group = cover.group
                    estimate = cover.covered / instance.num_paths * pairs

                    deviation = None
                    if estimate >= guess:
                        converged = True
                    else:
                        # empirical early stop: does the observed complexity
                        # already certify an (eps/2)-accurate estimate at
                        # this guess level?
                        with telemetry.span("era"):
                            era = monte_carlo_era(
                                instance, k, num_draws=self.era_draws,
                                seed=self._rng,
                            )
                            deviation = era_deviation_bound(
                                era, instance.num_paths, gamma_each
                            )
                        if (
                            deviation * pairs <= 0.5 * self.eps * guess
                            and estimate > 0.0
                        ):
                            converged = True
                            stopped_by_era = True
                    telemetry.event(
                        "iteration",
                        algorithm=self.name,
                        q=iterations,
                        guess=guess,
                        target=target,
                        samples=instance.num_paths,
                        estimate=estimate,
                        era_deviation=deviation,
                        converged=converged,
                    )
                    if converged:
                        break
                    self._checkpoint(
                        session,
                        k,
                        {
                            "iterations": iterations,
                            "group": [int(v) for v in group],
                            "estimate": float(estimate),
                        },
                    )
        finally:
            if owns:
                session.close()

        return GBCResult(
            algorithm=self.name,
            group=group,
            estimate=estimate,
            num_samples=instance.num_paths,
            iterations=iterations,
            converged=converged,
            elapsed_seconds=self._timer() - start,
            diagnostics={
                "num_guesses": num_guesses,
                "empirical_stop": True,
                "stopped_by_era": stopped_by_era,
                **self._session_diagnostics(session, owns),
            },
        )
