"""Heuristic baselines: top-K degree and top-K individual betweenness.

Neither optimizes *group* betweenness — degree ignores paths entirely,
and individually central nodes tend to sit on the same bottlenecks, so
picking the K best of them buys redundant coverage (the effect the
misinformation example demonstrates).  They are included because they
are what practitioners reach for first, and because quantifying the
gap to a jointly optimized group is part of motivating the problem.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_generator
from ..graph.csr import CSRGraph
from ..nodebc import adaptive_betweenness
from ..obs import monotonic
from ..paths.brandes import betweenness_centrality
from .base import GBCAlgorithm, GBCResult

__all__ = ["TopDegree", "TopBetweenness"]


class TopDegree(GBCAlgorithm):
    """Pick the K nodes with the largest (out + in) degree."""

    name = "TopDegree"

    def run(self, graph: CSRGraph, k: int) -> GBCResult:
        self._validate(graph, k)
        start = monotonic()
        score = graph.out_degrees().astype(np.int64)
        if graph.directed:
            score = score + graph.in_degrees()
        group = np.argsort(score)[::-1][:k].tolist()
        return GBCResult(
            algorithm=self.name,
            group=group,
            estimate=0.0,  # the heuristic carries no centrality estimate
            num_samples=0,
            iterations=1,
            converged=True,
            elapsed_seconds=monotonic() - start,
        )


class TopBetweenness(GBCAlgorithm):
    """Pick the K nodes with the largest *individual* betweenness.

    Parameters
    ----------
    exact:
        Use exact Brandes (O(nm)) when ``True``; otherwise the adaptive
        sampling estimator from :mod:`repro.nodebc` with accuracy
        ``eps`` and confidence ``1 - delta``.
    """

    name = "TopBetweenness"

    def __init__(
        self, exact: bool = False, eps: float = 0.005, delta: float = 0.1,
        seed=None,
    ):
        self.exact = exact
        self.eps = eps
        self.delta = delta
        self._rng = as_generator(seed)

    def run(self, graph: CSRGraph, k: int) -> GBCResult:
        self._validate(graph, k)
        start = monotonic()
        if self.exact:
            values = betweenness_centrality(graph)
            samples = 0
        else:
            estimate = adaptive_betweenness(
                graph, eps=self.eps, delta=self.delta, seed=self._rng
            )
            values = estimate.values
            samples = estimate.num_samples
        group = np.argsort(values)[::-1][:k].tolist()
        return GBCResult(
            algorithm=self.name,
            group=group,
            estimate=float(values[group].sum()),  # sum of individual BCs
            num_samples=samples,
            iterations=1,
            converged=True,
            elapsed_seconds=monotonic() - start,
            diagnostics={"exact": self.exact},
        )
