"""Common interface and result type for the top-K GBC algorithms.

Every algorithm consumes a :class:`~repro.graph.csr.CSRGraph` and a
group size ``K`` and produces a :class:`GBCResult`.  Sampling
algorithms additionally report how many shortest paths they drew —
the paper's headline comparison metric (Figs. 4–5).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

import numpy as np

from .._rng import as_generator, spawn
from ..coverage import CoverageInstance
from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from ..paths.sampler import PathSample, PathSampler

__all__ = ["GBCResult", "GBCAlgorithm", "SamplingAlgorithm"]


@dataclass
class GBCResult:
    """Outcome of one top-K GBC computation.

    Attributes
    ----------
    algorithm:
        The producing algorithm's name (``"AdaAlg"``, ``"HEDGE"``, ...).
    group:
        Selected node ids (exactly ``K`` of them).
    estimate:
        The algorithm's estimate of ``B(group)`` — for sampling
        algorithms the *biased* estimate from the selection samples
        (Eq. 4); for exact algorithms the exact value.
    estimate_unbiased:
        The unbiased estimate from an independent sample set (Eq. 8),
        where the algorithm maintains one (AdaAlg); ``None`` otherwise.
    num_samples:
        Total shortest paths drawn, across **all** sample sets — the
        quantity plotted in the paper's Figs. 4–5.
    iterations:
        Outer-loop iterations executed (guesses tried / rounds run).
    converged:
        Whether the algorithm's own stopping rule fired (``False``
        means it exhausted its iteration budget and returned its best
        tentative group).
    elapsed_seconds:
        Wall-clock time of the run.
    diagnostics:
        Free-form per-algorithm extras (e.g. AdaAlg's per-iteration
        trace).
    """

    algorithm: str
    group: list[int]
    estimate: float
    estimate_unbiased: float | None = None
    num_samples: int = 0
    iterations: int = 0
    converged: bool = True
    elapsed_seconds: float = 0.0
    diagnostics: dict = field(default_factory=dict)

    @property
    def k(self) -> int:
        """Group size."""
        return len(self.group)

    def normalized_estimate(self, graph: CSRGraph) -> float:
        """``estimate / (n(n-1))`` — the paper's normalized GBC."""
        pairs = graph.num_ordered_pairs
        return self.estimate / pairs if pairs else 0.0


class GBCAlgorithm(abc.ABC):
    """Abstract base: ``run(graph, k) -> GBCResult``."""

    #: Human-readable algorithm name, set by subclasses.
    name: str = "abstract"

    @abc.abstractmethod
    def run(self, graph: CSRGraph, k: int) -> GBCResult:
        """Compute a top-``k`` group for ``graph``."""

    @staticmethod
    def _validate(graph: CSRGraph, k: int) -> None:
        if graph.n < 2:
            raise ParameterError("top-K GBC needs a graph with at least 2 nodes")
        if not 1 <= k <= graph.n:
            raise ParameterError(f"need 1 <= K <= n={graph.n}, got K={k}")


class SamplingAlgorithm(GBCAlgorithm):
    """Shared plumbing for the path-sampling algorithms.

    Handles endpoint-convention slicing, sampler construction with
    independent child RNG streams, and timing.
    """

    def __init__(
        self,
        eps: float = 0.3,
        gamma: float = 0.01,
        include_endpoints: bool = True,
        sampler_method: str = "bidirectional",
        seed=None,
    ):
        if not 0.0 < eps < 1.0:
            raise ParameterError(f"eps must lie in (0, 1), got {eps}")
        if not 0.0 < gamma < 1.0:
            raise ParameterError(f"gamma must lie in (0, 1), got {gamma}")
        self.eps = eps
        self.gamma = gamma
        self.include_endpoints = include_endpoints
        self.sampler_method = sampler_method
        self._rng = as_generator(seed)

    # ------------------------------------------------------------------
    def _make_samplers(self, graph: CSRGraph, count: int) -> list[PathSampler]:
        """Independent samplers (one per sample set the algorithm keeps)."""
        return [
            PathSampler(graph, seed=child, method=self.sampler_method)
            for child in spawn(self._rng, count)
        ]

    def _coverage_nodes(self, sample: PathSample) -> np.ndarray:
        """Path nodes that count as covering, per the endpoint convention."""
        if sample.is_null:
            return sample.nodes
        if self.include_endpoints:
            return sample.nodes
        return sample.nodes[1:-1]

    def _extend(
        self, instance: CoverageInstance, sampler: PathSampler, upto: int
    ) -> None:
        """Grow ``instance`` to hold ``upto`` samples.

        Large increments (at least the node count) go through the
        source-grouped batch sampler, which amortizes one BFS across
        every pair sharing a source — same distribution, far fewer
        traversals.
        """
        missing = upto - instance.num_paths
        if missing <= 0:
            return
        if missing >= sampler.graph.n:
            for sample in sampler.sample_batch(missing):
                instance.add_path(self._coverage_nodes(sample))
            return
        while instance.num_paths < upto:
            sample = sampler.sample()
            instance.add_path(self._coverage_nodes(sample))

    @staticmethod
    def _timer() -> float:
        return time.perf_counter()
