"""Common interface and result type for the top-K GBC algorithms.

Every algorithm consumes a :class:`~repro.graph.csr.CSRGraph` and a
group size ``K`` and produces a :class:`GBCResult`.  Sampling
algorithms additionally report how many shortest paths they drew —
the paper's headline comparison metric (Figs. 4–5).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

import numpy as np

from .._rng import as_generator, spawn
from ..engine import ENGINES, KERNELS, SampleEngine, coverage_nodes, create_engine
from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from ..obs import as_telemetry
from ..paths.sampler import PathSample

__all__ = ["GBCResult", "GBCAlgorithm", "SamplingAlgorithm"]


@dataclass
class GBCResult:
    """Outcome of one top-K GBC computation.

    Attributes
    ----------
    algorithm:
        The producing algorithm's name (``"AdaAlg"``, ``"HEDGE"``, ...).
    group:
        Selected node ids (exactly ``K`` of them).
    estimate:
        The algorithm's estimate of ``B(group)`` — for sampling
        algorithms the *biased* estimate from the selection samples
        (Eq. 4); for exact algorithms the exact value.
    estimate_unbiased:
        The unbiased estimate from an independent sample set (Eq. 8),
        where the algorithm maintains one (AdaAlg); ``None`` otherwise.
    num_samples:
        Total shortest paths drawn, across **all** sample sets — the
        quantity plotted in the paper's Figs. 4–5.
    iterations:
        Outer-loop iterations executed (guesses tried / rounds run).
    converged:
        Whether the algorithm's own stopping rule fired (``False``
        means it exhausted its iteration budget and returned its best
        tentative group).
    elapsed_seconds:
        Wall-clock time of the run.
    diagnostics:
        Free-form per-algorithm extras (e.g. AdaAlg's per-iteration
        trace).
    """

    algorithm: str
    group: list[int]
    estimate: float
    estimate_unbiased: float | None = None
    num_samples: int = 0
    iterations: int = 0
    converged: bool = True
    elapsed_seconds: float = 0.0
    diagnostics: dict = field(default_factory=dict)

    @property
    def k(self) -> int:
        """Group size."""
        return len(self.group)

    def normalized_estimate(self, graph: CSRGraph) -> float:
        """``estimate / (n(n-1))`` — the paper's normalized GBC."""
        pairs = graph.num_ordered_pairs
        return self.estimate / pairs if pairs else 0.0


class GBCAlgorithm(abc.ABC):
    """Abstract base: ``run(graph, k) -> GBCResult``."""

    #: Human-readable algorithm name, set by subclasses.
    name: str = "abstract"

    @abc.abstractmethod
    def run(self, graph: CSRGraph, k: int) -> GBCResult:
        """Compute a top-``k`` group for ``graph``."""

    @staticmethod
    def _validate(graph: CSRGraph, k: int) -> None:
        if graph.n < 2:
            raise ParameterError("top-K GBC needs a graph with at least 2 nodes")
        if not 1 <= k <= graph.n:
            raise ParameterError(f"need 1 <= K <= n={graph.n}, got K={k}")


class SamplingAlgorithm(GBCAlgorithm):
    """Shared plumbing for the path-sampling algorithms.

    All path drawing goes through the :mod:`repro.engine` substrate:
    the algorithm asks for samples, the configured engine decides how
    the traversals execute (serial, amortized batches, or a worker
    pool).  This class handles engine construction with independent
    child RNG streams, endpoint-convention slicing, and timing.

    Parameters
    ----------
    engine:
        Name of the execution engine (:data:`repro.engine.ENGINES`)
        every sample set is drawn through.  The default ``"serial"``
        reproduces historical seeded runs bit-for-bit.
    workers:
        Worker-process count for the ``"process"`` engine (ignored by
        in-process engines); ``None`` means all available cores.
    kernel:
        Traversal kernel for the batch/process engines
        (:data:`repro.engine.KERNELS`); ``"wavefront"`` by default.
        Runs are bit-identical across ``"wavefront"`` and
        ``"scalar"`` — the knob trades speed, never results.
    cache_sources:
        Forward-BFS tree cache size forwarded to the engines (``0``
        disables caching).
    telemetry:
        An optional :class:`~repro.obs.Telemetry` hub the run reports
        to: timed spans around sampling/greedy phases, per-iteration
        events, and the engines' work counters.  When set, a snapshot
        lands in ``GBCResult.diagnostics["telemetry"]``; the default
        ``None`` keeps everything disabled at negligible cost.
    debug:
        Opt-in invariant mode (:mod:`repro.obs.invariants`): every
        drawn path is re-verified to be a genuine shortest path and
        the coverage bookkeeping is recounted per draw.  Expensive —
        for debugging, not production runs.
    """

    def __init__(
        self,
        eps: float = 0.3,
        gamma: float = 0.01,
        include_endpoints: bool = True,
        sampler_method: str = "bidirectional",
        seed=None,
        engine: str = "serial",
        workers: int | None = None,
        kernel: str = "wavefront",
        cache_sources: int = 0,
        telemetry=None,
        debug: bool = False,
    ):
        if not 0.0 < eps < 1.0:
            raise ParameterError(f"eps must lie in (0, 1), got {eps}")
        if not 0.0 < gamma < 1.0:
            raise ParameterError(f"gamma must lie in (0, 1), got {gamma}")
        if engine not in ENGINES:
            known = ", ".join(sorted(ENGINES))
            raise ParameterError(
                f"unknown engine {engine!r}; expected one of: {known}"
            )
        if kernel not in KERNELS:
            known = ", ".join(KERNELS)
            raise ParameterError(
                f"unknown traversal kernel {kernel!r}; expected one of: {known}"
            )
        if cache_sources < 0:
            raise ParameterError(
                f"cache_sources must be non-negative, got {cache_sources}"
            )
        self.eps = eps
        self.gamma = gamma
        self.include_endpoints = include_endpoints
        self.sampler_method = sampler_method
        self.engine = engine
        self.workers = workers
        self.kernel = kernel
        self.cache_sources = cache_sources
        self.telemetry = as_telemetry(telemetry)
        self.debug = debug
        self._rng = as_generator(seed)

    # ------------------------------------------------------------------
    def _make_engines(self, graph: CSRGraph, count: int) -> list[SampleEngine]:
        """Independent engines (one per sample set the algorithm keeps)."""
        return [
            create_engine(
                self.engine,
                graph,
                seed=child,
                method=self.sampler_method,
                include_endpoints=self.include_endpoints,
                workers=self.workers,
                kernel=self.kernel,
                cache_sources=self.cache_sources,
                telemetry=self.telemetry,
                debug=self.debug,
            )
            for child in spawn(self._rng, count)
        ]

    def _coverage_nodes(self, sample: PathSample) -> np.ndarray:
        """Path nodes that count as covering, per the endpoint convention."""
        return coverage_nodes(sample, self.include_endpoints)

    def _engine_diagnostics(self, engines: list[SampleEngine]) -> dict:
        """The engine-related entries of ``GBCResult.diagnostics``."""
        stats = [eng.stats.as_dict() for eng in engines]
        return {
            "edges_explored": sum(s["edges_explored"] for s in stats),
            "engine": {
                "name": self.engine,
                # the kernel the engines actually run (after weighted /
                # non-bidirectional fallback); None for kernel-less engines
                "kernel": getattr(engines[0], "kernel", None) if engines else None,
                "stats": stats,
            },
            **self._telemetry_diagnostics(),
        }

    def _telemetry_diagnostics(self) -> dict:
        """The ``telemetry`` diagnostics entry (empty when disabled).

        The engines stream their :class:`~repro.engine.EngineStats`
        deltas into the shared hub as ``engine.*`` counters on every
        draw, so the snapshot taken here already carries the full work
        breakdown alongside the spans and per-iteration events.
        """
        if not self.telemetry.enabled:
            return {}
        return {"telemetry": self.telemetry.snapshot()}

    @staticmethod
    def _close_all(engines: list[SampleEngine]) -> None:
        for eng in engines:
            eng.close()

    @staticmethod
    def _timer() -> float:
        return time.perf_counter()
