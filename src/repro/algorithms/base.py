"""Common interface and result type for the top-K GBC algorithms.

Every algorithm consumes a :class:`~repro.graph.csr.CSRGraph` and a
group size ``K`` and produces a :class:`GBCResult`.  Sampling
algorithms additionally report how many shortest paths they drew —
the paper's headline comparison metric (Figs. 4–5).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from .._rng import as_generator, spawn
from ..engine import ENGINES, KERNELS, SampleEngine, coverage_nodes, create_engine
from ..exceptions import CheckpointError, ParameterError, SessionInterrupted
from ..graph.csr import CSRGraph
from ..obs import as_telemetry, monotonic
from ..paths.sampler import PathSample
from ..session import SamplingSession

__all__ = ["GBCResult", "GBCAlgorithm", "SamplingAlgorithm"]


@dataclass
class GBCResult:
    """Outcome of one top-K GBC computation.

    Attributes
    ----------
    algorithm:
        The producing algorithm's name (``"AdaAlg"``, ``"HEDGE"``, ...).
    group:
        Selected node ids (exactly ``K`` of them).
    estimate:
        The algorithm's estimate of ``B(group)`` — for sampling
        algorithms the *biased* estimate from the selection samples
        (Eq. 4); for exact algorithms the exact value.
    estimate_unbiased:
        The unbiased estimate from an independent sample set (Eq. 8),
        where the algorithm maintains one (AdaAlg); ``None`` otherwise.
    num_samples:
        Total shortest paths drawn, across **all** sample sets — the
        quantity plotted in the paper's Figs. 4–5.
    iterations:
        Outer-loop iterations executed (guesses tried / rounds run).
    converged:
        Whether the algorithm's own stopping rule fired (``False``
        means it exhausted its iteration budget and returned its best
        tentative group).
    elapsed_seconds:
        Wall-clock time of the run.
    diagnostics:
        Free-form per-algorithm extras (e.g. AdaAlg's per-iteration
        trace).
    """

    algorithm: str
    group: list[int]
    estimate: float
    estimate_unbiased: float | None = None
    num_samples: int = 0
    iterations: int = 0
    converged: bool = True
    elapsed_seconds: float = 0.0
    diagnostics: dict = field(default_factory=dict)

    @property
    def k(self) -> int:
        """Group size."""
        return len(self.group)

    def normalized_estimate(self, graph: CSRGraph) -> float:
        """``estimate / (n(n-1))`` — the paper's normalized GBC."""
        pairs = graph.num_ordered_pairs
        return self.estimate / pairs if pairs else 0.0


class GBCAlgorithm(abc.ABC):
    """Abstract base: ``run(graph, k) -> GBCResult``."""

    #: Human-readable algorithm name, set by subclasses.
    name: str = "abstract"

    @abc.abstractmethod
    def run(self, graph: CSRGraph, k: int) -> GBCResult:
        """Compute a top-``k`` group for ``graph``."""

    @staticmethod
    def _validate(graph: CSRGraph, k: int) -> None:
        if graph.n < 2:
            raise ParameterError("top-K GBC needs a graph with at least 2 nodes")
        if not 1 <= k <= graph.n:
            raise ParameterError(f"need 1 <= K <= n={graph.n}, got K={k}")


class SamplingAlgorithm(GBCAlgorithm):
    """Shared plumbing for the path-sampling algorithms.

    All sample acquisition goes through a
    :class:`~repro.session.SamplingSession`: the algorithm is a
    *stopping-rule policy* that decides how far to extend the session's
    sample stores and when the accumulated evidence suffices, while the
    session owns the engines, the growing stores, and their
    persistence.  This class handles session construction with
    independent child RNG streams (bit-identical to the historical
    direct-engine plumbing for a fixed seed), checkpoint cadence,
    resume, endpoint-convention slicing, and timing.

    Parameters
    ----------
    engine:
        Name of the execution engine (:data:`repro.engine.ENGINES`)
        every sample set is drawn through.  The default ``"serial"``
        reproduces historical seeded runs bit-for-bit.
    workers:
        Worker-process count for the ``"process"`` engine (ignored by
        in-process engines); ``None`` means all available cores.
    kernel:
        Traversal kernel for the batch/process engines
        (:data:`repro.engine.KERNELS`); ``"wavefront"`` by default.
        Runs are bit-identical across ``"wavefront"`` and
        ``"scalar"`` — the knob trades speed, never results.
    cache_sources:
        Forward-BFS tree cache size forwarded to the engines (``0``
        disables caching).
    epoch_size:
        Samples per epoch for the ``"epoch"`` engine (ignored by the
        other engines; ``None`` keeps the engine default).  Part of the
        determinism contract: results are a pure function of
        ``(seed, epoch_size)``, never of the worker count.
    delta:
        Bucket width of the weighted delta-stepping wavefront kernel
        (ignored on unweighted graphs; ``None`` auto-tunes from the
        mean edge weight).  Result-invariant — any value >= 1 yields
        bit-identical runs, the knob only shifts kernel work.
    telemetry:
        An optional :class:`~repro.obs.Telemetry` hub the run reports
        to: timed spans around sampling/greedy phases, per-iteration
        events, and the engines' work counters.  When set, a snapshot
        lands in ``GBCResult.diagnostics["telemetry"]``; the default
        ``None`` keeps everything disabled at negligible cost.
    debug:
        Opt-in invariant mode (:mod:`repro.obs.invariants`): every
        drawn path is re-verified to be a genuine shortest path and
        the coverage bookkeeping is recounted per draw.  Expensive —
        for debugging, not production runs.
    session:
        An externally owned :class:`~repro.session.SamplingSession` to
        draw through instead of creating one — the warm-start seam the
        experiments harness uses to reuse one growing sample pool
        across sweep cells.  The session must target the same graph
        ``run`` receives and provide at least as many lanes as the
        algorithm needs; it is *not* closed by the run.  Mutually
        exclusive with ``resume_from``.
    checkpoint_path:
        When set, the run freezes its session (stores + RNG states)
        and loop state to this path at iteration boundaries, ready for
        :meth:`~repro.session.SamplingSession.resume` /
        ``resume_from``.  Checkpoints never alter the sample stream —
        a run with checkpointing on is bit-identical to one without.
    checkpoint_every:
        Outer-loop iterations between checkpoints (default 1).
    resume_from:
        Path of a checkpoint written by an earlier run of the *same*
        algorithm/K on the *same* graph; the run continues from the
        recorded iteration and its final result is bit-identical to an
        uninterrupted run's.
    stop_after_checkpoints:
        Deliberately interrupt the run by raising
        :class:`~repro.exceptions.SessionInterrupted` once this many
        checkpoints have been written (fault-injection hook for tests
        and the CI resume exercise).  Requires ``checkpoint_path``.
    """

    def __init__(
        self,
        eps: float = 0.3,
        gamma: float = 0.01,
        include_endpoints: bool = True,
        sampler_method: str = "bidirectional",
        seed=None,
        engine: str = "serial",
        workers: int | None = None,
        kernel: str = "wavefront",
        cache_sources: int = 0,
        epoch_size: int | None = None,
        delta: int | None = None,
        telemetry=None,
        debug: bool = False,
        session: SamplingSession | None = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 1,
        resume_from: str | None = None,
        stop_after_checkpoints: int | None = None,
    ):
        if not 0.0 < eps < 1.0:
            raise ParameterError(f"eps must lie in (0, 1), got {eps}")
        if not 0.0 < gamma < 1.0:
            raise ParameterError(f"gamma must lie in (0, 1), got {gamma}")
        if engine not in ENGINES:
            known = ", ".join(sorted(ENGINES))
            raise ParameterError(
                f"unknown engine {engine!r}; expected one of: {known}"
            )
        if kernel not in KERNELS:
            known = ", ".join(KERNELS)
            raise ParameterError(
                f"unknown traversal kernel {kernel!r}; expected one of: {known}"
            )
        if cache_sources < 0:
            raise ParameterError(
                f"cache_sources must be non-negative, got {cache_sources}"
            )
        if epoch_size is not None and epoch_size < 1:
            raise ParameterError(f"epoch_size must be >= 1, got {epoch_size}")
        if delta is not None and delta < 1:
            raise ParameterError(f"delta must be >= 1, got {delta}")
        if checkpoint_every < 1:
            raise ParameterError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if stop_after_checkpoints is not None:
            if checkpoint_path is None:
                raise ParameterError(
                    "stop_after_checkpoints requires checkpoint_path"
                )
            if stop_after_checkpoints < 1:
                raise ParameterError(
                    "stop_after_checkpoints must be >= 1, got "
                    f"{stop_after_checkpoints}"
                )
        if session is not None and resume_from is not None:
            raise ParameterError(
                "session and resume_from are mutually exclusive: an external "
                "session is live state, a checkpoint is frozen state"
            )
        self.eps = eps
        self.gamma = gamma
        self.include_endpoints = include_endpoints
        self.sampler_method = sampler_method
        self.engine = engine
        self.workers = workers
        self.kernel = kernel
        self.cache_sources = cache_sources
        self.epoch_size = epoch_size
        self.delta = delta
        self.telemetry = as_telemetry(telemetry)
        self.debug = debug
        self.session = session
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = int(checkpoint_every)
        self.resume_from = resume_from
        self.stop_after_checkpoints = stop_after_checkpoints
        #: Free-form provenance the CLI folds into checkpoints (graph
        #: source, dataset name, ...); round-tripped via ``state["meta"]``.
        self.checkpoint_meta: dict = {}
        self._rng = as_generator(seed)
        self._samples_reused = 0
        self._iters_since_ckpt = 0
        self._checkpoints_this_run = 0

    #: Independent ``(engine, store)`` lanes the algorithm's ``run``
    #: draws through — 1 for the single-pool algorithms, 2 for AdaAlg
    #: (selection set S + validation set T).
    session_lanes: int = 1

    # ------------------------------------------------------------------
    # Session plumbing — shared by every concrete run() implementation.
    def build_session(self, graph: CSRGraph) -> SamplingSession:
        """A fresh session this algorithm instance would run through.

        Consumes the algorithm's RNG exactly as a fresh ``run`` does
        when it creates its own session, so attaching the returned
        session (``session=`` / ``self.session``) and running yields
        results bit-identical to a plain seeded run.  This is the
        warm-lane seam of the serve daemon
        (:mod:`repro.serve`): build once, keep the session hot, let
        later queries reuse the grown stores.  The caller owns the
        session and must close it.
        """
        return self._fresh_session(graph, self.session_lanes)

    def _fresh_session(self, graph: CSRGraph, lanes: int) -> SamplingSession:
        return SamplingSession(
            graph,
            lanes=lanes,
            seed=self._rng,
            engine=self.engine,
            method=self.sampler_method,
            include_endpoints=self.include_endpoints,
            workers=self.workers,
            kernel=self.kernel,
            cache_sources=self.cache_sources,
            epoch_size=self.epoch_size,
            delta=self.delta,
            telemetry=self.telemetry,
            debug=self.debug,
        )

    def _open_session(
        self, graph: CSRGraph, k: int, lanes: int
    ) -> tuple[SamplingSession, dict | None, bool]:
        """The session this run draws through.

        Returns ``(session, state, owns)``: ``state`` is the loop
        payload of a resumed checkpoint (``None`` for fresh runs) and
        ``owns`` says whether the run must close the session when done
        (externally attached sessions stay open for their owner).
        """
        if self.session is not None:
            sess = self.session
            if sess.graph is not graph:
                raise ParameterError(
                    "the attached session was built for a different graph "
                    "object; sessions and runs must target the same graph"
                )
            if sess.lanes < lanes:
                raise ParameterError(
                    f"{self.name} needs {lanes} session lane(s), the "
                    f"attached session has {sess.lanes}"
                )
            self._samples_reused = sess.total_samples
            return sess, None, False
        if self.resume_from is not None:
            sess, state = SamplingSession.resume(
                self.resume_from,
                graph,
                telemetry=self.telemetry,
                debug=self.debug,
            )
            # the session owns live worker processes from here on: any
            # validation failure (including a corrupt rng state blob)
            # must close it before propagating
            try:
                if state is None or state.get("algorithm") != self.name:
                    found = None if state is None else state.get("algorithm")
                    raise CheckpointError(
                        f"checkpoint {self.resume_from!r} belongs to "
                        f"algorithm {found!r}, cannot resume it with "
                        f"{self.name}"
                    )
                if state.get("k") != k:
                    raise CheckpointError(
                        f"checkpoint {self.resume_from!r} was taken for "
                        f"K={state.get('k')}, cannot resume with K={k}"
                    )
                if state.get("algorithm_rng") is not None:
                    self._rng.bit_generator.state = state["algorithm_rng"]
                self.checkpoint_meta = dict(state.get("meta") or {})
            except BaseException:
                sess.close()
                raise
            self._samples_reused = sess.total_samples
            return sess, state, True
        sess = self._fresh_session(graph, lanes)
        self._samples_reused = 0
        return sess, None, True

    def _begin_run(self) -> None:
        """Reset per-run checkpoint cadence state."""
        self._iters_since_ckpt = 0
        self._checkpoints_this_run = 0

    def _checkpoint_params(self) -> dict:
        """The parameter block frozen into checkpoints (subclasses add
        their own knobs); informational, not validated on resume."""
        return {
            "eps": self.eps,
            "gamma": self.gamma,
            "include_endpoints": self.include_endpoints,
            "sampler_method": self.sampler_method,
            "epoch_size": self.epoch_size,
            "delta": self.delta,
        }

    def _checkpoint(
        self,
        session: SamplingSession,
        k: int,
        loop: dict,
        force: bool = False,
    ) -> None:
        """Maybe write a checkpoint after one outer-loop iteration.

        ``loop`` is the algorithm's loop state (JSON-serializable); a
        snapshot lands on ``checkpoint_path`` every ``checkpoint_every``
        iterations (or immediately when ``force``).  Raises
        :class:`~repro.exceptions.SessionInterrupted` once
        ``stop_after_checkpoints`` snapshots were written this run.
        """
        if self.checkpoint_path is None:
            return
        if not force:
            self._iters_since_ckpt += 1
            if self._iters_since_ckpt < self.checkpoint_every:
                return
        elif self._iters_since_ckpt == 0:
            return  # final boundary already snapshotted by cadence
        state = {
            "algorithm": self.name,
            "k": int(k),
            "params": self._checkpoint_params(),
            "algorithm_rng": self._rng.bit_generator.state,
            "loop": loop,
            "meta": self.checkpoint_meta,
        }
        session.checkpoint(self.checkpoint_path, state=state)
        self._iters_since_ckpt = 0
        self._checkpoints_this_run += 1
        if (
            self.stop_after_checkpoints is not None
            and self._checkpoints_this_run >= self.stop_after_checkpoints
        ):
            raise SessionInterrupted(
                self.checkpoint_path, self._checkpoints_this_run
            )

    def _session_diagnostics(self, session: SamplingSession, owns: bool) -> dict:
        """The session/engine entries of ``GBCResult.diagnostics``."""
        session.flush_coverage()
        return {
            "resumed": session.resumed,
            "checkpoints": self._checkpoints_this_run,
            "session": {
                "lanes": session.lanes,
                "samples_drawn": session.samples_drawn,
                "samples_reused": self._samples_reused,
                "external": not owns,
            },
            **self._engine_diagnostics(session.engines),
        }

    # ------------------------------------------------------------------
    def _make_engines(self, graph: CSRGraph, count: int) -> list[SampleEngine]:
        """Independent engines (one per sample set the algorithm keeps)."""
        return [
            create_engine(
                self.engine,
                graph,
                seed=child,
                method=self.sampler_method,
                include_endpoints=self.include_endpoints,
                workers=self.workers,
                kernel=self.kernel,
                cache_sources=self.cache_sources,
                epoch_size=self.epoch_size,
                delta=self.delta,
                telemetry=self.telemetry,
                debug=self.debug,
            )
            for child in spawn(self._rng, count)
        ]

    def _coverage_nodes(self, sample: PathSample) -> np.ndarray:
        """Path nodes that count as covering, per the endpoint convention."""
        return coverage_nodes(sample, self.include_endpoints)

    def _engine_diagnostics(self, engines: list[SampleEngine]) -> dict:
        """The engine-related entries of ``GBCResult.diagnostics``."""
        stats = [eng.stats.as_dict() for eng in engines]
        return {
            "edges_explored": sum(s["edges_explored"] for s in stats),
            "engine": {
                "name": self.engine,
                # the kernel the engines actually run (after the
                # forward-method fallback — weighted graphs now run the
                # cohort kernels natively); None for kernel-less engines
                "kernel": getattr(engines[0], "kernel", None) if engines else None,
                "stats": stats,
            },
            **self._telemetry_diagnostics(),
        }

    def _telemetry_diagnostics(self) -> dict:
        """The ``telemetry`` diagnostics entry (empty when disabled).

        The engines stream their :class:`~repro.engine.EngineStats`
        deltas into the shared hub as ``engine.*`` counters on every
        draw, so the snapshot taken here already carries the full work
        breakdown alongside the spans and per-iteration events.
        """
        if not self.telemetry.enabled:
            return {}
        return {"telemetry": self.telemetry.snapshot()}

    @staticmethod
    def _close_all(engines: list[SampleEngine]) -> None:
        for eng in engines:
            eng.close()

    @staticmethod
    def _timer() -> float:
        # elapsed-time reporting goes through the repro.obs clock seam
        # (determinism rule RPR101) — never algorithm control flow
        return monotonic()
