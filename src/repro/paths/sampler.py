"""Uniform random shortest-path sampling.

One *sample* is produced by the procedure of Sec. III-D of the paper:

1. draw an ordered pair ``(s, t)`` uniformly at random with ``s != t``;
2. find **all** shortest s→t paths with a balanced bidirectional BFS;
3. return one of them uniformly at random.

If ``t`` is unreachable from ``s``, the sample is *null*: it is covered
by no group but still counts toward the sample size ``L``, which keeps
the estimator ``L'/L * n(n-1)`` exactly unbiased for ``B(C)`` under the
paper's ``n(n-1)`` normalization.

The uniform choice in step 3 never materializes the (potentially
exponential) path set.  A separator node ``v`` is drawn with probability
``sigma_f(v) * sigma_b(v) / sigma_st``, then the two half-paths are
completed by weighted random walks along the BFS DAGs; the telescoping
products leave every concrete path with probability ``1 / sigma_st``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .._rng import as_generator
from ..exceptions import GraphError, ParameterError
from ..graph.csr import CSRGraph
from ._dispatch import is_weighted
from .bfs import bfs_sigma
from .bidirectional import BidirectionalResult, bidirectional_search
from .dijkstra import dijkstra_sigma
from .wavefront import wavefront_search
from .wavefront_weighted import WeightedSearchResult, wavefront_weighted_search

__all__ = ["PathSample", "PathSampler"]


@dataclass(frozen=True)
class PathSample:
    """One sampled shortest path (or a null sample).

    ``nodes`` lists the path from source to target inclusive; it is
    empty for a null sample (unreachable pair).  ``edges_explored``
    records the traversal work, which the bidirectional-vs-forward
    ablation aggregates.
    """

    source: int
    target: int
    nodes: np.ndarray = field(repr=False)
    distance: int
    sigma_st: float
    edges_explored: int

    @property
    def is_null(self) -> bool:
        """Whether the pair was disconnected (sample covers nothing)."""
        return self.nodes.size == 0


class PathSampler:
    """Draws independent uniform shortest-path samples from a graph.

    Parameters
    ----------
    graph:
        The network to sample from (``n >= 2``).
    seed:
        Anything accepted by :func:`repro._rng.as_generator`.
    method:
        ``"bidirectional"`` (default, the paper's procedure) or
        ``"forward"`` (plain early-stopping BFS from the source; same
        distribution, more traversal work — kept for the ablation and
        for cross-validation).  Integer-weighted graphs
        (:class:`~repro.graph.weighted.WeightedCSRGraph`) always use
        ``"dijkstra"``, which is selected automatically.
    cache_sources:
        Size of the LRU cache of completed forward-BFS trees keyed by
        source node, used by :meth:`sample_batch` so repeated sources
        across adaptive ``extend`` rounds skip re-traversal.  ``0``
        (the default) disables caching, preserving the historical
        per-sample work accounting exactly; cache-hit samples report
        ``edges_explored == 0`` because no traversal was executed for
        them.  Hit/miss totals are exposed as :attr:`cache_hits` /
        :attr:`cache_misses`.

    Notes
    -----
    The sampler is stateful only through its random generator (and the
    optional BFS-tree cache), so one instance can serve an entire
    adaptive algorithm run; successive calls produce independent
    samples.
    """

    def __init__(
        self,
        graph: CSRGraph,
        seed=None,
        method: str = "bidirectional",
        cache_sources: int = 0,
    ):
        if graph.n < 2:
            raise GraphError("sampling requires a graph with at least 2 nodes")
        if is_weighted(graph):
            if method == "bidirectional":
                method = "dijkstra"  # the weighted engine
            if method != "dijkstra":
                raise ParameterError(
                    "weighted graphs support only the 'dijkstra' method"
                )
        elif method not in ("bidirectional", "forward"):
            raise ParameterError(f"unknown sampling method {method!r}")
        if cache_sources < 0:
            raise ParameterError(
                f"cache_sources must be non-negative, got {cache_sources}"
            )
        self.graph = graph
        self.method = method
        self._rng = as_generator(seed)
        self.cache_sources = int(cache_sources)
        self._tree_cache: OrderedDict[int, tuple] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.total_edges_explored = 0
        self.total_samples = 0
        self.total_traversals = 0
        self.total_weighted_cohorts = 0
        self.total_bucket_relaxations = 0

    # ------------------------------------------------------------------
    def sample(self) -> PathSample:
        """Draw one sample (random pair, then uniform shortest path)."""
        n = self.graph.n
        rng = self._rng
        source = int(rng.integers(n))
        target = int(rng.integers(n - 1))
        if target >= source:
            target += 1
        return self.sample_pair(source, target)

    def sample_many(self, count: int) -> list[PathSample]:
        """Draw ``count`` independent samples."""
        if count < 0:
            raise ParameterError("sample count must be non-negative")
        return [self.sample() for _ in range(count)]

    def sample_batch(self, count: int) -> list[PathSample]:
        """Draw ``count`` independent samples, amortizing traversals.

        Statistically identical to :meth:`sample_many` — the ``count``
        ordered pairs are drawn i.i.d. up front — but pairs sharing a
        source are served by a *single* full BFS from that source
        instead of one bidirectional search each.  When ``count`` is
        large relative to ``n`` (the regime of HEDGE/CentRa/EXHAUST),
        this replaces ~``count`` traversals with at most ``n``, which
        is substantially faster in pure Python.

        Only available for unweighted graphs; weighted graphs fall
        back to per-sample Dijkstra.  Samples are returned in draw
        order.
        """
        if count < 0:
            raise ParameterError("sample count must be non-negative")
        if self.method == "dijkstra":
            return [self.sample() for _ in range(count)]
        n = self.graph.n
        rng = self._rng
        sources = rng.integers(0, n, size=count)
        targets = rng.integers(0, n - 1, size=count)
        targets = np.where(targets >= sources, targets + 1, targets)

        by_source: dict[int, list[int]] = {}
        for index, s in enumerate(sources):
            by_source.setdefault(int(s), []).append(index)

        samples: list[PathSample | None] = [None] * count
        traversals = 0
        for source, indices in by_source.items():
            dist, sigma, total_work, cached = self._forward_tree(source)
            traversals += 0 if cached else 1
            # attribute the full BFS work exactly across this source's
            # samples: the first `remainder` samples carry one extra arc
            # so that the per-source total matches the serial accounting
            # (a cache hit executed no traversal, so its samples carry 0)
            share, remainder = divmod(0 if cached else total_work, len(indices))
            for position, index in enumerate(indices):
                explored = share + (1 if position < remainder else 0)
                target = int(targets[index])
                if dist[target] == -1:
                    samples[index] = self._null(source, target, explored)
                    continue
                head = self._walk_up(target, dist, sigma)
                samples[index] = PathSample(
                    source=source,
                    target=target,
                    nodes=np.asarray(head[::-1], dtype=np.int64),
                    distance=int(dist[target]),
                    sigma_st=float(sigma[target]),
                    edges_explored=explored,
                )
        self.total_samples += count
        self.total_traversals += traversals
        self.total_edges_explored += sum(s.edges_explored for s in samples)
        return samples

    def sample_cohort(
        self,
        count: int,
        kernel: str = "wavefront",
        cohort_size: int | None = None,
        delta: int | None = None,
    ) -> list[PathSample]:
        """Draw ``count`` samples through the pair-first cohort schedule.

        Statistically identical to :meth:`sample_many`; the draw order
        is restructured for batching: all ``count`` ordered pairs are
        drawn i.i.d. up front, **all** searches are resolved next, and
        the uniform path walks run last, in sample order.  With
        ``kernel="wavefront"`` the searches execute through a
        vectorized multi-query kernel — the level-synchronous
        bidirectional BFS (:func:`~repro.paths.wavefront.wavefront_search`)
        on unweighted graphs, the bucketed delta-stepping cohort
        (:func:`~repro.paths.wavefront_weighted.wavefront_weighted_search`)
        on weighted ones.  With ``kernel="scalar"`` each query runs its
        own scalar search
        (:func:`~repro.paths.bidirectional.bidirectional_search` /
        :func:`~repro.paths.dijkstra.dijkstra_sigma`).  The two kernels
        consume the generator identically and yield bit-identical
        samples — the cross-kernel determinism contract the engines
        rely on.

        ``delta`` is the weighted kernel's bucket width
        (result-invariant; ``None`` auto-tunes from the mean edge
        weight); it is ignored on unweighted graphs.  Only the
        ``"forward"`` method lacks a cohort schedule; engines fall back
        to :meth:`sample_batch` for it.
        """
        if count < 0:
            raise ParameterError("sample count must be non-negative")
        if self.method not in ("bidirectional", "dijkstra"):
            raise ParameterError(
                "cohort sampling requires the 'bidirectional' or "
                "'dijkstra' method"
            )
        n = self.graph.n
        rng = self._rng
        sources = rng.integers(0, n, size=count)
        targets = rng.integers(0, n - 1, size=count)
        targets = np.where(targets >= sources, targets + 1, targets)

        if self.method == "dijkstra":
            return self._weighted_cohort(
                sources, targets, kernel, cohort_size, delta
            )

        if kernel == "wavefront":
            searched = wavefront_search(
                self.graph, sources, targets, cohort_size=cohort_size
            )
        elif kernel == "scalar":
            searched = [
                bidirectional_search(self.graph, int(s), int(t))
                for s, t in zip(sources, targets)
            ]
        else:
            raise ParameterError(f"unknown traversal kernel {kernel!r}")

        samples = []
        for source, target, (result, explored) in zip(sources, targets, searched):
            if result is None:
                samples.append(self._null(int(source), int(target), explored))
            else:
                samples.append(self._assemble(result))
        self.total_samples += count
        self.total_traversals += count
        self.total_edges_explored += sum(s.edges_explored for s in samples)
        return samples

    def _weighted_cohort(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        kernel: str,
        cohort_size: int | None,
        delta: int | None,
    ) -> list[PathSample]:
        """The weighted half of :meth:`sample_cohort`: resolve every
        (s, t) query first, then run the backward walks in sample
        order.  Both kernels produce bit-identical
        :class:`~repro.paths.wavefront_weighted.WeightedSearchResult`
        rows and consume the generator only through the walks, so the
        samples are bit-identical across kernels (and across the
        engines' chunkings)."""
        count = int(sources.size)
        if kernel == "wavefront":
            counters: dict = {}
            searched = wavefront_weighted_search(
                self.graph,
                sources,
                targets,
                delta=delta,
                cohort_size=cohort_size,
                counters=counters,
            )
            self.total_bucket_relaxations += counters.get(
                "bucket_relaxations", 0
            )
        elif kernel == "scalar":
            searched = []
            for source, target in zip(sources, targets):
                source, target = int(source), int(target)
                dist, sigma, order = dijkstra_sigma(
                    self.graph, source, target=target
                )
                explored = int(
                    sum(self.graph.out_degree(int(v)) for v in order)
                )
                searched.append(
                    WeightedSearchResult(
                        source=source,
                        target=target,
                        distance=int(dist[target]),
                        sigma_st=float(sigma[target]),
                        dist=dist,
                        sigma=sigma,
                        edges_explored=explored,
                    )
                )
        else:
            raise ParameterError(f"unknown traversal kernel {kernel!r}")

        samples = []
        for result in searched:
            if not result.reachable:
                samples.append(
                    self._null(
                        result.source, result.target, result.edges_explored
                    )
                )
                continue
            nodes = self._walk_weighted(
                result.source, result.target, result.dist, result.sigma
            )
            samples.append(
                PathSample(
                    source=result.source,
                    target=result.target,
                    nodes=nodes,
                    distance=result.distance,
                    sigma_st=result.sigma_st,
                    edges_explored=result.edges_explored,
                )
            )
        self.total_samples += count
        self.total_traversals += count
        self.total_weighted_cohorts += 1
        self.total_edges_explored += sum(s.edges_explored for s in samples)
        return samples

    def sample_pair(self, source: int, target: int) -> PathSample:
        """Draw a uniform shortest path for a *given* ordered pair."""
        if self.method == "bidirectional":
            sample = self._sample_bidirectional(source, target)
        elif self.method == "dijkstra":
            sample = self._sample_dijkstra(source, target)
        else:
            sample = self._sample_forward(source, target)
        self.total_samples += 1
        self.total_traversals += 1
        self.total_edges_explored += sample.edges_explored
        return sample

    # ------------------------------------------------------------------
    def _forward_tree(self, source: int) -> tuple[np.ndarray, np.ndarray, int, bool]:
        """A full forward-BFS tree from ``source``, LRU-cached when
        ``cache_sources > 0``; returns ``(dist, sigma, work, cached)``."""
        if self.cache_sources:
            entry = self._tree_cache.get(source)
            if entry is not None:
                self._tree_cache.move_to_end(source)
                self.cache_hits += 1
                return (*entry, True)
            self.cache_misses += 1
        dist, sigma = bfs_sigma(self.graph, source)
        work = int(self.graph.out_degrees()[dist >= 0].sum())
        if self.cache_sources:
            self._tree_cache[source] = (dist, sigma, work)
            if len(self._tree_cache) > self.cache_sources:
                self._tree_cache.popitem(last=False)
        return dist, sigma, work, False

    def _null(self, source: int, target: int, edges: int) -> PathSample:
        return PathSample(
            source=source,
            target=target,
            nodes=np.empty(0, dtype=np.int64),
            distance=-1,
            sigma_st=0.0,
            edges_explored=edges,
        )

    def _sample_bidirectional(self, source: int, target: int) -> PathSample:
        result, explored = bidirectional_search(self.graph, source, target)
        if result is None:
            # unreachable: both searches exhausted their closure — that
            # work is real, so the ablation must see it
            return self._null(source, target, explored)
        return self._assemble(result)

    def _assemble(self, result: BidirectionalResult) -> PathSample:
        """Draw one uniform path from a completed bidirectional search."""
        pivot = self._weighted_pick(result.cut_nodes, result.cut_weights)
        head = self._walk_up(pivot, result.dist_forward, result.sigma_forward)
        tail = self._walk_down(pivot, result.dist_backward, result.sigma_backward)
        nodes = np.asarray(head[::-1] + tail[1:], dtype=np.int64)
        return PathSample(
            source=result.source,
            target=result.target,
            nodes=nodes,
            distance=result.distance,
            sigma_st=result.sigma_st,
            edges_explored=result.edges_explored,
        )

    def _sample_forward(self, source: int, target: int) -> PathSample:
        dist, sigma = bfs_sigma(self.graph, source, target=target)
        # plain BFS explores every arc out of the levels it expanded —
        # for an unreachable target that is the source's whole closure
        explored = int(
            sum(self.graph.out_degree(v) for v in np.flatnonzero(dist >= 0))
        )
        if dist[target] == -1:
            return self._null(source, target, explored)
        head = self._walk_up(target, dist, sigma)
        nodes = np.asarray(head[::-1], dtype=np.int64)
        return PathSample(
            source=source,
            target=target,
            nodes=nodes,
            distance=int(dist[target]),
            sigma_st=float(sigma[target]),
            edges_explored=explored,
        )

    def _sample_dijkstra(self, source: int, target: int) -> PathSample:
        """Weighted sampling: forward Dijkstra, then a weighted backward
        walk along shortest-path predecessors."""
        dist, sigma, order = dijkstra_sigma(self.graph, source, target=target)
        explored = int(sum(self.graph.out_degree(int(v)) for v in order))
        if dist[target] == -1:
            return self._null(source, target, explored)
        return PathSample(
            source=source,
            target=target,
            nodes=self._walk_weighted(source, target, dist, sigma),
            distance=int(dist[target]),
            sigma_st=float(sigma[target]),
            edges_explored=explored,
        )

    def _walk_weighted(
        self, source: int, target: int, dist: np.ndarray, sigma: np.ndarray
    ) -> np.ndarray:
        """Weighted backward walk from ``target`` to ``source`` along
        shortest-path predecessors, each weighted by its path count;
        returns the sampled path in source→target order."""
        path = [target]
        node = target
        while node != source:
            preds = self.graph.predecessors(node)
            lengths = self.graph.predecessor_weights(node)
            on_path = (dist[preds] >= 0) & (dist[preds] + lengths == dist[node])
            level = preds[on_path]
            node = self._weighted_pick(level, sigma[level])
            path.append(node)
        return np.asarray(path[::-1], dtype=np.int64)

    def _weighted_pick(self, candidates: np.ndarray, weights: np.ndarray) -> int:
        """Draw one candidate with probability proportional to its weight.

        Inverse-CDF sampling; an order of magnitude faster than
        ``Generator.choice(p=...)`` on the short arrays seen here.
        """
        cumulative = np.cumsum(weights)
        draw = self._rng.random() * cumulative[-1]
        index = int(np.searchsorted(cumulative, draw, side="right"))
        return int(candidates[min(index, candidates.size - 1)])

    def _walk_up(self, start: int, dist: np.ndarray, sigma: np.ndarray) -> list[int]:
        """Walk from ``start`` back to the BFS root, weighting each
        predecessor by its path count (yields head of path, reversed)."""
        path = [start]
        node = start
        depth = int(dist[start])
        while depth > 0:
            preds = self.graph.predecessors(node)
            level = preds[dist[preds] == depth - 1]
            node = self._weighted_pick(level, sigma[level])
            path.append(node)
            depth -= 1
        return path

    def _walk_down(self, start: int, dist: np.ndarray, sigma: np.ndarray) -> list[int]:
        """Walk from ``start`` toward the *backward* root (the target),
        following out-edges with backward-path-count weights."""
        path = [start]
        node = start
        depth = int(dist[start])
        while depth > 0:
            succs = self.graph.neighbors(node)
            level = succs[dist[succs] == depth - 1]
            node = self._weighted_pick(level, sigma[level])
            path.append(node)
            depth -= 1
        return path
