"""Exact betweenness centrality (Brandes' algorithm).

Used to cross-validate the samplers and to pick degree/BC-ranked seed
groups in the examples.  Runs in O(n·m) with the dependency
accumulation vectorized per BFS level.

Convention: **ordered pairs**, matching the paper's GBC normalization
``n(n-1)``.  For undirected graphs this yields exactly twice the
classic unordered Brandes value; tests compare against
``2 * networkx.betweenness_centrality(..., normalized=False)``.
Endpoints are excluded, as in the classic definition of *node*
betweenness (group betweenness — :mod:`repro.paths.exact_gbc` — has its
own endpoint switch).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ._dispatch import is_weighted
from .bfs import bfs_sigma, frontier_neighbors
from .dijkstra import dijkstra_sigma

__all__ = ["betweenness_centrality"]


def betweenness_centrality(graph: CSRGraph, sources=None) -> np.ndarray:
    """Exact betweenness of every node over ordered source–target pairs.

    Parameters
    ----------
    sources:
        Optional iterable restricting the outer loop (useful for
        pivot-based approximations and for tests); defaults to all
        nodes.

    Returns
    -------
    ndarray of shape ``(n,)`` with raw (unnormalized) betweenness.
    """
    n = graph.n
    centrality = np.zeros(n, dtype=np.float64)
    source_iter = range(n) if sources is None else sources
    dependency = _dependency_weighted if is_weighted(graph) else _dependency
    for s in source_iter:
        centrality += dependency(graph, int(s))
    return centrality


def _dependency_weighted(graph, source: int) -> np.ndarray:
    """One weighted-Brandes iteration: walk the Dijkstra finalization
    order backwards, pushing dependency onto shortest-path predecessors
    (``dist[p] + w(p, v) == dist[v]``)."""
    dist, sigma, order = dijkstra_sigma(graph, source)
    delta = np.zeros(graph.n, dtype=np.float64)
    for v in order[::-1]:
        v = int(v)
        if v == source:
            continue
        preds = graph.predecessors(v)
        lengths = graph.predecessor_weights(v)
        on_path = (dist[preds] >= 0) & (dist[preds] + lengths == dist[v])
        for p in preds[on_path]:
            p = int(p)
            delta[p] += sigma[p] / sigma[v] * (1.0 + delta[v])
    delta[source] = 0.0
    return delta


def _dependency(graph: CSRGraph, source: int) -> np.ndarray:
    """One Brandes iteration: the dependency of ``source`` on each node."""
    dist, sigma = bfs_sigma(graph, source)
    delta = np.zeros(graph.n, dtype=np.float64)
    if dist.max() <= 0:
        return delta
    # walk the BFS DAG level by level, deepest first
    for level in range(int(dist.max()), 0, -1):
        layer = np.flatnonzero(dist == level)
        heads, tails = frontier_neighbors(graph.rev_indptr, graph.rev_indices, layer)
        if heads.size == 0:
            continue
        # heads are predecessor candidates of the layer nodes (tails)
        mask = dist[heads] == level - 1
        preds = heads[mask]
        nodes = tails[mask]
        contribution = sigma[preds] / sigma[nodes] * (1.0 + delta[nodes])
        np.add.at(delta, preds, contribution)
    delta[source] = 0.0
    return delta
