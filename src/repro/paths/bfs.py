"""Level-synchronous BFS with shortest-path counting.

This is the workhorse under every estimator in the package.  The BFS
expands one whole level per step using vectorized gathers over the CSR
arrays, so the per-level cost is a handful of numpy operations on the
frontier's incident edges rather than a Python loop over nodes.

Shortest-path counts (``sigma``) are accumulated as float64, the
standard choice in betweenness computations: path counts grow
exponentially with distance and would overflow any fixed-width integer
on large graphs, while their *ratios* (all that centrality needs) stay
accurate in floating point.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["bfs_distances", "bfs_sigma", "cohort_neighbors", "frontier_neighbors"]


def frontier_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather all arcs leaving ``frontier``.

    Returns ``(heads, tails)`` where ``tails[i]`` is a frontier node and
    ``heads[i]`` its i-th outgoing neighbor, flattened across the whole
    frontier.  Both arrays have one entry per incident edge.
    """
    counts = indptr[frontier + 1] - indptr[frontier]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    offsets = np.repeat(indptr[frontier], counts)
    shifts = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    heads = indices[offsets + shifts].astype(np.int64)
    tails = np.repeat(frontier, counts)
    return heads, tails


def cohort_neighbors(
    indptr: np.ndarray,
    indices: np.ndarray,
    nodes: np.ndarray,
    owners: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather all arcs leaving a stacked multi-query frontier.

    ``nodes[i]`` is a frontier node belonging to query ``owners[i]``;
    the input is the concatenation of many per-query frontiers.  Returns
    ``(heads, tails, edge_owners)`` with one entry per incident arc:
    ``heads[j]`` is a neighbor of frontier node ``tails[j]``, which
    belongs to query ``edge_owners[j]``.

    The arc order — input position, then CSR position — is what makes
    the wavefront kernel's sigma accumulation bit-identical to running
    :func:`frontier_neighbors` per query: each query's arcs form a
    contiguous-in-order subsequence exactly matching its scalar gather.
    """
    counts = indptr[nodes + 1] - indptr[nodes]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    offsets = np.repeat(indptr[nodes], counts)
    shifts = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    heads = indices[offsets + shifts].astype(np.int64)
    tails = np.repeat(nodes, counts)
    edge_owners = np.repeat(owners, counts)
    return heads, tails, edge_owners


def bfs_distances(
    graph: CSRGraph, source: int, reverse: bool = False, max_depth: int | None = None
) -> np.ndarray:
    """Distances from ``source`` (``-1`` marks unreachable nodes).

    With ``reverse=True`` the search follows arcs backwards, giving
    distances *to* ``source`` — what the backward half of a
    bidirectional search needs.
    """
    dist, _ = bfs_sigma(graph, source, reverse=reverse, max_depth=max_depth)
    return dist


def bfs_sigma(
    graph: CSRGraph,
    source: int,
    reverse: bool = False,
    target: int | None = None,
    max_depth: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """BFS distances and shortest-path counts from ``source``.

    Parameters
    ----------
    reverse:
        Follow in-edges instead of out-edges (distances *to* source).
    target:
        If given, stop as soon as the level containing ``target`` has
        been fully processed.  ``sigma[target]`` is exact at that point
        because every shortest path to the target enters it from the
        previous level.  Distances beyond that level stay ``-1``.
    max_depth:
        Do not expand nodes farther than this many hops.

    Returns
    -------
    (dist, sigma):
        ``dist[v]`` is the hop distance (``-1`` if not reached) and
        ``sigma[v]`` the number of shortest source–v paths (0 if not
        reached).
    """
    if reverse:
        indptr, indices = graph.rev_indptr, graph.rev_indices
    else:
        indptr, indices = graph.indptr, graph.indices

    n = graph.n
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    dist[source] = 0
    sigma[source] = 1.0

    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        if max_depth is not None and depth >= max_depth:
            break
        if target is not None and dist[target] != -1:
            break
        heads, tails = frontier_neighbors(indptr, indices, frontier)
        if heads.size == 0:
            break
        undiscovered = dist[heads] == -1
        # assign first (duplicates write the same value), then read the
        # deduplicated frontier back as the flagged nodes — cheaper than
        # np.unique's sort on every level
        dist[heads[undiscovered]] = depth + 1
        on_level = dist[heads] == depth + 1
        np.add.at(sigma, heads[on_level], sigma[tails[on_level]])
        mask = np.zeros(n, dtype=bool)
        mask[heads[undiscovered]] = True
        frontier = np.flatnonzero(mask)
        depth += 1
    return dist, sigma
