"""All-pairs shortest-path distances and path counts.

The Puzis exact greedy algorithm (:mod:`repro.algorithms.puzis`) works
on the full ``n x n`` distance and sigma matrices; this module builds
them with ``n`` vectorized BFS runs.  Memory is O(n^2), so this is only
for the small graphs where the exact algorithm is usable anyway.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import GraphError
from ..graph.csr import CSRGraph
from .bfs import bfs_sigma

__all__ = ["all_pairs_sigma"]

_MAX_NODES = 5000


def all_pairs_sigma(graph: CSRGraph, max_nodes: int = _MAX_NODES):
    """Return ``(dist, sigma)`` matrices of shape ``(n, n)``.

    ``dist[s, t]`` is the hop distance (``-1`` if unreachable) and
    ``sigma[s, t]`` the number of shortest s→t paths (``sigma[s, s] = 1``
    by the paper's convention).  Guarded by ``max_nodes`` because the
    output is dense.
    """
    if graph.n > max_nodes:
        raise GraphError(
            f"all_pairs_sigma is O(n^2) memory; n={graph.n} exceeds {max_nodes}"
        )
    n = graph.n
    dist = np.empty((n, n), dtype=np.int64)
    sigma = np.empty((n, n), dtype=np.float64)
    for s in range(n):
        d, sg = bfs_sigma(graph, s)
        dist[s] = d
        sigma[s] = sg
    return dist, sigma
