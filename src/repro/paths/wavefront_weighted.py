"""Vectorized multi-query weighted SSSP — the delta-stepping wavefront.

:func:`repro.paths.dijkstra.dijkstra_sigma` answers one weighted
(s, t) query per call with a pure-Python heap loop, so on weighted
graphs the sampler's hot path used to be two orders of magnitude
slower than the unweighted wavefront kernel.  This module closes that
gap: a whole *cohort* of independent queries shares stacked
``(query, node)`` tentative-distance, sigma, and settled planes, and
each round every active query settles its next exact distance level
while the edge relaxations of all those frontiers run through **one**
CSR gather / ``np.minimum.at`` / ``np.add.at`` sequence.  The bucket
structure is Meyer & Sanders' delta-stepping specialized to the
package's positive-integer weights: pending nodes are binned by
``tentative // delta``, so finding the next exact level only scans the
current bucket's workset instead of the whole tentative array — light
(within-bucket) relaxations re-enter the bucket being drained, heavy
ones land in later buckets.  This mirrors the weighted SSSP cohorts of
the MPI-based adaptive-sampling engines of van der Grinten &
Meyerhenke, executed here through numpy instead of message passing.

Bit-identity contract
---------------------

For every query the kernel reproduces
``dijkstra_sigma(graph, s, target=t)`` exactly:

* the same finalized set — every node ``v`` with
  ``(dist[v], v) <= (dist[t], t)`` lexicographically, which is
  precisely the set the reference heap pops before its early stop
  (for unreachable targets: the source's whole closure);
* bit-identical float64 ``sigma`` — levels are settled in ascending
  exact-distance order with frontiers sorted by node id, matching the
  reference's ``(distance, node)`` heap-pop order, and within a
  relaxation the improved keys are reset to exactly ``0.0`` before the
  in-order ``np.add.at`` fold, so the floating-point partial sums
  agree with the scalar assign-then-add sequence to the last bit;
* the same ``edges_explored`` accounting — the sum of out-degrees over
  the finalized set, including the final level's nodes even though
  (like the reference) the kernel never relaxes them;
* ``delta`` is *result-invariant*: any value >= 1 yields bit-identical
  outputs, because buckets only organize the pending workset — levels
  are always settled at exact distances.  The knob trades scan work
  (small delta: many near-empty buckets) against workset size (large
  delta: the bucket scan approaches a full tentative scan).

Queries retire the moment their target settles (or their closure is
exhausted) and pending queries are admitted into the freed slots, so
state stays ``O(cohort_size * n)`` for arbitrarily many queries.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import GraphError, ParameterError
from ..graph.weighted import WeightedCSRGraph

__all__ = [
    "DEFAULT_COHORT",
    "WeightedSearchResult",
    "auto_delta",
    "wavefront_weighted_search",
]

#: Queries sharing the stacked planes at any moment; same default as the
#: unweighted wavefront kernel (three length-``n`` rows per slot).
DEFAULT_COHORT = 64

#: "Unreached" tentative distance.  Half the int64 range so a candidate
#: ``level + weight`` computed against it can never overflow.
_INF = np.int64(2**62)


def auto_delta(graph: WeightedCSRGraph) -> int:
    """The bucket width used when the caller passes ``delta=None``.

    The classic delta-stepping heuristic: a bucket should hold roughly
    one edge relaxation's worth of distance, so the mean edge weight
    (rounded, floored at 1) keeps light and heavy relaxations balanced
    without tuning.  Any value >= 1 is result-invariant; this only
    picks a sensible work split.
    """
    if graph.weights.size == 0:
        return 1
    return max(1, int(round(float(graph.weights.mean()))))


@dataclass(frozen=True)
class WeightedSearchResult:
    """One completed weighted (s, t) search, reference-identical.

    ``dist``/``sigma`` are the full length-``n`` arrays
    :func:`~repro.paths.dijkstra.dijkstra_sigma` returns for the same
    query (``-1`` / ``0.0`` outside the finalized set), which is what
    the sampler's backward reconstruction walk consumes.  A
    ``distance`` of ``-1`` marks an unreachable pair; its
    ``edges_explored`` still carries the work of proving it.
    """

    source: int
    target: int
    distance: int
    sigma_st: float
    dist: np.ndarray = field(repr=False)
    sigma: np.ndarray = field(repr=False)
    edges_explored: int

    @property
    def reachable(self) -> bool:
        return self.distance >= 0


class _WeightedCohort:
    """Stacked delta-stepping state of up to ``capacity`` queries.

    Slot ``i`` owns row ``i`` of the ``(capacity, n)`` tentative /
    sigma / settled planes plus its own bucket table: a dict from
    bucket index (``tentative // delta``) to appended node-id arrays,
    with a min-heap over the indices present.  Entries are filtered
    lazily — a node counts as pending in bucket ``b`` only while it is
    unsettled and its *current* tentative still maps to ``b`` — so
    improvements simply append to the right bucket and the stale copy
    evaporates on its next scan.
    """

    def __init__(self, graph: WeightedCSRGraph, capacity: int, delta: int):
        n = graph.n
        self.n = n
        self.capacity = capacity
        self.delta = int(delta)
        self.indptr = graph.indptr
        self.indices = graph.indices
        self.weights = graph.weights
        self.degrees = np.diff(graph.indptr)
        shape = (capacity, n)
        self.tentative = np.full(shape, _INF, dtype=np.int64)
        self.sigma = np.zeros(shape, dtype=np.float64)
        self.settled = np.zeros(shape, dtype=bool)
        self.edges = np.zeros(capacity, dtype=np.int64)
        self.buckets: list[dict[int, list[np.ndarray]]] = [
            {} for _ in range(capacity)
        ]
        self.heaps: list[list[int]] = [[] for _ in range(capacity)]
        self.queued: list[set[int]] = [set() for _ in range(capacity)]
        self.roots = np.zeros((2, capacity), dtype=np.int64)
        #: original query index per slot; -1 marks a free slot
        self.query = np.full(capacity, -1, dtype=np.int64)
        #: per-query level relaxation rounds, summed across the run —
        #: the work counter surfaced as ``paths.bucket_relaxations``
        self.relaxations = 0

    # ------------------------------------------------------------------
    def admit(self, slot: int, query: int, source: int, target: int) -> None:
        """Re-initialize ``slot`` for a new (source, target) query."""
        self.tentative[slot].fill(_INF)
        self.sigma[slot].fill(0.0)
        self.settled[slot].fill(False)
        self.tentative[slot, source] = 0
        self.sigma[slot, source] = 1.0
        self.edges[slot] = 0
        self.buckets[slot] = {0: [np.array([source], dtype=np.int64)]}
        self.heaps[slot] = [0]
        self.queued[slot] = {0}
        self.roots[0, slot] = source
        self.roots[1, slot] = target
        self.query[slot] = query

    # ------------------------------------------------------------------
    def step(self) -> list[tuple[int, int, WeightedSearchResult]]:
        """One round: every active query settles its next exact level,
        then all the settled frontiers relax together.

        Returns ``(slot, query, result)`` for each query that finished
        this round; the caller frees the slots.
        """
        active = np.flatnonzero(self.query >= 0)
        finished = []
        slots: list[int] = []
        fronts: list[np.ndarray] = []
        for slot in active:
            slot = int(slot)
            frontier = self._settle_next_level(slot)
            if frontier is None:
                finished.append((slot, int(self.query[slot]), self._finalize(slot)))
                self.query[slot] = -1
            else:
                slots.append(slot)
                fronts.append(frontier)
        if slots:
            self._relax(slots, fronts)
        return finished

    # ------------------------------------------------------------------
    def _settle_next_level(self, slot: int) -> np.ndarray | None:
        """Settle the slot's next exact distance level.

        Returns the frontier to relax, or ``None`` when the query just
        finished — either its target settled on this level (the level
        is then *not* relaxed, exactly like the reference's early
        stop), or every bucket drained without reaching the target.
        """
        tentative = self.tentative[slot]
        settled = self.settled[slot]
        heap = self.heaps[slot]
        buckets = self.buckets[slot]
        queued = self.queued[slot]
        delta = self.delta
        while heap:
            bucket = heap[0]
            parts = buckets[bucket]
            merged = (
                np.unique(np.concatenate(parts)) if len(parts) > 1
                else np.unique(parts[0])
            )
            valid = ~settled[merged] & (tentative[merged] // delta == bucket)
            nodes = merged[valid]
            if nodes.size == 0:
                heapq.heappop(heap)
                queued.discard(bucket)
                del buckets[bucket]
                continue
            buckets[bucket] = [nodes]  # compacted: stale copies dropped
            levels = tentative[nodes]
            level = levels.min()
            frontier = nodes[levels == level]  # ascending ids (np.unique)
            target = int(self.roots[1, slot])
            if tentative[target] == level and not settled[target]:
                # final level: finalized ids are exactly those the
                # reference pops before its early stop — frontier ids
                # up to and including the target; never relaxed, but
                # their out-degrees count toward edges_explored
                final = frontier[frontier <= target]
                settled[final] = True
                self.edges[slot] += int(self.degrees[final].sum())
                return None
            settled[frontier] = True
            self.edges[slot] += int(self.degrees[frontier].sum())
            return frontier
        return None  # every bucket drained: target unreachable

    # ------------------------------------------------------------------
    def _relax(self, slots: list[int], fronts: list[np.ndarray]) -> None:
        """Relax all the freshly settled frontiers in one numpy pass."""
        n = self.n
        owners = np.repeat(
            np.asarray(slots, dtype=np.int64),
            np.fromiter((f.size for f in fronts), np.int64, count=len(fronts)),
        )
        nodes = np.concatenate(fronts)
        self.relaxations += len(slots)
        counts = self.indptr[nodes + 1] - self.indptr[nodes]
        total = int(counts.sum())
        if total == 0:
            return
        offsets = np.repeat(self.indptr[nodes], counts)
        shifts = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        positions = offsets + shifts
        heads = self.indices[positions].astype(np.int64)
        lengths = self.weights[positions]
        arc_owner = np.repeat(owners, counts)
        tail_key = (arc_owner * n) + np.repeat(nodes, counts)
        head_key = (arc_owner * n) + heads

        tentative = self.tentative.ravel()
        sigma = self.sigma.ravel()
        settled = self.settled.ravel()
        # arcs into settled nodes can neither improve nor tie (their
        # candidate strictly exceeds the settled distance) — drop them
        keep = ~settled[head_key]
        if not keep.all():
            head_key = head_key[keep]
            tail_key = tail_key[keep]
            lengths = lengths[keep]
        if head_key.size == 0:
            return
        candidates = tentative[tail_key] + lengths

        unique_keys = np.unique(head_key)
        before = tentative[unique_keys].copy()
        np.minimum.at(tentative, head_key, candidates)
        after = tentative[unique_keys]
        improved = after < before
        # reference semantics: an improvement *overwrites* sigma; the
        # reset to exactly 0.0 plus the in-order add below reproduces
        # the scalar assign-then-accumulate bit-for-bit (0.0 + x == x)
        sigma[unique_keys[improved]] = 0.0
        on_path = candidates == tentative[head_key]
        # arc order is (slot, frontier node ascending, CSR position) —
        # the reference's heap-pop order within a level, so the float
        # accumulation into every head matches it exactly
        np.add.at(sigma, head_key[on_path], sigma[tail_key[on_path]])

        # file the improved keys into their (possibly new) buckets;
        # ties keep their bucket, stale copies filter out on scan
        improved_keys = unique_keys[improved]
        if improved_keys.size == 0:
            return
        improved_owner = improved_keys // n
        improved_node = improved_keys % n
        bucket_of = tentative[improved_keys] // self.delta
        slot_arr = np.asarray(slots, dtype=np.int64)
        lows = np.searchsorted(improved_owner, slot_arr, side="left")
        highs = np.searchsorted(improved_owner, slot_arr, side="right")
        for slot, low, high in zip(slots, lows, highs):
            if low == high:
                continue
            slot_nodes = improved_node[low:high]
            slot_buckets = bucket_of[low:high]
            heap = self.heaps[slot]
            queued = self.queued[slot]
            table = self.buckets[slot]
            for bucket in np.unique(slot_buckets):
                bucket = int(bucket)
                table.setdefault(bucket, []).append(
                    slot_nodes[slot_buckets == bucket]
                )
                if bucket not in queued:
                    queued.add(bucket)
                    heapq.heappush(heap, bucket)

    # ------------------------------------------------------------------
    def _finalize(self, slot: int) -> WeightedSearchResult:
        """Copy the slot's rows out, trimmed to the finalized set."""
        settled = self.settled[slot]
        dist = np.where(settled, self.tentative[slot], np.int64(-1))
        sigma = np.where(settled, self.sigma[slot], 0.0)
        target = int(self.roots[1, slot])
        return WeightedSearchResult(
            source=int(self.roots[0, slot]),
            target=target,
            distance=int(dist[target]),
            sigma_st=float(sigma[target]),
            dist=dist,
            sigma=sigma,
            edges_explored=int(self.edges[slot]),
        )


def wavefront_weighted_search(
    graph: WeightedCSRGraph,
    sources,
    targets,
    delta: int | None = None,
    cohort_size: int | None = None,
    counters: dict | None = None,
) -> list[WeightedSearchResult]:
    """Run many weighted (s, t) searches, batched via delta-stepping.

    Parameters
    ----------
    graph:
        An integer-weighted network
        (:class:`~repro.graph.weighted.WeightedCSRGraph`).
    sources, targets:
        Equal-length integer arrays of query endpoints, ``s != t``
        pairwise (a pair sample always has distinct endpoints).
    delta:
        Bucket width of the delta-stepping pending structure;
        ``None`` auto-tunes from the mean edge weight
        (:func:`auto_delta`).  Any value >= 1 returns bit-identical
        results — the knob only trades bucket-scan work against
        workset size.
    cohort_size:
        Queries sharing the stacked planes at any moment
        (:data:`DEFAULT_COHORT` when ``None``); result-invariant.
    counters:
        Optional dict the kernel adds its work counters to
        (``"bucket_relaxations"``: per-query level relaxation rounds).

    Returns
    -------
    list of :class:`WeightedSearchResult` in query order, each exactly
    what :func:`~repro.paths.dijkstra.dijkstra_sigma` produces for
    that pair (``distance == -1`` for unreachable ones).
    """
    if not isinstance(graph, WeightedCSRGraph):
        raise GraphError("wavefront_weighted_search requires a WeightedCSRGraph")
    sources = np.ascontiguousarray(sources, dtype=np.int64)
    targets = np.ascontiguousarray(targets, dtype=np.int64)
    if sources.ndim != 1 or sources.shape != targets.shape:
        raise ParameterError(
            "sources and targets must be 1-D arrays of equal length"
        )
    total = sources.size
    results: list = [None] * total
    if total == 0:
        return results
    n = graph.n
    lo = min(int(sources.min()), int(targets.min()))
    hi = max(int(sources.max()), int(targets.max()))
    if lo < 0 or hi >= n:
        raise ParameterError(f"query node ids outside [0, n={n})")
    if np.any(sources == targets):
        raise ParameterError("weighted search requires source != target")
    if delta is None:
        delta = auto_delta(graph)
    if delta < 1:
        raise ParameterError(f"delta must be >= 1, got {delta}")
    if cohort_size is None:
        cohort_size = DEFAULT_COHORT
    if cohort_size < 1:
        raise ParameterError(f"cohort_size must be >= 1, got {cohort_size}")

    cohort = _WeightedCohort(graph, min(int(cohort_size), total), int(delta))
    free = list(range(cohort.capacity - 1, -1, -1))
    admitted = 0
    done = 0
    while done < total:
        while free and admitted < total:
            cohort.admit(
                free.pop(), admitted, int(sources[admitted]), int(targets[admitted])
            )
            admitted += 1
        for slot, query, outcome in cohort.step():
            results[query] = outcome
            free.append(slot)
            done += 1
    if counters is not None:
        counters["bucket_relaxations"] = (
            counters.get("bucket_relaxations", 0) + cohort.relaxations
        )
    return results
