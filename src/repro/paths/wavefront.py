"""Vectorized multi-query bidirectional BFS — the wavefront kernel.

:func:`repro.paths.bidirectional.bidirectional_search` answers one
(s, t) query per call, and on sparse graphs its per-level frontiers are
tiny — often a handful of nodes — so the fixed cost of every numpy call
(and the Python loop around it) dominates the actual traversal work.
This module amortizes those constants across a whole *cohort* of
independent queries: the per-query frontiers are stacked into flat
``(query, node)`` arrays, one ``indptr``/``indices`` gather expands
every forward (resp. backward) frontier of the cohort at once, and a
single ``bincount`` folds the sigma contributions of all queries per
round.  This is the batching idea behind KADABRA's multi-sample
traversals and the near-zero-synchronization MPI engines of van der
Grinten & Meyerhenke, applied to the balanced bidirectional search of
Sec. III-D of the paper.

Bit-identity contract
---------------------

The kernel is a drop-in replacement for the scalar search; for every
query it reproduces :func:`bidirectional_search` exactly:

* the same balanced-side choice each round — every active query
  compares its two frontiers' pending arc counts, precisely the scalar
  loop's ``pending_work`` test, and expands exactly one side per round;
* bit-identical float64 ``sigma`` values — a node's count is folded in
  the round it is discovered, starting from exactly ``0.0``, with arc
  contributions consumed in the same (frontier-node, CSR-position)
  order as the scalar ``np.add.at``, so the floating-point sums agree
  to the last bit;
* the same ``distance``, separator ``cut_level``/``cut_nodes``/
  ``cut_weights``, ``sigma_st`` and per-query ``edges_explored`` (the
  work of proving unreachability included).

Queries retire from the cohort the moment they finish (the frontiers
meet, or an expansion discovers nothing), and pending queries are
admitted into the freed slots, so state stays ``O(cohort_size * n)``
while the kernel streams through arbitrarily many queries.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from .bfs import cohort_neighbors
from .bidirectional import BidirectionalResult

__all__ = ["DEFAULT_COHORT", "wavefront_search"]

#: Queries sharing the stacked frontier arrays at any moment.  Chosen so
#: the per-slot state (four length-``n`` rows) stays comfortably inside
#: cache-friendly territory on graphs in the 10^4..10^5-node range.
DEFAULT_COHORT = 64

_FORWARD, _BACKWARD = 0, 1


class _Cohort:
    """The stacked per-slot search state of up to ``capacity`` queries.

    Slot ``i`` owns row ``i`` of the ``(capacity, n)`` distance/sigma
    planes; retired slots are recycled for later queries (their rows
    are re-initialized on admission, and finalized results copy the
    rows out first).
    """

    def __init__(self, graph: CSRGraph, capacity: int):
        n = graph.n
        self.n = n
        self.capacity = capacity
        self.adj = (
            (graph.indptr, graph.indices),
            (graph.rev_indptr, graph.rev_indices),
        )
        self.degrees = (np.diff(graph.indptr), np.diff(graph.rev_indptr))
        shape = (capacity, n)
        self.dist = (
            np.full(shape, -1, dtype=np.int32),
            np.full(shape, -1, dtype=np.int32),
        )
        self.sigma = (np.zeros(shape), np.zeros(shape))
        self.radius = np.zeros((2, capacity), dtype=np.int64)
        self.edges = np.zeros((2, capacity), dtype=np.int64)
        self.frontier: tuple[list, list] = (
            [None] * capacity,
            [None] * capacity,
        )
        self.roots = np.zeros((2, capacity), dtype=np.int64)
        #: original query index per slot; -1 marks a free slot
        self.query = np.full(capacity, -1, dtype=np.int64)

    # ------------------------------------------------------------------
    def admit(self, slot: int, query: int, source: int, target: int) -> None:
        """Re-initialize ``slot`` for a new (source, target) query."""
        for side, root in ((_FORWARD, source), (_BACKWARD, target)):
            self.dist[side][slot].fill(-1)
            self.sigma[side][slot].fill(0.0)
            self.dist[side][slot, root] = 0
            self.sigma[side][slot, root] = 1.0
            self.frontier[side][slot] = np.array([root], dtype=np.int64)
        self.radius[:, slot] = 0
        self.edges[:, slot] = 0
        self.roots[_FORWARD, slot] = source
        self.roots[_BACKWARD, slot] = target
        self.query[slot] = query

    def step(self) -> list[tuple[int, int, tuple[BidirectionalResult | None, int]]]:
        """One round: every active query expands its cheaper side.

        Returns ``(slot, query, (result, edges))`` for each query that
        finished this round; the caller frees the slots.
        """
        active = np.flatnonzero(self.query >= 0)
        flat = []
        pending = np.empty((2, active.size))
        for side in (_FORWARD, _BACKWARD):
            owners, nodes = self._flatten(side, active)
            flat.append((owners, nodes))
            pending[side] = np.bincount(
                owners, weights=self.degrees[side][nodes], minlength=self.capacity
            )[active]
        # the scalar loop's tie-break: forward expands on equal work
        forward_first = pending[_FORWARD] <= pending[_BACKWARD]

        finished = []
        for side, chosen in (
            (_FORWARD, active[forward_first]),
            (_BACKWARD, active[~forward_first]),
        ):
            owners, nodes = flat[side]
            pick = np.zeros(self.capacity, dtype=bool)
            pick[chosen] = True
            selected = pick[owners]
            finished.extend(
                self._expand(side, chosen, owners[selected], nodes[selected])
            )
        return finished

    # ------------------------------------------------------------------
    def _flatten(
        self, side: int, slots: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stack the per-slot frontiers into flat (owner, node) arrays."""
        parts = [self.frontier[side][s] for s in slots]
        if not parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        lengths = np.fromiter((p.size for p in parts), np.int64, count=len(parts))
        return np.repeat(slots, lengths), np.concatenate(parts)

    def _expand(
        self, side: int, slots: np.ndarray, owners: np.ndarray, nodes: np.ndarray
    ) -> list[tuple[int, int, tuple[BidirectionalResult | None, int]]]:
        """Grow one level of ``side`` for every query in ``slots``."""
        if slots.size == 0:
            return []
        n = self.n
        indptr, indices = self.adj[side]
        heads, tails, edge_owner = cohort_neighbors(indptr, indices, nodes, owners)
        arcs = np.bincount(edge_owner, minlength=self.capacity)
        self.edges[side] += arcs

        dist = self.dist[side].ravel()
        sigma = self.sigma[side].ravel()
        if heads.size:
            key = edge_owner * n + heads
            undiscovered = dist[key] == -1
            new_keys = np.unique(key[undiscovered])
            level = self.radius[side][edge_owner] + 1
            dist[key[undiscovered]] = level[undiscovered]
            on_level = dist[key] == level
            # fold sigma contributions in arc order; every target key was
            # exactly 0.0 before this round, so the partial-sum-then-add
            # matches the scalar np.add.at bit-for-bit
            weights = sigma[(edge_owner * n + tails)[on_level]]
            positions = np.searchsorted(new_keys, key[on_level])
            sigma[new_keys] += np.bincount(
                positions, weights=weights, minlength=new_keys.size
            )
            # the scalar search bumps the radius whenever arcs were
            # gathered, even if nothing new was discovered
            grew = slots[arcs[slots] > 0]
            self.radius[side][grew] += 1
            new_owner = new_keys // n
            new_node = new_keys % n
        else:
            new_keys = np.empty(0, dtype=np.int64)
            new_owner = new_node = new_keys

        other_dist = self.dist[1 - side].ravel()
        met = other_dist[new_keys] != -1
        lows = np.searchsorted(new_owner, slots, side="left")
        highs = np.searchsorted(new_owner, slots, side="right")

        finished = []
        for slot, low, high in zip(slots, lows, highs):
            slot = int(slot)
            if low == high:
                # nothing newly discovered: this side exhausted its
                # closure without meeting the other — unreachable pair
                work = int(self.edges[_FORWARD, slot] + self.edges[_BACKWARD, slot])
                finished.append((slot, int(self.query[slot]), (None, work)))
                self.query[slot] = -1
                continue
            self.frontier[side][slot] = new_node[low:high]
            if met[low:high].any():
                result = self._finalize(slot)
                finished.append(
                    (slot, int(self.query[slot]), (result, result.edges_explored))
                )
                self.query[slot] = -1
        return finished

    def _finalize(self, slot: int) -> BidirectionalResult:
        """Assemble the scalar-identical result; copies the state rows
        out so the slot can be recycled."""
        rf = int(self.radius[_FORWARD, slot])
        rb = int(self.radius[_BACKWARD, slot])
        distance = rf + rb
        dist_f = self.dist[_FORWARD][slot].astype(np.int64)
        dist_b = self.dist[_BACKWARD][slot].astype(np.int64)
        sigma_f = self.sigma[_FORWARD][slot].copy()
        sigma_b = self.sigma[_BACKWARD][slot].copy()
        candidates = np.flatnonzero(dist_f == rf)
        on_path = dist_b[candidates] == distance - rf
        cut_nodes = candidates[on_path]
        cut_weights = sigma_f[cut_nodes] * sigma_b[cut_nodes]
        return BidirectionalResult(
            source=int(self.roots[_FORWARD, slot]),
            target=int(self.roots[_BACKWARD, slot]),
            distance=distance,
            sigma_st=float(cut_weights.sum()),
            dist_forward=dist_f,
            sigma_forward=sigma_f,
            dist_backward=dist_b,
            sigma_backward=sigma_b,
            cut_level=rf,
            cut_nodes=cut_nodes,
            cut_weights=cut_weights,
            edges_explored=int(
                self.edges[_FORWARD, slot] + self.edges[_BACKWARD, slot]
            ),
        )


def wavefront_search(
    graph: CSRGraph,
    sources,
    targets,
    cohort_size: int | None = None,
) -> list[tuple[BidirectionalResult | None, int]]:
    """Run many balanced bidirectional (s, t) searches, batched.

    Parameters
    ----------
    graph:
        The network (hop metric — callers route weighted graphs to
        Dijkstra before reaching this kernel).
    sources, targets:
        Equal-length integer arrays of query endpoints, ``s != t``
        pairwise (a pair sample always has distinct endpoints).
    cohort_size:
        Queries sharing the stacked state at any moment
        (:data:`DEFAULT_COHORT` when ``None``).  Any value >= 1 returns
        identical results; it only trades memory against batching.

    Returns
    -------
    list of ``(result, edges_explored)`` in query order, each entry
    exactly what :func:`~repro.paths.bidirectional.bidirectional_search`
    returns for that pair (``result is None`` for unreachable pairs).
    """
    sources = np.ascontiguousarray(sources, dtype=np.int64)
    targets = np.ascontiguousarray(targets, dtype=np.int64)
    if sources.ndim != 1 or sources.shape != targets.shape:
        raise ParameterError(
            "sources and targets must be 1-D arrays of equal length"
        )
    total = sources.size
    results: list = [None] * total
    if total == 0:
        return results
    n = graph.n
    lo = min(int(sources.min()), int(targets.min()))
    hi = max(int(sources.max()), int(targets.max()))
    if lo < 0 or hi >= n:
        raise ParameterError(f"query node ids outside [0, n={n})")
    if np.any(sources == targets):
        raise ParameterError("bidirectional search requires source != target")
    if cohort_size is None:
        cohort_size = DEFAULT_COHORT
    if cohort_size < 1:
        raise ParameterError(f"cohort_size must be >= 1, got {cohort_size}")

    cohort = _Cohort(graph, min(int(cohort_size), total))
    free = list(range(cohort.capacity - 1, -1, -1))
    admitted = 0
    done = 0
    while done < total:
        while free and admitted < total:
            cohort.admit(
                free.pop(), admitted, int(sources[admitted]), int(targets[admitted])
            )
            admitted += 1
        for slot, query, outcome in cohort.step():
            results[query] = outcome
            free.append(slot)
            done += 1
    return results
