"""Exact group betweenness centrality via avoid-set path counting.

For a group ``C``, the fraction of shortest s→t paths hitting ``C`` is

    sigma_st(C) / sigma_st = 1 - sigma_st^{avoid} / sigma_st

where ``sigma_st^{avoid}`` counts the shortest-in-G paths that miss the
group.  Those are exactly the paths of length ``d_G(s, t)`` in the
node-deleted graph ``G - A`` for the appropriate avoid set ``A`` (a
longer detour in ``G - A`` is not a shortest path of ``G``).  One BFS
in ``G`` plus one in ``G - A`` per source gives the exact value in
O(n·m) per group.

Endpoint convention follows the paper (Sec. III-B): with
``include_endpoints=True`` (default) a path is covered when *any* of
its nodes — endpoints included — is in ``C``, so a connected pair with
``s ∈ C`` or ``t ∈ C`` contributes 1.  With ``False`` (the classical
convention, kept for the ablation) a path is covered only when a group
node lies strictly inside it, i.e. the avoid set is ``C \\ {s, t}``.

Unreachable pairs contribute 0, matching the null-sample convention of
:mod:`repro.paths.sampler`, so sampled estimates converge to this
function's output.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import GraphError
from ..graph.csr import CSRGraph
from ._dispatch import shortest_path_counts

__all__ = ["exact_gbc", "normalized_gbc"]


def exact_gbc(graph: CSRGraph, group, include_endpoints: bool = True) -> float:
    """Exact ``B(C)`` of Eq. (2): summed fractions over ordered pairs.

    Parameters
    ----------
    group:
        Iterable of node ids (duplicates ignored).
    include_endpoints:
        See the module docstring.  The internal-only variant needs one
        extra BFS per (source, group-target) pair and is therefore
        slower when ``K`` is large.
    """
    members = np.unique(np.asarray(list(group), dtype=np.int64))
    if members.size == 0:
        return 0.0
    if members.min() < 0 or members.max() >= graph.n:
        raise GraphError("group contains node ids outside [0, n)")

    in_group = np.zeros(graph.n, dtype=bool)
    in_group[members] = True
    removed_all = graph.remove_nodes(members)

    total = 0.0
    for s in range(graph.n):
        dist_full, sigma_full = shortest_path_counts(graph, s)
        reachable = dist_full >= 0
        reachable[s] = False
        targets = np.flatnonzero(reachable)
        if targets.size == 0:
            continue
        if include_endpoints:
            total += _endpoint_contribution(
                graph, s, targets, in_group, removed_all, dist_full, sigma_full
            )
        else:
            total += _internal_contribution(
                graph, s, targets, members, in_group, removed_all, dist_full, sigma_full
            )
    return total


def normalized_gbc(graph: CSRGraph, group, include_endpoints: bool = True) -> float:
    """``B(C) / (n (n-1))`` — the paper's mu-normalization."""
    pairs = graph.num_ordered_pairs
    if pairs == 0:
        return 0.0
    return exact_gbc(graph, group, include_endpoints=include_endpoints) / pairs


def _endpoint_contribution(
    graph, s, targets, in_group, removed_all, dist_full, sigma_full
) -> float:
    """Contribution of source ``s`` under the paper's convention."""
    if in_group[s]:
        # every path out of a group node is covered at its first node
        return float(targets.size)
    dist_avoid, sigma_avoid = shortest_path_counts(removed_all, s)
    outside = targets[~in_group[targets]]
    survived = dist_avoid[outside] == dist_full[outside]
    avoid_counts = np.where(survived, sigma_avoid[outside], 0.0)
    part = float(np.sum(1.0 - avoid_counts / sigma_full[outside]))
    # targets inside the group are covered at their last node
    return part + float(np.count_nonzero(in_group[targets]))


def _internal_contribution(
    graph, s, targets, members, in_group, removed_all, dist_full, sigma_full
) -> float:
    """Contribution of source ``s`` under the internal-only convention:
    the avoid set for pair (s, t) is ``C \\ {s, t}``."""
    others = members[members != s]
    if others.size == 0:
        # C == {s}: s is never strictly inside its own paths
        return 0.0
    trimmed = removed_all if not in_group[s] else graph.remove_nodes(others)
    dist_avoid, sigma_avoid = shortest_path_counts(trimmed, s)

    outside = targets[~in_group[targets]]
    survived = dist_avoid[outside] == dist_full[outside]
    avoid_counts = np.where(survived, sigma_avoid[outside], 0.0)
    total = float(np.sum(1.0 - avoid_counts / sigma_full[outside]))

    for t in targets[in_group[targets]]:
        t = int(t)
        keep_out = members[(members != s) & (members != t)]
        if keep_out.size == 0:
            continue  # no possible interior group node
        trimmed_t = graph.remove_nodes(keep_out)
        dist_t, sigma_t = shortest_path_counts(trimmed_t, s, target=t)
        if dist_t[t] != dist_full[t]:
            total += 1.0
        else:
            total += 1.0 - float(sigma_t[t]) / float(sigma_full[t])
    return total
