"""Dijkstra with shortest-path counting for integer-weighted graphs.

The weighted counterpart of :mod:`repro.paths.bfs`.  Because the
package restricts weights to positive integers
(:mod:`repro.graph.weighted`), distances are exact and the equality
tests behind sigma counting, avoid-set logic, and path sampling are
safe.

Correctness of the sigma accumulation: with strictly positive weights,
every predecessor of ``v`` on a shortest path has a strictly smaller
distance, so by the time ``v`` is finalized (popped with its final
distance) all of its shortest-path predecessors were finalized earlier
and ``sigma[v]`` is complete.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..exceptions import GraphError
from ..graph.weighted import WeightedCSRGraph

__all__ = ["dijkstra_sigma", "weighted_distances"]


def dijkstra_sigma(
    graph: WeightedCSRGraph,
    source: int,
    reverse: bool = False,
    target: int | None = None,
):
    """Weighted distances, path counts, and the finalization order.

    Parameters
    ----------
    reverse:
        Follow in-arcs (distances *to* ``source``).
    target:
        Stop as soon as ``target`` is finalized (its distance and
        sigma are exact at that point).

    Returns
    -------
    (dist, sigma, order):
        ``dist[v]`` is the weighted distance (``-1`` if unreachable),
        ``sigma[v]`` the number of minimum-weight paths, and ``order``
        the array of finalized nodes in ascending distance order —
        what the weighted Brandes accumulation walks backwards.
    """
    if not isinstance(graph, WeightedCSRGraph):
        raise GraphError("dijkstra_sigma requires a WeightedCSRGraph")
    if reverse:
        indptr, indices, weights = (
            graph.rev_indptr,
            graph.rev_indices,
            graph.rev_weights,
        )
    else:
        indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    n = graph.n
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    finalized = np.zeros(n, dtype=bool)
    order: list[int] = []

    tentative = {source: 0}
    sigma[source] = 1.0
    heap: list[tuple[int, int]] = [(0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if finalized[v] or d != tentative.get(v):
            continue  # stale entry
        finalized[v] = True
        dist[v] = d
        order.append(v)
        if target is not None and v == target:
            break
        start, stop = indptr[v], indptr[v + 1]
        for w, length in zip(indices[start:stop], weights[start:stop]):
            w = int(w)
            if finalized[w]:
                continue
            candidate = d + int(length)
            known = tentative.get(w)
            if known is None or candidate < known:
                tentative[w] = candidate
                sigma[w] = sigma[v]
                heapq.heappush(heap, (candidate, w))
            elif candidate == known:
                sigma[w] += sigma[v]
    # wipe sigma of unfinalized nodes (their counts may be partial)
    sigma[~finalized] = 0.0
    return dist, sigma, np.asarray(order, dtype=np.int64)


def weighted_distances(
    graph: WeightedCSRGraph, source: int, reverse: bool = False
) -> np.ndarray:
    """Weighted distances from (or to) ``source``; ``-1`` = unreachable."""
    dist, _, _ = dijkstra_sigma(graph, source, reverse=reverse)
    return dist
