"""Shortest-path machinery: BFS, bidirectional search, sampling, exact BC/GBC."""

from .allpairs import all_pairs_sigma
from .bfs import bfs_distances, bfs_sigma
from .bidirectional import BidirectionalResult, bidirectional_sigma
from .brandes import betweenness_centrality
from .dijkstra import dijkstra_sigma, weighted_distances
from .exact_gbc import exact_gbc, normalized_gbc
from .pair_sampler import PairSample, PairSampler, shortest_path_dag
from .sampler import PathSample, PathSampler
from .wavefront import DEFAULT_COHORT, wavefront_search
from .wavefront_weighted import WeightedSearchResult, wavefront_weighted_search

__all__ = [
    "bfs_distances",
    "bfs_sigma",
    "dijkstra_sigma",
    "weighted_distances",
    "BidirectionalResult",
    "bidirectional_sigma",
    "betweenness_centrality",
    "all_pairs_sigma",
    "exact_gbc",
    "normalized_gbc",
    "PathSample",
    "PairSample",
    "PairSampler",
    "shortest_path_dag",
    "PathSampler",
    "DEFAULT_COHORT",
    "wavefront_search",
    "WeightedSearchResult",
    "wavefront_weighted_search",
]
