"""Balanced bidirectional BFS with exact shortest-path counting.

This implements the sampling substrate described in Sec. III-D of the
paper (and in KADABRA / SILVAN): two breadth-first searches grow from
``s`` (forwards) and ``t`` (backwards along arcs), and at every step the
side whose frontier touches fewer edges is expanded — so the total work
is balanced and, on realistic networks, sublinear in ``m``.

Counting correctness rests on the *separator level* argument.  Let the
search stop with forward radius ``rf`` and backward radius ``rb``.  On
any shortest s→t path of length ``d``, the node at position ``i``
satisfies ``d(s, v_i) = i`` and ``d(v_i, t) = d - i`` exactly.  At the
moment the frontiers first meet we have ``d = rf + rb``, so every
shortest path crosses exactly one node ``v`` with ``dist_f[v] = rf``
and ``dist_b[v] = rb``, and

    sigma_st = sum over that cut of sigma_f[v] * sigma_b[v].

The returned :class:`BidirectionalResult` carries both halves of the
search so that :mod:`repro.paths.sampler` can draw a uniformly random
shortest path without re-traversing the graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from .bfs import frontier_neighbors

__all__ = ["BidirectionalResult", "bidirectional_search", "bidirectional_sigma"]


@dataclass
class BidirectionalResult:
    """Outcome of one balanced bidirectional search.

    Attributes
    ----------
    source, target:
        The endpoints of the query.
    distance:
        Hop length ``d(s, t)``.
    sigma_st:
        Total number of shortest s→t paths.
    dist_forward, sigma_forward:
        Distances/path counts from ``s`` (valid up to the forward
        radius; ``-1`` / ``0`` beyond it).
    dist_backward, sigma_backward:
        Distances/path counts *to* ``t``.
    cut_level:
        The separator level ``rf``: every shortest path crosses exactly
        one node ``v`` with ``dist_forward[v] == cut_level``.
    cut_nodes, cut_weights:
        The separator nodes and their path counts
        ``sigma_forward * sigma_backward`` (summing to ``sigma_st``).
    edges_explored:
        Total arcs touched by both searches — the work measure used by
        the bidirectional-vs-forward ablation.
    """

    source: int
    target: int
    distance: int
    sigma_st: float
    dist_forward: np.ndarray
    sigma_forward: np.ndarray
    dist_backward: np.ndarray
    sigma_backward: np.ndarray
    cut_level: int
    cut_nodes: np.ndarray
    cut_weights: np.ndarray
    edges_explored: int


class _Side:
    """One half of the bidirectional search (a resumable level BFS)."""

    __slots__ = ("indptr", "indices", "dist", "sigma", "frontier", "radius", "edges")

    def __init__(self, indptr, indices, n: int, root: int):
        self.indptr = indptr
        self.indices = indices
        self.dist = np.full(n, -1, dtype=np.int64)
        self.sigma = np.zeros(n, dtype=np.float64)
        self.dist[root] = 0
        self.sigma[root] = 1.0
        self.frontier = np.array([root], dtype=np.int64)
        self.radius = 0
        self.edges = 0

    def pending_work(self) -> int:
        """Number of arcs the next expansion would touch."""
        return int(
            (self.indptr[self.frontier + 1] - self.indptr[self.frontier]).sum()
        )

    def expand(self) -> np.ndarray:
        """Grow one level; return the newly discovered nodes."""
        heads, tails = frontier_neighbors(self.indptr, self.indices, self.frontier)
        self.edges += heads.size
        if heads.size == 0:
            self.frontier = heads
            return heads
        undiscovered = self.dist[heads] == -1
        newly = np.unique(heads[undiscovered])
        self.dist[newly] = self.radius + 1
        on_level = self.dist[heads] == self.radius + 1
        np.add.at(self.sigma, heads[on_level], self.sigma[tails[on_level]])
        self.frontier = newly
        self.radius += 1
        return newly


def bidirectional_search(
    graph: CSRGraph, source: int, target: int
) -> tuple[BidirectionalResult | None, int]:
    """Run the balanced search; always report the traversal work.

    Returns ``(result, edges_explored)`` where ``result`` is ``None``
    for an unreachable pair.  Unlike :func:`bidirectional_sigma` the
    arcs touched while *proving* unreachability (both searches exhaust
    their closure) are returned too, so work accounting on fragmented
    graphs stays exact.
    """
    if source == target:
        raise ParameterError("bidirectional search requires source != target")
    n = graph.n
    if not (0 <= source < n and 0 <= target < n):
        # constructor-validation convention: bad arguments surface as
        # ParameterError, never as a raw numpy IndexError
        raise ParameterError(
            f"query node ids ({source}, {target}) outside [0, n={n})"
        )
    forward = _Side(graph.indptr, graph.indices, n, source)
    backward = _Side(graph.rev_indptr, graph.rev_indices, n, target)

    while forward.frontier.size and backward.frontier.size:
        side = (
            forward
            if forward.pending_work() <= backward.pending_work()
            else backward
        )
        other = backward if side is forward else forward
        newly = side.expand()
        if newly.size == 0:
            return None, forward.edges + backward.edges
        met = newly[other.dist[newly] != -1]
        if met.size:
            result = _finalize(graph, source, target, forward, backward)
            return result, result.edges_explored
    return None, forward.edges + backward.edges


def bidirectional_sigma(
    graph: CSRGraph, source: int, target: int
) -> BidirectionalResult | None:
    """Distance and shortest-path count between ``source`` and ``target``.

    Returns ``None`` when ``target`` is unreachable from ``source``.
    Raises :class:`~repro.exceptions.ParameterError` if the endpoints
    coincide (a pair sample always has ``s != t``).
    """
    result, _ = bidirectional_search(graph, source, target)
    return result


def _finalize(
    graph: CSRGraph, source: int, target: int, forward: _Side, backward: _Side
) -> BidirectionalResult:
    """Assemble the result once the frontiers have met."""
    distance = forward.radius + backward.radius
    cut_level = forward.radius
    # the separator: nodes proven to sit at position cut_level on a path
    candidates = np.flatnonzero(forward.dist == cut_level)
    on_path = backward.dist[candidates] == distance - cut_level
    cut_nodes = candidates[on_path]
    cut_weights = forward.sigma[cut_nodes] * backward.sigma[cut_nodes]
    sigma_st = float(cut_weights.sum())
    return BidirectionalResult(
        source=source,
        target=target,
        distance=distance,
        sigma_st=sigma_st,
        dist_forward=forward.dist,
        sigma_forward=forward.sigma,
        dist_backward=backward.dist,
        sigma_backward=backward.sigma,
        cut_level=cut_level,
        cut_nodes=cut_nodes,
        cut_weights=cut_weights,
        edges_explored=forward.edges + backward.edges,
    )
