"""Single-source shortest-path dispatch: BFS for hop counts, Dijkstra
for integer-weighted graphs.

Modules that are agnostic to the metric (exact GBC, Brandes, the
sampler's reconstruction walks) call :func:`shortest_path_counts` and
get the right engine for the graph they were handed.
"""

from __future__ import annotations

from ..graph.csr import CSRGraph
from ..graph.weighted import WeightedCSRGraph
from .bfs import bfs_sigma
from .dijkstra import dijkstra_sigma

__all__ = ["shortest_path_counts", "is_weighted"]


def is_weighted(graph: CSRGraph) -> bool:
    """Whether ``graph`` carries integer edge lengths."""
    return isinstance(graph, WeightedCSRGraph)


def shortest_path_counts(
    graph: CSRGraph, source: int, reverse: bool = False, target: int | None = None
):
    """``(dist, sigma)`` from the engine matching the graph type."""
    if is_weighted(graph):
        dist, sigma, _ = dijkstra_sigma(graph, source, reverse=reverse, target=target)
        return dist, sigma
    return bfs_sigma(graph, source, reverse=reverse, target=target)
