"""Pair sampling — the alternative sampling scheme of Yoshida [KDD'14].

Where the path sampler (:mod:`repro.paths.sampler`) draws **one**
uniform shortest path per random pair, pair sampling keeps the **whole
shortest-path DAG**: the hyperedge of a sample ``(s, t)`` is every node
on *any* shortest s→t path,

    DAG(s, t) = { v : d(s, v) + d(v, t) = d(s, t) }.

Computing the full DAG needs a complete forward BFS (to depth
``d(s,t)``) plus a complete backward BFS — the bidirectional early
stop cannot be used, which is one of the two reasons the literature
moved to path sampling.  The other is statistical: covering a sample's
hyperedge means touching *some* shortest path of the pair, so the
"covered fraction of pairs" objective that pair sampling optimizes is
an **upper bound** on the true group betweenness (Mahmoody et al.
showed the associated sample bound is inadequate for a
``(1 - 1/e - eps)`` guarantee on B(C)).  The
:class:`~repro.algorithms.yoshida.YoshidaSketch` baseline and the
pair-vs-path ablation quantify both effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._rng import as_generator
from ..exceptions import GraphError
from ..graph.csr import CSRGraph
from .bfs import bfs_sigma

__all__ = ["PairSample", "PairSampler", "shortest_path_dag"]


@dataclass(frozen=True)
class PairSample:
    """One pair sample: the full shortest-path DAG node set.

    ``nodes`` is empty when the pair is disconnected (a null sample,
    same convention as the path sampler).
    """

    source: int
    target: int
    nodes: np.ndarray = field(repr=False)
    distance: int
    edges_explored: int

    @property
    def is_null(self) -> bool:
        """Whether the pair was disconnected."""
        return self.nodes.size == 0


def shortest_path_dag(graph: CSRGraph, source: int, target: int):
    """All nodes on any shortest source→target path (sorted array),
    or ``None`` when the target is unreachable.

    Also returns the traversal work: ``(nodes, distance, edges)``.
    """
    dist_f, _ = bfs_sigma(graph, source, target=target)
    if dist_f[target] == -1:
        return None
    distance = int(dist_f[target])
    dist_b, _ = bfs_sigma(graph, target, reverse=True, max_depth=distance)
    on_dag = (dist_f >= 0) & (dist_b >= 0) & (dist_f + dist_b == distance)
    nodes = np.flatnonzero(on_dag)
    # arcs scanned: out-arcs of every expanded forward node plus in-arcs
    # of every expanded backward node
    forward_expanded = (dist_f >= 0) & (dist_f < distance)
    backward_expanded = (dist_b >= 0) & (dist_b < distance)
    explored = int(
        graph.out_degrees()[forward_expanded].sum()
        + graph.in_degrees()[backward_expanded].sum()
    )
    return nodes, distance, explored


class PairSampler:
    """Draws independent pair samples (full shortest-path DAGs)."""

    def __init__(self, graph: CSRGraph, seed=None):
        if graph.n < 2:
            raise GraphError("sampling requires a graph with at least 2 nodes")
        self.graph = graph
        self._rng = as_generator(seed)
        self.total_samples = 0
        self.total_edges_explored = 0

    def sample(self) -> PairSample:
        """Draw one random ordered pair and its shortest-path DAG."""
        n = self.graph.n
        rng = self._rng
        source = int(rng.integers(n))
        target = int(rng.integers(n - 1))
        if target >= source:
            target += 1
        return self.sample_pair(source, target)

    def sample_pair(self, source: int, target: int) -> PairSample:
        """The DAG sample for a given ordered pair."""
        result = shortest_path_dag(self.graph, source, target)
        if result is None:
            sample = PairSample(
                source=source,
                target=target,
                nodes=np.empty(0, dtype=np.int64),
                distance=-1,
                edges_explored=0,
            )
        else:
            nodes, distance, explored = result
            sample = PairSample(
                source=source,
                target=target,
                nodes=nodes,
                distance=distance,
                edges_explored=explored,
            )
        self.total_samples += 1
        self.total_edges_explored += sample.edges_explored
        return sample
