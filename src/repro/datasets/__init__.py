"""Dataset registry: scaled synthetic stand-ins for the paper's Table I."""

from .registry import DATASETS, DatasetSpec, dataset_names, get_spec, load

__all__ = ["DATASETS", "DatasetSpec", "dataset_names", "get_spec", "load"]
