"""The paper's Table I datasets, as seeded synthetic stand-ins.

The original evaluation uses eight SNAP/WOSN networks (up to 5.4M
nodes) plus two synthetic ones.  This environment has no network
access, so each dataset is replaced by a generator producing a graph
with the same directedness and qualitatively similar structure
(heavy-tailed degrees for the social/citation networks, ring-lattice
small-world for the WS entry), scaled to a size where a pure-Python
reproduction of the full experiment grid is feasible.  The registry
records the paper's original ``<|V|, |E|>`` so Table I can be printed
with both columns side by side.

The substitution is sound for the paper's claims because every
quantity under test (relative error convergence, sample-count ratios,
approximation quality relative to EXHAUST) is a *ratio* driven by the
shortest-path structure of heavy-tailed graphs, not by absolute scale;
see DESIGN.md §4.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..exceptions import DatasetError
from ..graph import (
    CSRGraph,
    barabasi_albert,
    giant_component,
    powerlaw_cluster,
    random_directed,
    watts_strogatz,
)

__all__ = ["DatasetSpec", "DATASETS", "load", "dataset_names", "get_spec"]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one Table I dataset and its stand-in generator.

    ``paper_nodes`` / ``paper_edges`` are the sizes reported in the
    paper; ``factory(seed)`` materializes the scaled stand-in.
    """

    name: str
    paper_nodes: int
    paper_edges: int
    directed: bool
    kind: str
    description: str
    factory: Callable[[int], CSRGraph]


def _grqc(seed: int) -> CSRGraph:
    return powerlaw_cluster(2000, 3, 0.3, seed=seed)


def _facebook(seed: int) -> CSRGraph:
    return barabasi_albert(4000, 10, seed=seed)


def _coauthor(seed: int) -> CSRGraph:
    return powerlaw_cluster(3000, 2, 0.4, seed=seed)


def _dblp(seed: int) -> CSRGraph:
    return powerlaw_cluster(5000, 3, 0.3, seed=seed)


def _epinions(seed: int) -> CSRGraph:
    return random_directed(3000, 20000, seed=seed, hub_exponent=0.8)


def _twitter(seed: int) -> CSRGraph:
    return random_directed(3000, 12000, seed=seed, hub_exponent=0.9)


def _email(seed: int) -> CSRGraph:
    return random_directed(4000, 7000, seed=seed, hub_exponent=1.0)


def _livejournal(seed: int) -> CSRGraph:
    return random_directed(5000, 40000, seed=seed, hub_exponent=0.7)


def _synthetic_ba(seed: int) -> CSRGraph:
    return barabasi_albert(4000, 8, seed=seed)


def _synthetic_ws(seed: int) -> CSRGraph:
    return watts_strogatz(4000, 16, 0.1, seed=seed)


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "GrQc", 5244, 14496, False, "collaboration",
            "arXiv General Relativity collaboration network",
            _grqc,
        ),
        DatasetSpec(
            "Facebook", 63731, 817090, False, "social",
            "WOSN 2009 Facebook friendship network",
            _facebook,
        ),
        DatasetSpec(
            "Coauthor", 53442, 127968, False, "collaboration",
            "Coauthorship network (Lou & Tang, WWW'13)",
            _coauthor,
        ),
        DatasetSpec(
            "DBLP-2011", 986324, 3353618, False, "collaboration",
            "DBLP coauthorship snapshot, 2011",
            _dblp,
        ),
        DatasetSpec(
            "Epinions", 75879, 508837, True, "social",
            "Epinions who-trusts-whom network",
            _epinions,
        ),
        DatasetSpec(
            "Twitter", 92180, 377942, True, "social",
            "Twitter follower subgraph (Lou & Tang, WWW'13)",
            _twitter,
        ),
        DatasetSpec(
            "Email-euAll", 265214, 420045, True, "communication",
            "EU research institution email network",
            _email,
        ),
        DatasetSpec(
            "LiveJournal", 5363260, 54880888, True, "social",
            "LiveJournal friendship network",
            _livejournal,
        ),
        DatasetSpec(
            "SyntheticNetwork-BA", 100000, 800000, False, "synthetic",
            "Barabási–Albert preferential-attachment network",
            _synthetic_ba,
        ),
        DatasetSpec(
            "SyntheticNetwork-WS", 100000, 800000, False, "synthetic",
            "Watts–Strogatz small-world network",
            _synthetic_ws,
        ),
    ]
}


def dataset_names() -> list[str]:
    """Registry names in Table I order."""
    return list(DATASETS)


def get_spec(name: str) -> DatasetSpec:
    """Lookup; raises :class:`~repro.exceptions.DatasetError` if unknown."""
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(DATASETS)
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None


def load(name: str, seed: int = 0, giant_only: bool = True) -> CSRGraph:
    """Materialize a dataset stand-in.

    Parameters
    ----------
    seed:
        Generator seed — the same (name, seed) pair always yields the
        same graph.
    giant_only:
        Restrict to the largest weakly connected component (the SNAP
        preprocessing convention); recommended for sampling.
    """
    spec = get_spec(name)
    graph = spec.factory(seed)
    if giant_only:
        graph, _ = giant_component(graph)
    return graph
