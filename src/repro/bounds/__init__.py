"""Concentration bounds and sample-size schedules (paper Secs. IV–V)."""

from .martingale import (
    EULER_FACTOR,
    alpha_of,
    base_lower_bound,
    c2_of,
    choose_base,
    deviation_probability,
    epsilon_one,
    max_relative_beta,
    q_max_of,
    theta_of,
)
from .rademacher import era_deviation_bound, monte_carlo_era, signed_greedy_supremum
from .sample_size import (
    adaalg_schedule,
    centra_sample_size,
    guess_schedule,
    hedge_sample_size,
)

__all__ = [
    "EULER_FACTOR",
    "alpha_of",
    "c2_of",
    "base_lower_bound",
    "choose_base",
    "q_max_of",
    "theta_of",
    "epsilon_one",
    "deviation_probability",
    "max_relative_beta",
    "hedge_sample_size",
    "centra_sample_size",
    "adaalg_schedule",
    "guess_schedule",
    "monte_carlo_era",
    "signed_greedy_supremum",
    "era_deviation_bound",
]
