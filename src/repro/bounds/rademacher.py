"""Monte-Carlo empirical Rademacher averages over group-coverage families.

Pellegrina's CentRa controls the deviation of *every* group's coverage
estimate via Rademacher averages.  This module provides the empirical
counterpart: given the sampled-path incidence of a
:class:`~repro.coverage.CoverageInstance`, the empirical Rademacher
average (ERA) of the family ``{ f_C : C subset of V, |C| <= K }`` with
``f_C(path) = 1[path hits C]`` is

    R_hat = E_sigma [ sup_C (1/L) sum_l sigma_l f_C(path_l) ],

with i.i.d. signs ``sigma_l in {-1, +1}``.  The inner sup is a signed
maximum-coverage problem (NP-hard, non-submodular); we approximate it
with the natural signed greedy that picks the node with the best
(+paths minus -paths) marginal gain.  The result is therefore an
*estimate*, slightly biased low, which is why the library uses it for
diagnostics and the ablation study rather than inside a proof-carrying
stopping rule (CentRa's production stopping rule uses the analytic
complexity term in :mod:`repro.bounds.sample_size`).

The deviation bound assembled by :func:`era_deviation_bound` is the
standard symmetrization + McDiarmid chain: with probability at least
``1 - delta``,

    sup_C |coverage_hat(C) - coverage(C)|
        <= 2 R_hat + 3 sqrt( ln(2/delta) / (2 L) ).
"""

from __future__ import annotations

import math

import numpy as np

from .._rng import as_generator
from ..coverage.hypergraph import CoverageInstance
from ..exceptions import ParameterError

__all__ = ["signed_greedy_supremum", "monte_carlo_era", "era_deviation_bound"]


def signed_greedy_supremum(
    instance: CoverageInstance, signs: np.ndarray, k: int
) -> float:
    """Greedy approximation of ``max_{|C| <= K} sum_l sigma_l f_C(l)``.

    Greedily adds the node with the largest positive signed marginal
    gain; stops early when no node improves the objective (choosing
    fewer than ``K`` nodes can only help with negative signs present).
    """
    if signs.shape[0] != instance.num_paths:
        raise ParameterError("need exactly one sign per stored path")
    covered = np.zeros(instance.num_paths, dtype=bool)
    chosen: set[int] = set()
    value = 0.0
    for _ in range(k):
        best_node, best_gain = -1, 0.0
        for node in range(instance.num_nodes):
            if node in chosen:
                continue
            pids = instance.paths_through_array(node)
            if pids.size == 0:
                continue
            fresh = pids[~covered[pids]]
            gain = float(signs[fresh].sum()) if fresh.size else 0.0
            if gain > best_gain:
                best_node, best_gain = node, gain
        if best_node < 0:
            break
        chosen.add(best_node)
        covered[instance.paths_through_array(best_node)] = True
        value += best_gain
    return value


def monte_carlo_era(
    instance: CoverageInstance, k: int, num_draws: int = 10, seed=None
) -> float:
    """Monte-Carlo estimate of the empirical Rademacher average.

    Averages :func:`signed_greedy_supremum` over ``num_draws``
    independent sign vectors and normalizes by ``L``.
    """
    if num_draws < 1:
        raise ParameterError("num_draws must be >= 1")
    if instance.num_paths == 0:
        return 0.0
    rng = as_generator(seed)
    total = 0.0
    for _ in range(num_draws):
        signs = rng.choice(np.array([-1.0, 1.0]), size=instance.num_paths)
        total += signed_greedy_supremum(instance, signs, k)
    return total / (num_draws * instance.num_paths)


def era_deviation_bound(era: float, num_samples: int, delta: float) -> float:
    """Uniform-deviation bound from an ERA value (module docstring)."""
    if num_samples < 1:
        raise ParameterError("num_samples must be >= 1")
    if not 0.0 < delta < 1.0:
        raise ParameterError(f"delta must lie in (0, 1); got {delta}")
    if era < 0.0:
        era = 0.0
    return 2.0 * era + 3.0 * math.sqrt(math.log(2.0 / delta) / (2.0 * num_samples))
