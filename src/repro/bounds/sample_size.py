"""Sample-size schedules for AdaAlg and the comparison algorithms.

The paper compares three path-sampling algorithms whose sample counts
it quotes as asymptotic bounds (Sec. II).  To run them, the O(·)
bounds need explicit constants; we derive them from the same Lemma-2
style tail bound so that the *relative* comparison (the subject of
Figs. 4–5) is apples-to-apples:

* **HEDGE** [Mahmoody et al. 2016] must control the deviation of every
  one of the ``n^K`` candidate groups to ``(eps/2)·opt``.  Setting
  ``lam B(C) = (eps/2) opt`` in Lemma 2 with a union bound over
  ``n^K`` groups gives

      L_2(mu) = 4 (2 + eps/3) (K ln n + ln(2/gamma)) / (eps^2 mu).

* **CentRa** [Pellegrina 2023] replaces the crude ``K ln n`` union
  bound with a Rademacher-average complexity term
  ``K (ln K)(ln ln n)(ln 1/mu)`` and variance-aware tail bounds, which
  also sharpen the leading constant; we use half of HEDGE's constant:

      L_3(mu) = 2 (2 + eps/3) (K ln K ln ln n ln(1/mu) + ln(2/gamma))
                / (eps^2 mu).

* **AdaAlg** (this paper) grows the sample set geometrically:
  ``L_q = theta * b^q`` (Eq. 7), with ``theta`` and ``b`` from
  :mod:`repro.bounds.martingale`.

``mu`` is the (guessed) normalized optimum ``opt / n(n-1)``; every
algorithm lowers the guess geometrically until its stopping rule fires.
"""

from __future__ import annotations

import math

from ..exceptions import ParameterError
from .martingale import choose_base, q_max_of, theta_of

__all__ = [
    "hedge_sample_size",
    "centra_sample_size",
    "adaalg_schedule",
    "guess_schedule",
]


def _validate(n: int, k: int, eps: float, gamma: float, mu: float) -> None:
    if n < 2:
        raise ParameterError(f"need n >= 2, got {n}")
    if not 1 <= k <= n:
        raise ParameterError(f"need 1 <= K <= n, got K={k}")
    if not 0.0 < eps < 1.0:
        raise ParameterError(f"eps must lie in (0, 1), got {eps}")
    if not 0.0 < gamma < 1.0:
        raise ParameterError(f"gamma must lie in (0, 1), got {gamma}")
    if not 0.0 < mu <= 1.0:
        raise ParameterError(f"mu must lie in (0, 1], got {mu}")


def hedge_sample_size(n: int, k: int, eps: float, gamma: float, mu: float) -> int:
    """HEDGE's union-bound sample count ``L_2(mu)`` (see module docs)."""
    _validate(n, k, eps, gamma, mu)
    complexity = k * math.log(n) + math.log(2.0 / gamma)
    return math.ceil(4.0 * (2.0 + eps / 3.0) * complexity / (eps * eps * mu))


def centra_sample_size(n: int, k: int, eps: float, gamma: float, mu: float) -> int:
    """CentRa's Rademacher-complexity sample count ``L_3(mu)``."""
    _validate(n, k, eps, gamma, mu)
    log_k = math.log(max(k, 2))
    loglog_n = math.log(math.log(max(n, 3)))
    log_inv_mu = math.log(1.0 / mu)
    complexity = k * log_k * max(loglog_n, 1.0) * max(log_inv_mu, 1.0)
    complexity += math.log(2.0 / gamma)
    return math.ceil(2.0 * (2.0 + eps / 3.0) * complexity / (eps * eps * mu))


def adaalg_schedule(n: int, eps: float, gamma: float, b_min: float = 1.1):
    """AdaAlg's per-iteration constants: ``(b, q_max, theta)``.

    ``L_q = ceil(theta * b^q)`` for ``q = 1 .. q_max`` (Eq. 7).
    """
    if n < 2:
        raise ParameterError(f"need n >= 2, got {n}")
    b = choose_base(eps, b_min=b_min)
    q_max = q_max_of(n, b)
    theta = theta_of(eps, gamma, q_max)
    return b, q_max, theta


def guess_schedule(n: int, base: float = 2.0):
    """Geometric guesses of ``opt``: ``n(n-1)/base^q`` for ``q = 1, 2, ...``.

    Yields ``(q, guess, mu_guess)`` down to a single ordered pair's
    worth of centrality; used by the HEDGE/CentRa outer loops.
    """
    if n < 2:
        raise ParameterError(f"need n >= 2, got {n}")
    if base <= 1.0:
        raise ParameterError(f"guess base must exceed 1, got {base}")
    pairs = n * (n - 1)
    q = 0
    while True:
        q += 1
        guess = pairs / base**q
        if guess < 1.0:
            return
        yield q, guess, guess / pairs
