"""The paper's concentration machinery (Sec. IV–V), in closed form.

Samples drawn inside an adaptive algorithm are not independent (how
many get drawn depends on earlier draws), so the paper replaces
Chernoff bounds with a Chernoff-like *martingale* tail bound
(Lemma 1, Chung–Lu Thm. 18) and derives:

* Lemma 2 — the deviation probability of the unbiased estimator
  (:func:`deviation_probability`);
* Eq. 10 — the error radius ``eps_1`` as the root of
  ``x^2 / (2 + 2x/3) = c_1`` (:func:`epsilon_one`);
* Eq. 12–13 — the sample-growth base ``b`` (:func:`base_lower_bound`,
  :func:`choose_base`), the smallest base for which Lemma 3's
  exponent ``c_2 (3/2 - 9/(2b+4)) (1 - 1/b)`` reaches 1;
* the constants ``alpha``, ``theta``, ``Q_max`` of Algorithm 1
  (:func:`alpha_of`, :func:`theta_of`, :func:`q_max_of`).

Every function is a pure formula, which lets the tests verify the
algebra (e.g. that ``eps_1`` really solves its quadratic and ``b'``
really normalizes Lemma 3's exponent).
"""

from __future__ import annotations

import math

from ..exceptions import ParameterError

__all__ = [
    "EULER_FACTOR",
    "alpha_of",
    "c2_of",
    "base_lower_bound",
    "choose_base",
    "q_max_of",
    "theta_of",
    "epsilon_one",
    "deviation_probability",
    "max_relative_beta",
]

#: ``1 - 1/e`` — the greedy max-coverage approximation factor.
EULER_FACTOR = 1.0 - 1.0 / math.e

_DEFAULT_B_MIN = 1.1


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ParameterError(message)


def alpha_of(eps: float) -> float:
    """``alpha = eps / (2 - 1/e)`` (Algorithm 1, line 1)."""
    _require(0.0 < eps < EULER_FACTOR, f"eps must lie in (0, 1 - 1/e); got {eps}")
    return eps / (2.0 - 1.0 / math.e)


def c2_of(alpha: float) -> float:
    """``c_2 = (2 + alpha) / alpha^2`` (Sec. IV-C)."""
    _require(alpha > 0.0, f"alpha must be positive; got {alpha}")
    return (2.0 + alpha) / (alpha * alpha)


def base_lower_bound(c2: float) -> float:
    """Eq. 12: ``b' = (3 c_2 + 2 + sqrt(18 c_2 + 4)) / (3 c_2 - 2)``.

    ``b'`` is the base at which Lemma 3's exponent
    ``c_2 (3/2 - 9/(2b+4)) (1 - 1/b)`` equals exactly 1, so any
    ``b >= b'`` keeps the false-trigger probability below
    ``gamma / (2 Q_max)``.
    """
    _require(c2 > 2.0 / 3.0, f"c2 must exceed 2/3 for Eq. 12; got {c2}")
    return (3.0 * c2 + 2.0 + math.sqrt(18.0 * c2 + 4.0)) / (3.0 * c2 - 2.0)


def choose_base(eps: float, b_min: float = _DEFAULT_B_MIN) -> float:
    """Eq. 13: ``b = max(b', b_min)`` for the given error ratio."""
    _require(b_min > 1.0, f"b_min must exceed 1; got {b_min}")
    return max(base_lower_bound(c2_of(alpha_of(eps))), b_min)


def q_max_of(n: int, b: float) -> int:
    """``Q_max = ceil(log_b n(n-1))`` — the iteration budget."""
    _require(n >= 2, f"need at least two nodes; got n={n}")
    _require(b > 1.0, f"base must exceed 1; got {b}")
    return max(1, math.ceil(math.log(n * (n - 1)) / math.log(b)))


def theta_of(eps: float, gamma: float, q_max: int) -> float:
    """``theta = (ln(2/gamma) + ln Q_max) (2 + alpha) / alpha^2``."""
    _require(0.0 < gamma < 1.0, f"gamma must lie in (0, 1); got {gamma}")
    _require(q_max >= 1, f"Q_max must be >= 1; got {q_max}")
    alpha = alpha_of(eps)
    return (math.log(2.0 / gamma) + math.log(q_max)) * c2_of(alpha)


def epsilon_one(c1: float) -> float:
    """Eq. 10: the positive root of ``x^2 / (2 + 2x/3) = c_1``.

    ``c_1 = ln(4/gamma) / (theta b^(cnt-2))`` shrinks as the event
    counter grows, so ``eps_1`` tightens over AdaAlg's iterations.
    """
    _require(c1 > 0.0, f"c1 must be positive; got {c1}")
    return (2.0 * c1 / 3.0 + math.sqrt(4.0 * c1 * c1 / 9.0 + 8.0 * c1)) / 2.0


def deviation_probability(num_samples: float, lam: float, mu: float) -> float:
    """Lemma 2's one-sided tail bound.

    ``Pr[|B_L(C) - B(C)| >= lam * B(C)]`` is at most
    ``exp(-L * lam^2 * mu / (2 + 2 lam / 3))`` per side, where
    ``mu = B(C)/n(n-1)``.
    """
    _require(num_samples >= 0, "sample count must be non-negative")
    _require(lam > 0.0, f"lambda must be positive; got {lam}")
    _require(0.0 < mu <= 1.0, f"mu must lie in (0, 1]; got {mu}")
    exponent = num_samples * lam * lam * mu / (2.0 + 2.0 * lam / 3.0)
    return math.exp(-exponent)


def max_relative_beta(eps: float, eps1: float) -> float:
    """The largest relative error ``beta`` Algorithm 1 can tolerate.

    Inverts the stopping rule
    ``eps_sum = beta (1 - 1/e)(1 - eps_1) + (2 - 1/e) eps_1 <= eps``
    (paper's Remark in Sec. IV-B).  May be negative when ``eps_1`` is
    still too large, meaning no ``beta`` can trigger a stop yet.
    """
    _require(0.0 < eps < EULER_FACTOR, f"eps must lie in (0, 1 - 1/e); got {eps}")
    _require(0.0 < eps1 < 1.0, f"eps_1 must lie in (0, 1); got {eps1}")
    return (eps - (2.0 - 1.0 / math.e) * eps1) / (EULER_FACTOR * (1.0 - eps1))
