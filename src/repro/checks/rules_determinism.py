"""Determinism rules (``RPR1xx``).

Bit-identical replay — across engines, worker counts, kernels, and
checkpoint/resume — is the repository's headline contract (see
``tests/session/test_resume_determinism.py``).  It dies from hidden
inputs: a clock read that steers control flow, an iteration over a
hash-ordered container, an order-dependent pop.  These rules reject
the syntactic forms those bugs arrive in.
"""

from __future__ import annotations

import ast

from .core import ModuleContext, Rule
from .registry import register

__all__ = ["WallClock", "SetIteration", "OrderDependentPop"]

#: The only package allowed to read clocks (the telemetry hub and the
#: :mod:`repro.obs.clock` reporting seam).
CLOCK_MODULE = "repro.obs"

#: Clock reads rejected outside :data:`CLOCK_MODULE`.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Packages whose modules are "hot": they run inside the sampling loop,
#: so unordered iteration there changes which samples are drawn.
HOT_MODULES = (
    "repro.paths",
    "repro.engine",
    "repro.coverage",
    "repro.algorithms",
    "repro.session",
)

#: Builtins whose output order follows their (set-typed) argument.
_ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_setish(node: ast.AST) -> bool:
    """Whether an expression is syntactically a set (literal,
    comprehension, or ``set()``/``frozenset()`` call)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _in_hot_module(ctx: ModuleContext) -> bool:
    return ctx.in_module(*HOT_MODULES)


@register
class WallClock(Rule):
    """Clock reads outside :mod:`repro.obs`."""

    id = "RPR101"
    name = "wall-clock"
    rationale = (
        "A clock read in sampling or algorithm code is a hidden input: "
        "anything derived from it (budgets, early exits, tie-breaks) "
        "varies run to run, breaking bit-identical replay and resume. "
        "Elapsed-time reporting goes through repro.obs.monotonic, "
        "keeping every clock read in one auditable module."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.in_module(CLOCK_MODULE):
            return
        dotted = self.ctx.resolve(node.func)
        if dotted in _CLOCK_CALLS:
            self.report(
                node,
                f"clock read ({dotted}) outside {CLOCK_MODULE}; use "
                f"{CLOCK_MODULE}.monotonic (reporting only) or a "
                "telemetry span",
            )


@register
class SetIteration(Rule):
    """Hash-ordered iteration in hot sampling modules."""

    id = "RPR102"
    name = "set-iteration"
    rationale = (
        "Iterating a set yields hash order, which varies with "
        "PYTHONHASHSEED and insertion history; in the hot sampling "
        "modules that reorders draws and greedy tie-breaks. Iterate "
        "sorted(...) or keep an explicit list."
    )

    _ADVICE = "; iterate sorted(...) or keep an ordered container"

    def visit_For(self, node: ast.For) -> None:
        if _in_hot_module(self.ctx) and _is_setish(node.iter):
            self.report(
                node, "for-loop over a set has no defined order" + self._ADVICE
            )

    def _check_generators(self, node: ast.AST) -> None:
        if not _in_hot_module(self.ctx):
            return
        for comp in getattr(node, "generators", ()):
            if _is_setish(comp.iter):
                self.report(
                    node,
                    "comprehension over a set has no defined order"
                    + self._ADVICE,
                )

    visit_ListComp = _check_generators
    visit_SetComp = _check_generators
    visit_DictComp = _check_generators
    visit_GeneratorExp = _check_generators

    def visit_Call(self, node: ast.Call) -> None:
        if not _in_hot_module(self.ctx):
            return
        if not (isinstance(node.func, ast.Name) and node.args):
            return
        if node.func.id in _ORDER_SENSITIVE_WRAPPERS and _is_setish(
            node.args[0]
        ):
            self.report(
                node,
                f"{node.func.id}(...) over a set has no defined order"
                + self._ADVICE,
            )


@register
class OrderDependentPop(Rule):
    """Pops whose result depends on container ordering."""

    id = "RPR103"
    name = "order-dependent-pop"
    rationale = (
        "dict.popitem() and set.pop() return an arbitrary-order element; "
        "any algorithmic decision built on them is irreproducible. "
        "OrderedDict.popitem(last=...) states its order explicitly and "
        "is allowed."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        if node.args or node.keywords:
            return  # popitem(last=False) / pop(key) are explicit
        if node.func.attr == "popitem":
            self.report(
                node,
                "bare popitem() pops in container order; pass last=... on "
                "an OrderedDict or pop an explicit key",
            )
        elif node.func.attr == "pop" and _is_setish(node.func.value):
            self.report(
                node,
                "set.pop() removes an arbitrary element; pop from a "
                "sorted or explicitly ordered container",
            )
