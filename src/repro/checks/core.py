"""Visitor core of the :mod:`repro.checks` static-analysis pass.

One parse per file, one AST walk per file: :func:`check_source` builds
a :class:`ModuleContext` (dotted module name, alias-resolved imports,
per-line suppressions, parent links), instantiates every registered
rule, and dispatches each AST node to the rules that declared a
``visit_<NodeType>`` handler.  Rules are tiny classes — they inspect a
node, consult the context, and call :meth:`Rule.report`.

Suppressions are real comments only (extracted with :mod:`tokenize`,
so string literals that merely *mention* the magic comment do not
suppress anything).  The comment form is ``repro: noqa`` after a
``#``, optionally followed by ``[RPR001, RPR202]`` to silence specific
rules; without a bracket list it silences every rule on that line.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from .registry import PARSE_ERROR_ID, RULES, all_rules

__all__ = [
    "Finding",
    "Report",
    "Rule",
    "ModuleContext",
    "ModuleRecord",
    "parse_record",
    "check_source",
    "check_file",
    "run_checks",
    "iter_python_files",
    "module_name_for",
    "qualified_name",
]

# Built from pieces so the checker's own source never contains a
# working suppression comment (the repo-level acceptance bar is zero
# suppressions anywhere in src/).
_NOQA_RE = re.compile(
    "repro:" + r"\s*" + "noqa" + r"(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)

#: Suppression marker meaning "every rule on this line".
_ALL = "*"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    name: str
    message: str
    path: str
    line: int
    col: int
    module: str

    def as_dict(self) -> dict:
        """JSON-friendly form (the ``--format json`` row schema)."""
        return {
            "rule": self.rule,
            "name": self.name,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "module": self.module,
        }

    def render(self) -> str:
        """The human one-liner: ``path:line:col: RPRnnn message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class Report:
    """Outcome of one :func:`run_checks` invocation."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        """Whether the checked tree is clean."""
        return not self.findings

    def as_dict(self) -> dict:
        """The stable JSON output schema (``version`` bumps on change)."""
        return {
            "version": 1,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "findings": [finding.as_dict() for finding in self.findings],
        }


class ModuleContext:
    """Everything the rules may ask about the module being checked."""

    def __init__(self, source: str, module: str, path: str):
        self.source = source
        self.module = module
        self.path = path
        #: local alias -> fully qualified dotted name, from the
        #: module's import statements (``np`` -> ``numpy``,
        #: ``perf_counter`` -> ``time.perf_counter``).
        self.imports: dict[str, str] = {}
        #: line number -> set of suppressed rule IDs (or ``"*"``).
        self.suppressions: dict[int, set[str]] = {}
        self.suppressed_hits = 0

    # ------------------------------------------------------------------
    def in_module(self, *dotted: str) -> bool:
        """Whether the module is one of ``dotted`` or inside one of them
        (``in_module("repro.obs")`` matches ``repro.obs.telemetry``)."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in dotted
        )

    def resolve(self, node: ast.AST) -> str | None:
        """Alias-resolved dotted name of an expression, if it has one."""
        return qualified_name(node, self.imports)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        suppressed = self.suppressions.get(line)
        if suppressed is None:
            return False
        return _ALL in suppressed or rule_id in suppressed

    # ------------------------------------------------------------------
    def _collect_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._absolute_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}"

    def _absolute_base(self, node: ast.ImportFrom) -> str | None:
        """The absolute module a ``from ... import`` pulls from."""
        if node.level == 0:
            return node.module
        parts = self.module.split(".")
        # ``from . import x`` inside pkg.mod drops 1 part for the module
        # itself plus (level - 1) parents; packages (__init__) keep one
        # more, but module names computed here never end in __init__.
        if node.level > len(parts):
            return node.module
        base_parts = parts[: len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else node.module

    def _collect_suppressions(self) -> None:
        reader = io.StringIO(self.source).readline
        try:
            tokens = list(tokenize.generate_tokens(reader))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            listed = match.group("rules")
            if listed is None:
                rules = {_ALL}
            else:
                rules = {part.strip() for part in listed.split(",") if part.strip()}
            self.suppressions.setdefault(token.start[0], set()).update(rules)


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`id` (stable ``RPRnnn``), :attr:`name` (short
    kebab-case slug), and :attr:`rationale` (the invariant the rule
    guards, rendered by ``--list-rules`` and the docs), then implement
    ``visit_<NodeType>`` methods for the AST nodes they care about.

    Rules with :attr:`project` set are **project rules**: instead of
    the per-node walk they get one :meth:`check_module` call per
    checked module, after *every* module has been parsed, with a
    :class:`repro.checks.callgraph.ProjectIndex` giving cross-module
    visibility (call graph, every definition).  They are still
    instantiated per module, so :meth:`report` honours that module's
    suppression comments like any other rule.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""
    #: Project rules need the whole checked module set (see above).
    project: bool = False

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.findings: list[Finding] = []

    def check_module(self, tree: ast.AST, project) -> None:
        """Project-rule hook: inspect this rule's module (``self.ctx``)
        with cross-module ``project`` context. Default: nothing."""

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding at ``node`` unless suppressed on its line."""
        self.report_as(self.id, self.name, node, message)

    def report_as(
        self, rule_id: str, name: str, node: ast.AST, message: str
    ) -> None:
        """Record a finding under ``rule_id`` (for analyses that emit
        several related IDs from one shared pass, e.g. the lifecycle
        domain emitting RPR501/502/503)."""
        line = getattr(node, "lineno", 1)
        if self.ctx.is_suppressed(rule_id, line):
            self.ctx.suppressed_hits += 1
            return
        self.findings.append(
            Finding(
                rule=rule_id,
                name=name,
                message=message,
                path=self.ctx.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                module=self.ctx.module,
            )
        )


# ----------------------------------------------------------------------
# expression helpers shared by the rule modules
# ----------------------------------------------------------------------
def qualified_name(node: ast.AST, imports: dict[str, str]) -> str | None:
    """Dotted name of an attribute/name chain, aliases resolved.

    ``np.random.rand`` with ``import numpy as np`` resolves to
    ``numpy.random.rand``; chains not rooted in a plain name (calls,
    subscripts) resolve to ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(imports.get(node.id, node.id))
    return ".".join(reversed(parts))


def trailing_identifier(node: ast.AST) -> str | None:
    """The last identifier of an expression (``self.telemetry`` ->
    ``telemetry``; ``hub`` -> ``hub``), or ``None``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def attach_parents(tree: ast.AST) -> None:
    """Give every node a ``_repro_parent`` link for upward walks."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> ast.AST | None:
    """The parent set by :func:`attach_parents` (``None`` at the root)."""
    return getattr(node, "_repro_parent", None)


def enclosing_function(node: ast.AST) -> ast.AST | None:
    """The innermost function/lambda strictly containing ``node``."""
    current = parent_of(node)
    while current is not None:
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return current
        current = parent_of(current)
    return None


# ----------------------------------------------------------------------
# the walk
# ----------------------------------------------------------------------
@dataclass
class ModuleRecord:
    """One parsed module, kept across files for the project pass."""

    ctx: ModuleContext
    tree: ast.AST


def parse_record(
    source: str, module: str, path: str
) -> ModuleRecord | Finding:
    """Parse one module into a :class:`ModuleRecord`, or the RPR000
    parse-error :class:`Finding` when it does not parse."""
    ctx = ModuleContext(source, module, path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return Finding(
            rule=PARSE_ERROR_ID,
            name="parse-error",
            message=f"file could not be parsed: {exc.msg}",
            path=path,
            line=exc.lineno or 1,
            col=exc.offset or 0,
            module=module,
        )
    ctx._collect_imports(tree)
    ctx._collect_suppressions()
    attach_parents(tree)
    return ModuleRecord(ctx=ctx, tree=tree)


def _check_records(
    records: list[ModuleRecord], rules: list[type[Rule]] | None
) -> tuple[list[Finding], int]:
    """Run the per-node pass on each record, then the project pass over
    all of them; returns ``(findings, suppressed)``."""
    active_classes = rules if rules is not None else all_rules()
    syntactic = [cls for cls in active_classes if not cls.project]
    project_classes = [cls for cls in active_classes if cls.project]

    findings: list[Finding] = []
    suppressed = 0

    for record in records:
        active = [cls(record.ctx) for cls in syntactic]
        dispatch: dict[str, list[tuple[Rule, object]]] = {}
        for rule in active:
            for attr in dir(rule):
                if attr.startswith("visit_"):
                    dispatch.setdefault(attr[len("visit_") :], []).append(
                        (rule, getattr(rule, attr))
                    )
        for node in ast.walk(record.tree):
            for _rule, handler in dispatch.get(type(node).__name__, ()):
                handler(node)
        findings.extend(f for rule in active for f in rule.findings)

    if project_classes and records:
        # deferred import: callgraph uses this module's name resolver
        from .callgraph import ProjectIndex

        index = ProjectIndex(records)
        for record in records:
            for cls in project_classes:
                rule = cls(record.ctx)
                rule.check_module(record.tree, index)
                findings.extend(rule.findings)

    suppressed = sum(record.ctx.suppressed_hits for record in records)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, suppressed


def check_source(
    source: str,
    module: str = "<string>",
    path: str = "<string>",
    rules: list[type[Rule]] | None = None,
) -> tuple[list[Finding], int]:
    """Check one module's source; returns ``(findings, suppressed)``.

    ``module`` is the dotted module name the allowlists are matched
    against; fixture tests pass e.g. ``"repro.paths.sampler"`` to
    exercise scope-sensitive rules on synthetic snippets.  Project
    rules run too, with a single-module :class:`ProjectIndex`.
    """
    record = parse_record(source, module, path)
    if isinstance(record, Finding):
        return [record], 0
    return _check_records([record], rules)


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, found by walking up through
    ``__init__.py`` package directories."""
    path = path.resolve()
    parts = [] if path.stem == "__init__" else [path.stem]
    current = path.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:  # filesystem root
            break
        current = parent
    return ".".join(reversed(parts))


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        else:
            files.add(path)
    return sorted(files)


def check_file(
    path: Path, rules: list[type[Rule]] | None = None
) -> tuple[list[Finding], int]:
    """Check one file on disk (see :func:`check_source`)."""
    source = Path(path).read_text(encoding="utf-8")
    return check_source(
        source, module=module_name_for(Path(path)), path=str(path), rules=rules
    )


def run_checks(
    paths: list[str | Path], rules: list[type[Rule]] | None = None
) -> Report:
    """Run every registered rule over ``paths`` (files or directories).

    All files are parsed first so the project rules (call-graph
    reachability, registry drift) see the whole checked tree at once;
    per-file findings are unaffected by the batching.
    """
    # importing the package registers the rules; guard against a caller
    # reaching core.run_checks directly before repro.checks loaded them
    if rules is None and not RULES:  # pragma: no cover - defensive
        from . import _load_rules

        _load_rules()
    report = Report()
    records: list[ModuleRecord] = []
    for path in iter_python_files(paths):
        source = Path(path).read_text(encoding="utf-8")
        record = parse_record(
            source, module=module_name_for(Path(path)), path=str(path)
        )
        report.files_checked += 1
        if isinstance(record, Finding):
            report.findings.append(record)
        else:
            records.append(record)
    findings, suppressed = _check_records(records, rules)
    report.findings.extend(findings)
    report.suppressed += suppressed
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
