"""RNG hygiene rules (``RPR0xx``).

The paper's ``(1 - 1/e - eps)`` guarantee holds with probability
``1 - gamma`` only if every sample is drawn from the seeded generator
lineage rooted at the run's ``seed`` argument — one draw from numpy's
*global* stream, from the stdlib ``random`` module, or from a freshly
OS-seeded generator silently changes the empirical distribution and
breaks bit-identical replay across engines, worker counts, and
checkpoint/resume.  All randomness therefore flows through
:mod:`repro._rng` (``as_generator`` / ``spawn`` / ``spawn_seeds``),
and these rules reject every other entry point for entropy.
"""

from __future__ import annotations

import ast

from .core import ModuleContext, Rule
from .registry import register

__all__ = ["NumpyGlobalRandom", "AmbientEntropy", "AdHocGenerator"]

#: The module the rules exempt — the one sanctioned RNG seam.
RNG_MODULE = "repro._rng"

#: Legacy module-level numpy.random functions (the hidden global
#: RandomState) plus the RandomState constructor itself.
_LEGACY_NUMPY = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "seed",
        "get_state",
        "set_state",
        "bytes",
        "uniform",
        "normal",
        "standard_normal",
        "binomial",
        "poisson",
        "exponential",
        "geometric",
        "beta",
        "gamma",
        "multinomial",
        "RandomState",
    }
)

#: Generator/bit-generator constructors only :mod:`repro._rng` may call.
_GENERATOR_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.MT19937",
        "numpy.random.Philox",
        "numpy.random.SFC64",
    }
)

#: Stdlib ambient-entropy calls rejected outside :data:`RNG_MODULE`.
_AMBIENT_CALLS = frozenset({"os.urandom", "os.getrandom", "uuid.uuid4"})


def _exempt(ctx: ModuleContext) -> bool:
    return ctx.in_module(RNG_MODULE)


@register
class NumpyGlobalRandom(Rule):
    """Calls into numpy's hidden global random state."""

    id = "RPR001"
    name = "numpy-global-random"
    rationale = (
        "Module-level numpy.random.* functions draw from a hidden global "
        "RandomState, so their output depends on everything else that "
        "touched it — seeded runs stop being reproducible and the "
        "sampler's eps guarantee silently degrades."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if _exempt(self.ctx):
            return
        dotted = self.ctx.resolve(node.func)
        if dotted is None or not dotted.startswith("numpy.random."):
            return
        leaf = dotted.rsplit(".", 1)[1]
        if leaf in _LEGACY_NUMPY:
            self.report(
                node,
                f"call to the global numpy random state ({dotted}); draw "
                f"from a Generator threaded via {RNG_MODULE}.as_generator "
                "instead",
            )


@register
class AmbientEntropy(Rule):
    """Stdlib randomness / OS entropy outside the RNG seam."""

    id = "RPR002"
    name = "ambient-entropy"
    rationale = (
        "The stdlib random module, os.urandom, and uuid4 are ambient "
        "entropy sources outside the seeded Generator lineage — any use "
        "in library code makes runs non-replayable."
    )

    def visit_Import(self, node: ast.Import) -> None:
        if _exempt(self.ctx):
            return
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in ("random", "secrets"):
                self.report(
                    node,
                    f"import of stdlib {root!r}; all randomness must come "
                    f"from {RNG_MODULE}",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if _exempt(self.ctx) or node.level:
            return
        root = (node.module or "").split(".")[0]
        if root in ("random", "secrets"):
            self.report(
                node,
                f"import from stdlib {root!r}; all randomness must come "
                f"from {RNG_MODULE}",
            )

    def visit_Call(self, node: ast.Call) -> None:
        if _exempt(self.ctx):
            return
        dotted = self.ctx.resolve(node.func)
        if dotted in _AMBIENT_CALLS or (
            dotted is not None and dotted.startswith("secrets.")
        ):
            self.report(
                node,
                f"ambient entropy source {dotted}; all randomness must "
                f"come from {RNG_MODULE}",
            )


@register
class AdHocGenerator(Rule):
    """Generator construction bypassing the threaded-seed scheme."""

    id = "RPR003"
    name = "ad-hoc-generator"
    rationale = (
        "Constructing Generators outside repro._rng bypasses the child-"
        "stream derivation (spawn/spawn_seeds) that keeps lanes, worker "
        "chunks, and resumed sessions on independent, reproducible "
        "streams; a seedless default_rng() is fresh OS entropy."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if _exempt(self.ctx):
            return
        dotted = self.ctx.resolve(node.func)
        if dotted in _GENERATOR_CONSTRUCTORS:
            self.report(
                node,
                f"ad-hoc generator construction ({dotted}); accept a seed "
                f"and normalize it with {RNG_MODULE}.as_generator, or "
                f"derive children with {RNG_MODULE}.spawn",
            )
