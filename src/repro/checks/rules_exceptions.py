"""Exception policy rule (``RPR4xx``).

Public :mod:`repro` entry points promise a single catchable hierarchy:
everything the library raises derives from
:class:`repro.exceptions.ReproError` (``ParameterError`` for bad
arguments, ``GraphError`` for malformed graphs, ...).  A bare
``ValueError`` from one validation path breaks ``except ReproError``
callers and the CLI's error rendering; this rule keeps the hierarchy
airtight.
"""

from __future__ import annotations

import ast

from .core import Rule
from .registry import register

__all__ = ["BareBuiltinRaise"]

#: Builtin exception types library code may not raise directly.
_FORBIDDEN = frozenset({"ValueError", "RuntimeError"})


@register
class BareBuiltinRaise(Rule):
    """``raise ValueError/RuntimeError`` instead of repro.exceptions."""

    id = "RPR401"
    name = "bare-builtin-raise"
    rationale = (
        "Callers catch ReproError to handle every library failure; a "
        "bare ValueError/RuntimeError escapes that net. Validation "
        "raises ParameterError/GraphError, algorithm failures raise "
        "AlgorithmError/EngineError (ParameterError subclasses "
        "ValueError, so duck-typed callers keep working)."
    )

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if exc is None:  # bare re-raise
            return
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in _FORBIDDEN:
            self.report(
                node,
                f"raise of builtin {exc.id}; use a repro.exceptions type "
                "(ParameterError, GraphError, AlgorithmError, ...)",
            )
