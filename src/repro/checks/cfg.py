"""Control-flow graphs for the dataflow tier of :mod:`repro.checks`.

:func:`build_cfg` lowers one function body (``def`` or ``async def``)
into basic blocks connected by typed edges.  The graph is deliberately
fine-grained — **one operation per block** — because the properties the
dataflow rules prove (resource typestate, taint) change at statement
granularity and the exception edges the resource rules live on
originate *between* statements.  Functions are small; precision is
worth more than block count here.

Shape of the graph:

* :attr:`CFG.entry` — synthetic, no operations, one successor.
* :attr:`CFG.exit` — every ``return`` and natural fall-off ends here.
* :attr:`CFG.raise_exit` — where an exception *escaping the function*
  lands.  A statement that can raise inside a ``try`` gets an
  ``"except"`` edge to the innermost handler dispatch (or ``finally``)
  instead; outside any ``try`` the edge goes straight here.  This is
  the program point the resource-lifecycle rules inspect: state live
  on entry to ``raise_exit`` is state a caller can never release.

Operations (:class:`Op`) wrap the underlying AST node with a ``kind``
so transfer functions know how much of a compound statement actually
executes in the block:

=============  =====================================================
``stmt``       a simple statement, executed whole
``test``       the condition expression of an ``if``/``while``
``for-iter``   iterator evaluation + target binding of a ``for``
``with-enter`` context-expression evaluation + ``as`` bindings
``with-exit``  the implicit ``__exit__`` at the end of a ``with``
``case``       one ``match`` case's pattern (bindings, opaque)
=============  =====================================================

Edge kinds: ``"next"`` (straight-line), ``"true"``/``"false"``
(branches), ``"loop"`` (back-edge to a loop header), ``"except"``
(potential exception transfer), ``"return"``, ``"break"``,
``"continue"``.  ``try/finally`` is modelled with a single finally
region whose terminal block fans out to every continuation actually
used (fall-through, return, break, continue, re-raise) — a sound
merge, path-insensitive by design.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "Op",
    "Block",
    "CFG",
    "build_cfg",
    "can_raise",
    "op_can_raise",
    "EDGE_KINDS",
]

#: Every edge kind the builder emits (pinned by the CFG tests).
EDGE_KINDS = frozenset(
    {"next", "true", "false", "loop", "except", "return", "break", "continue"}
)

#: Method names assumed never to raise for exception-edge purposes.
#: ``list.append`` is the acquire-then-publish idiom
#: (``self._blocks.append(SharedMemory(...))`` / ``procs.append(proc)``)
#: and treating it as raising would make every correct publication look
#: like a leak window.
_NON_RAISING_METHODS = frozenset({"append"})


@dataclass(frozen=True)
class Op:
    """One operation a block executes (see module docstring)."""

    kind: str
    node: ast.AST


class Block:
    """One basic block: at most one operation, typed out-edges."""

    __slots__ = ("index", "label", "ops", "succ", "pred")

    def __init__(self, index: int, label: str):
        self.index = index
        self.label = label
        self.ops: list[Op] = []
        #: ``(successor, kind)`` pairs, in emission order.
        self.succ: list[tuple["Block", str]] = []
        #: ``(predecessor, kind)`` pairs, filled by :meth:`CFG.seal`.
        self.pred: list[tuple["Block", str]] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block {self.index} {self.label}>"


def can_raise(node: ast.AST) -> bool:
    """Whether executing ``node`` may transfer control exceptionally.

    Approximation tuned for the rules this tier runs: calls (minus the
    :data:`_NON_RAISING_METHODS` allowance), ``await``/``yield``
    (generators can have exceptions thrown into them at every
    suspension point — a real leak vector), ``raise`` and ``assert``.
    Attribute and subscript evaluation are deliberately *not* counted;
    they would drown the resource rules in never-happens edges.
    """
    if isinstance(node, (ast.Raise, ast.Assert)):
        return True
    for child in ast.walk(node):
        if isinstance(child, (ast.Await, ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(child, ast.Call):
            func = child.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _NON_RAISING_METHODS
            ):
                continue
            return True
    return False


def op_can_raise(op: Op) -> bool:
    """:func:`can_raise` scoped to what the op actually *evaluates*.

    Header ops of compound statements carry the whole statement node
    for location reporting, but only execute a slice of it: a ``test``
    op runs the condition, ``for-iter`` the iterator, ``with-enter``
    the context expressions.  Scoping the raise check to that slice
    keeps body-only calls from adding a spurious exception edge on the
    header (the body statements carry their own edges).
    """
    node = op.node
    if op.kind == "test":
        expr = getattr(node, "test", None)
        if expr is None:  # a match statement: evaluates the subject
            expr = getattr(node, "subject", None)
        return expr is not None and can_raise(expr)
    if op.kind == "for-iter":
        if isinstance(node, ast.AsyncFor):
            return True  # __anext__ is awaited
        return can_raise(node.iter)
    if op.kind == "with-enter":
        if isinstance(node, ast.AsyncWith):
            return True  # __aenter__ is awaited
        return any(can_raise(item.context_expr) for item in node.items)
    if op.kind == "case":
        return False  # pattern/handler binding is opaque, non-raising
    return can_raise(node)


@dataclass
class _Scope:
    """Builder context threaded through one statement region."""

    #: Innermost block an exception lands on (handler dispatch, finally
    #: entry, or the function's ``raise_exit``).
    exc_target: Block
    break_target: Block | None = None
    continue_target: Block | None = None
    #: Innermost enclosing finally region, as ``(entry, terminal)``;
    #: early exits (return/break/continue) must route through it.
    finally_region: tuple[Block, Block] | None = None
    #: The scope surrounding the finally region (for chaining).
    finally_outer: "_Scope | None" = None


@dataclass
class CFG:
    """The control-flow graph of one function."""

    func: ast.FunctionDef | ast.AsyncFunctionDef
    blocks: list[Block] = field(default_factory=list)
    entry: Block = None  # type: ignore[assignment]
    exit: Block = None  # type: ignore[assignment]
    raise_exit: Block = None  # type: ignore[assignment]

    def new_block(self, label: str) -> Block:
        block = Block(len(self.blocks), label)
        self.blocks.append(block)
        return block

    def edge(self, src: Block, dst: Block, kind: str) -> None:
        assert kind in EDGE_KINDS, kind
        if (dst, kind) not in src.succ:
            src.succ.append((dst, kind))

    def edges(self) -> list[tuple[Block, Block, str]]:
        """Every ``(src, dst, kind)`` edge, in block order."""
        return [
            (src, dst, kind) for src in self.blocks for dst, kind in src.succ
        ]

    def seal(self) -> None:
        """Fill predecessor lists (called once by :func:`build_cfg`)."""
        for block in self.blocks:
            block.pred = []
        for src in self.blocks:
            for dst, kind in src.succ:
                dst.pred.append((src, kind))


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.cfg = CFG(func)
        self.cfg.entry = self.cfg.new_block("entry")
        self.cfg.exit = self.cfg.new_block("exit")
        self.cfg.raise_exit = self.cfg.new_block("raise")

    # ------------------------------------------------------------------
    def build(self) -> CFG:
        scope = _Scope(exc_target=self.cfg.raise_exit)
        cursor = self._statements(self.cfg.func.body, self.cfg.entry, scope)
        if cursor is not None:
            self.cfg.edge(cursor, self.cfg.exit, "next")
        self.cfg.seal()
        return self.cfg

    # ------------------------------------------------------------------
    def _op_block(
        self, op: Op, cursor: Block, scope: _Scope, label: str
    ) -> Block:
        """Append one operation as its own block after ``cursor``."""
        block = self.cfg.new_block(label)
        block.ops.append(op)
        self.cfg.edge(cursor, block, "next")
        if op_can_raise(op):
            self.cfg.edge(block, scope.exc_target, "except")
        return block

    def _statements(
        self, body: list[ast.stmt], cursor: Block | None, scope: _Scope
    ) -> Block | None:
        """Lower a statement list; returns the fall-through block, or
        ``None`` when control cannot fall off the end."""
        for stmt in body:
            if cursor is None:
                # unreachable code still gets blocks (so every op has a
                # home for tests/tools) but no in-edges — the solver
                # simply never visits them
                cursor = self.cfg.new_block("unreachable")
            cursor = self._statement(stmt, cursor, scope)
        return cursor

    # ------------------------------------------------------------------
    def _statement(
        self, stmt: ast.stmt, cursor: Block, scope: _Scope
    ) -> Block | None:
        if isinstance(stmt, (ast.If,)):
            return self._if(stmt, cursor, scope)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, cursor, scope)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, cursor, scope)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, cursor, scope)
        if isinstance(stmt, ast.Try) or type(stmt).__name__ == "TryStar":
            return self._try(stmt, cursor, scope)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, cursor, scope)
        if isinstance(stmt, ast.Return):
            block = self._op_block(Op("stmt", stmt), cursor, scope, "return")
            self._early_exit(block, scope, self.cfg.exit, "return")
            return None
        if isinstance(stmt, ast.Raise):
            block = self.cfg.new_block("raise-stmt")
            block.ops.append(Op("stmt", stmt))
            self.cfg.edge(cursor, block, "next")
            self.cfg.edge(block, scope.exc_target, "except")
            return None
        if isinstance(stmt, ast.Break):
            block = self._op_block(Op("stmt", stmt), cursor, scope, "break")
            if scope.break_target is not None:
                self._early_exit(block, scope, scope.break_target, "break")
            return None
        if isinstance(stmt, ast.Continue):
            block = self._op_block(Op("stmt", stmt), cursor, scope, "continue")
            if scope.continue_target is not None:
                self._early_exit(
                    block, scope, scope.continue_target, "continue"
                )
            return None
        # simple statement (incl. nested def/class, which bind a name
        # and whose bodies are separate analysis units)
        return self._op_block(Op("stmt", stmt), cursor, scope, "stmt")

    def _early_exit(
        self, block: Block, scope: _Scope, target: Block, kind: str
    ) -> None:
        """Route return/break/continue through any enclosing finally."""
        if scope.finally_region is not None:
            entry, terminal = scope.finally_region
            self.cfg.edge(block, entry, kind)
            # the finally terminal continues the interrupted transfer;
            # chain through outer finally regions if any
            outer = scope.finally_outer
            if outer is not None and outer.finally_region is not None:
                self._early_exit(terminal, outer, target, kind)
            else:
                self.cfg.edge(terminal, target, kind)
        else:
            self.cfg.edge(block, target, kind)

    # ------------------------------------------------------------------
    def _if(self, stmt: ast.If, cursor: Block, scope: _Scope) -> Block | None:
        test = self._op_block(Op("test", stmt), cursor, scope, "if-test")
        after = self.cfg.new_block("if-after")
        then_entry = self.cfg.new_block("if-then")
        self.cfg.edge(test, then_entry, "true")
        then_end = self._statements(stmt.body, then_entry, scope)
        if then_end is not None:
            self.cfg.edge(then_end, after, "next")
        if stmt.orelse:
            else_entry = self.cfg.new_block("if-else")
            self.cfg.edge(test, else_entry, "false")
            else_end = self._statements(stmt.orelse, else_entry, scope)
            if else_end is not None:
                self.cfg.edge(else_end, after, "next")
        else:
            self.cfg.edge(test, after, "false")
        return after if after.pred or self._has_in_edges(after) else after

    def _has_in_edges(self, block: Block) -> bool:
        return any(
            block is dst for src in self.cfg.blocks for dst, _ in src.succ
        )

    def _while(
        self, stmt: ast.While, cursor: Block, scope: _Scope
    ) -> Block | None:
        header = self._op_block(Op("test", stmt), cursor, scope, "while-test")
        after = self.cfg.new_block("while-after")
        body_entry = self.cfg.new_block("while-body")
        self.cfg.edge(header, body_entry, "true")
        self.cfg.edge(header, after, "false")
        inner = _Scope(
            exc_target=scope.exc_target,
            break_target=after,
            continue_target=header,
            finally_region=None,
            finally_outer=scope,
        )
        # break/continue inside the loop must NOT route through a
        # finally that encloses the whole loop — only finallys inside
        # the loop body matter, and those are pushed by _try below
        body_end = self._statements(stmt.body, body_entry, inner)
        if body_end is not None:
            self.cfg.edge(body_end, header, "loop")
        if stmt.orelse:
            else_end = self._statements(stmt.orelse, after, scope)
            return else_end
        return after

    def _for(
        self, stmt: ast.For | ast.AsyncFor, cursor: Block, scope: _Scope
    ) -> Block | None:
        header = self._op_block(
            Op("for-iter", stmt), cursor, scope, "for-iter"
        )
        after = self.cfg.new_block("for-after")
        body_entry = self.cfg.new_block("for-body")
        self.cfg.edge(header, body_entry, "true")
        self.cfg.edge(header, after, "false")
        inner = _Scope(
            exc_target=scope.exc_target,
            break_target=after,
            continue_target=header,
            finally_region=None,
            finally_outer=scope,
        )
        body_end = self._statements(stmt.body, body_entry, inner)
        if body_end is not None:
            self.cfg.edge(body_end, header, "loop")
        if stmt.orelse:
            return self._statements(stmt.orelse, after, scope)
        return after

    def _with(
        self, stmt: ast.With | ast.AsyncWith, cursor: Block, scope: _Scope
    ) -> Block | None:
        enter = self._op_block(
            Op("with-enter", stmt), cursor, scope, "with-enter"
        )
        body_end = self._statements(stmt.body, enter, scope)
        exit_block = self.cfg.new_block("with-exit")
        exit_block.ops.append(Op("with-exit", stmt))
        if can_raise(stmt):  # __exit__ itself may raise
            self.cfg.edge(exit_block, scope.exc_target, "except")
        if body_end is not None:
            self.cfg.edge(body_end, exit_block, "next")
            return exit_block
        # body never falls through (returns/raises only); the __exit__
        # runs on those paths too, but they were already routed — keep
        # the exit block for completeness without a fall-through
        return None

    def _try(self, stmt: ast.Try, cursor: Block, scope: _Scope) -> Block | None:
        after = self.cfg.new_block("try-after")

        finally_region = None
        finally_scope = scope
        if stmt.finalbody:
            fin_entry = self.cfg.new_block("finally")
            fin_end = self._statements(stmt.finalbody, fin_entry, scope)
            terminal = fin_end if fin_end is not None else fin_entry
            finally_region = (fin_entry, terminal)
            if fin_end is not None:
                # exceptional continuation: whatever was in flight when
                # the finally began resumes after it completes
                self.cfg.edge(terminal, scope.exc_target, "except")
            finally_scope = _Scope(
                exc_target=scope.exc_target,
                break_target=scope.break_target,
                continue_target=scope.continue_target,
                finally_region=finally_region,
                finally_outer=scope,
            )

        exc_landing = (
            finally_region[0] if finally_region is not None else scope.exc_target
        )

        if stmt.handlers:
            dispatch = self.cfg.new_block("except-dispatch")
            handled_all = False
            for handler in stmt.handlers:
                h_entry = self.cfg.new_block("except-body")
                # "case": binds the exception name, executes nothing of
                # the body (those statements get their own blocks)
                h_entry.ops.append(Op("case", handler))
                self.cfg.edge(dispatch, h_entry, "true")
                h_scope = _Scope(
                    exc_target=exc_landing,
                    break_target=finally_scope.break_target,
                    continue_target=finally_scope.continue_target,
                    finally_region=finally_region,
                    finally_outer=scope,
                )
                h_end = self._statements(handler.body, h_entry, h_scope)
                if h_end is not None:
                    if finally_region is not None:
                        self.cfg.edge(h_end, finally_region[0], "next")
                    else:
                        self.cfg.edge(h_end, after, "next")
                if handler.type is None or _catches_everything(handler.type):
                    handled_all = True
            if not handled_all:
                self.cfg.edge(dispatch, exc_landing, "false")
            body_exc_target = dispatch
        else:
            body_exc_target = exc_landing

        body_scope = _Scope(
            exc_target=body_exc_target,
            break_target=finally_scope.break_target,
            continue_target=finally_scope.continue_target,
            finally_region=finally_region,
            finally_outer=scope,
        )
        body_end = self._statements(stmt.body, cursor, body_scope)

        if stmt.orelse:
            # else runs only on clean body completion and its
            # exceptions are NOT caught by this try's handlers
            else_scope = _Scope(
                exc_target=exc_landing,
                break_target=finally_scope.break_target,
                continue_target=finally_scope.continue_target,
                finally_region=finally_region,
                finally_outer=scope,
            )
            body_end = (
                self._statements(stmt.orelse, body_end, else_scope)
                if body_end is not None
                else None
            )

        if body_end is not None:
            if finally_region is not None:
                self.cfg.edge(body_end, finally_region[0], "next")
            else:
                self.cfg.edge(body_end, after, "next")
        if finally_region is not None:
            self.cfg.edge(finally_region[1], after, "next")
        return after

    def _match(
        self, stmt: ast.Match, cursor: Block, scope: _Scope
    ) -> Block | None:
        header = self._op_block(Op("test", stmt), cursor, scope, "match")
        after = self.cfg.new_block("match-after")
        exhaustive = False
        for case in stmt.cases:
            c_entry = self.cfg.new_block("match-case")
            c_entry.ops.append(Op("case", case))
            self.cfg.edge(header, c_entry, "true")
            c_end = self._statements(case.body, c_entry, scope)
            if c_end is not None:
                self.cfg.edge(c_end, after, "next")
            if (
                isinstance(case.pattern, ast.MatchAs)
                and case.pattern.pattern is None
                and case.guard is None
            ):
                exhaustive = True
        if not exhaustive:
            self.cfg.edge(header, after, "false")
        return after


def _catches_everything(annotation: ast.expr) -> bool:
    """Whether an ``except <annotation>`` clause can catch any raise."""
    names = set()
    if isinstance(annotation, ast.Tuple):
        elements = annotation.elts
    else:
        elements = [annotation]
    for element in elements:
        if isinstance(element, ast.Name):
            names.add(element.id)
        elif isinstance(element, ast.Attribute):
            names.add(element.attr)
    return bool(names & {"BaseException", "Exception"})


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Lower one function's body into a :class:`CFG`."""
    return _Builder(func).build()
