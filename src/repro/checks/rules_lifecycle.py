"""RPR5xx — resource-lifecycle typestate over the CFG.

The abstract domain maps local variable names to :class:`Res` states:
*acquired* (with an obligation set like ``{close, unlink}``),
*escaped* (ownership may have transferred — silent from then on), or
untracked.  The solver pushes this through every path; at the two
synthetic exits the rules inspect each incoming edge separately:

* **RPR501** — a *normal* path (a ``return`` or fall-off) reaches the
  function exit with obligations outstanding.
* **RPR502** — an *exception* edge escapes the function with a live
  resource: precisely the bug class ``EpochEngine._reap_on_error``
  exists to prevent (a raise between acquiring workers/segments and
  publishing them leaks OS resources no caller can reach).
* **RPR503** — ``unlink()`` called on a ``SharedMemory`` opened with
  ``create=False``: attachers must ``close()`` only; unlinking an
  attached segment destroys it under the owner (the owner/attacher
  obligation split from ``repro.engine.shm``).

Soundness choices, tuned against this tree (documented here because
they *are* the analysis):

* Ownership transfer is silent: passing a tracked name as a call
  argument, returning/yielding it, storing it into an attribute,
  subscript, or container, or aliasing it marks it *escaped* — the
  callee/holder may now own it, and both directions of guessing
  produce noise.  Escape also sticks on exception edges (the callee
  may have taken ownership before raising).
* A truthiness/None guard on a tracked name (``if shm:``, ``if fd is
  not None:``) marks it escaped: the common guarded-cleanup idiom is
  beyond a path-insensitive domain, and flagging it would train people
  to suppress.
* ``mp.Process`` obligations begin at ``.start()``, not construction —
  an unstarted Process holds no OS resources and ``join()`` on one
  raises.
* Releases survive their own exception edge (a failed ``close()`` is
  not a leak) and acquisitions do not (a constructor that raised
  acquired nothing).  Once an op released *part* of a resource, the
  whole resource is considered handled on that op's exceptional edge:
  the function is mid-cleanup there (``shm.close(); shm.unlink()``),
  not in the acquire-to-publish window this rule hunts, and the only
  "fix" would be a nested try/finally per obligation.
* ``with``-managed acquisitions are never tracked: ``__exit__`` is the
  release.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from types import SimpleNamespace

from .cfg import build_cfg
from .core import Rule, qualified_name
from .dataflow import Analysis, solve
from .registry import register

__all__ = ["ResourceLifecycleRule", "ExceptionLeakRule", "AttacherUnlinkRule"]


# ----------------------------------------------------------------------
# abstract domain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Res:
    """Typestate of one tracked local."""

    kind: str
    obligations: frozenset[str]
    line: int
    col: int
    escaped: bool = False


#: method name -> obligation it discharges
_RELEASE_ATTRS = {
    "close": "close",
    "unlink": "unlink",
    "shutdown": "shutdown",
    "join": "join",
    "terminate": "join",
    "kill": "join",
    "cleanup": "close",
}

#: human description per resource kind, for messages
_KIND_LABELS = {
    "shared-memory-owner": "owned SharedMemory segment",
    "shared-memory-attach": "attached SharedMemory segment",
    "executor": "executor",
    "process": "worker process",
    "memmap": "memory-mapped array",
    "file": "file handle",
    "tempfile": "temporary file",
    "mkstemp-fd": "mkstemp file descriptor",
    "engine": "sampling engine",
    "session": "sampling session",
    "shared-graph-blocks": "shared graph segments",
}


def _acquisition(
    call: ast.Call, imports: dict[str, str]
) -> tuple[str, frozenset[str], int] | None:
    """``(kind, obligations, tuple_index)`` if ``call`` acquires a
    tracked resource; ``tuple_index`` selects the bound element when
    the callee returns a tuple (mkstemp, ``SamplingSession.resume``)."""
    dotted = qualified_name(call.func, imports)
    tail = dotted.rsplit(".", 1)[-1] if dotted else None
    if tail is None and isinstance(call.func, ast.Attribute):
        tail = call.func.attr

    if tail == "SharedMemory":
        create = _keyword_is_true(call, "create")
        if create:
            return "shared-memory-owner", frozenset({"close", "unlink"}), -1
        return "shared-memory-attach", frozenset({"close"}), -1
    if tail in ("ProcessPoolExecutor", "ThreadPoolExecutor"):
        return "executor", frozenset({"shutdown"}), -1
    if tail == "Process":
        return "process", frozenset(), -1  # obligations attach at .start()
    if dotted == "numpy.memmap":
        return "memmap", frozenset({"close"}), -1
    if dotted in ("open", "io.open", "os.fdopen"):
        return "file", frozenset({"close"}), -1
    if dotted in ("tempfile.NamedTemporaryFile", "tempfile.TemporaryFile"):
        return "tempfile", frozenset({"close"}), -1
    if dotted == "tempfile.mkstemp":
        return "mkstemp-fd", frozenset({"close"}), 0
    if tail == "SharedGraphBlocks":
        return "shared-graph-blocks", frozenset({"close"}), -1
    if tail in ("EpochEngine", "ProcessPoolEngine", "create_engine"):
        return "engine", frozenset({"close"}), -1
    if dotted is not None and dotted.endswith(".SamplingSession.resume"):
        return "session", frozenset({"close"}), 0
    if tail == "SamplingSession":
        return "session", frozenset({"close"}), -1
    return None


def _keyword_is_true(call: ast.Call, name: str) -> bool:
    for keyword in call.keywords:
        if keyword.arg == name:
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


def _root_name(node: ast.AST) -> str | None:
    """The root ``Name`` of an attribute chain (``shm._mmap.close`` ->
    ``shm``), or ``None``."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_guard_test(test: ast.expr) -> list[str]:
    """Tracked-name truthiness/None guards (see module docstring)."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        test = test.operand
    if isinstance(test, ast.Name):
        return [test.id]
    if (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot, ast.Eq, ast.NotEq))
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return [test.left.id]
    return []


# ----------------------------------------------------------------------
# the analysis
# ----------------------------------------------------------------------
class _LifecycleAnalysis(Analysis):
    def __init__(self, imports: dict[str, str]):
        self.imports = imports
        #: (line, col, rule, message) found *during* transfer
        #: (RPR503; set-keyed because transfers re-run to fixpoint)
        self.immediate: set[tuple[int, int, str, str]] = set()

    # -- lattice -------------------------------------------------------
    def initial(self):
        return {}

    def copy(self, state):
        return dict(state)

    def join(self, left, right):
        out = dict(left)
        for var, res in right.items():
            prior = out.get(var)
            if prior is None:
                out[var] = res
            elif prior != res:
                if prior.escaped or res.escaped:
                    out[var] = replace(prior, escaped=True)
                else:
                    out[var] = replace(
                        prior, obligations=prior.obligations | res.obligations
                    )
        return out

    # -- transfer ------------------------------------------------------
    def transfer(self, op, state):
        node = op.node
        if op.kind == "test":
            if isinstance(node, ast.Match):
                self._scan_uses(node.subject, state, skip_calls=())
                return state
            test = node.test if hasattr(node, "test") else None
            for var in _is_guard_test(test) if test is not None else []:
                if var in state:
                    state[var] = replace(state[var], escaped=True)
            self._scan_uses(test, state, skip_calls=())
            return state
        if op.kind == "for-iter":
            self._scan_uses(node.iter, state, skip_calls=())
            for name in _target_names(node.target):
                state.pop(name, None)
            return state
        if op.kind == "with-enter":
            for item in node.items:
                self._scan_uses(item.context_expr, state, skip_calls=())
                for name in _target_names(item.optional_vars):
                    # with-managed: __exit__ releases it; never tracked
                    state.pop(name, None)
            return state
        if op.kind in ("with-exit", "case"):
            return state
        return self._transfer_stmt(node, state)

    def _transfer_stmt(self, stmt, state):
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    # refcount semantics are beyond this domain; a del
                    # of a memmap IS its release, for others we go
                    # silent rather than guess
                    state.pop(target.id, None)
            return state

        handled_calls = self._apply_releases(stmt, state)
        self._scan_uses(stmt, state, skip_calls=handled_calls)

        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            self._apply_binding(stmt.targets[0], stmt.value, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._apply_binding(stmt.target, stmt.value, state)
        return state

    def _apply_binding(self, target, value, state):
        call = value
        if isinstance(call, ast.Await):
            call = call.value
        if not isinstance(call, ast.Call):
            if isinstance(target, ast.Name):
                state.pop(target.id, None)  # rebound to something else
            return
        spec = _acquisition(call, self.imports)
        if spec is None:
            if isinstance(target, ast.Name):
                state.pop(target.id, None)
            return
        kind, obligations, tuple_index = spec
        bind_to = None
        if tuple_index < 0 and isinstance(target, ast.Name):
            bind_to = target.id
        elif (
            tuple_index >= 0
            and isinstance(target, (ast.Tuple, ast.List))
            and tuple_index < len(target.elts)
            and isinstance(target.elts[tuple_index], ast.Name)
        ):
            bind_to = target.elts[tuple_index].id
        if bind_to is not None:
            state[bind_to] = Res(
                kind=kind,
                obligations=obligations,
                line=call.lineno,
                col=call.col_offset,
            )

    def _apply_releases(self, stmt, state):
        """Discharge obligations for release/start calls anywhere in
        ``stmt``; returns the set of handled Call node ids (their
        receiver roots must not count as escapes)."""
        handled: set[int] = set()
        for node in _walk_skipping_defs(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                root = _root_name(func.value)
                if root is None or root not in state:
                    continue
                res = state[root]
                if func.attr == "start" and res.kind == "process":
                    state[root] = replace(
                        res, obligations=frozenset({"join"})
                    )
                    handled.add(id(node))
                elif func.attr in _RELEASE_ATTRS:
                    if (
                        func.attr == "unlink"
                        and res.kind == "shared-memory-attach"
                    ):
                        self.immediate.add(
                            (
                                node.lineno,
                                node.col_offset,
                                "RPR503",
                                f"'{root}' attaches an existing "
                                "SharedMemory segment (create=False) but "
                                "calls unlink(); attachers must only "
                                "close() — unlinking destroys the "
                                "segment under its owner",
                            )
                        )
                    remaining = res.obligations - {
                        _RELEASE_ATTRS[func.attr]
                    }
                    if remaining:
                        state[root] = replace(res, obligations=remaining)
                    else:
                        state.pop(root, None)
                    handled.add(id(node))
        # os.close(fd)-style releases through module-level calls
        for node in _walk_skipping_defs(stmt):
            if (
                isinstance(node, ast.Call)
                and qualified_name(node.func, self.imports) == "os.close"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in state
            ):
                res = state[node.args[0].id]
                remaining = res.obligations - {"close"}
                if remaining:
                    state[node.args[0].id] = replace(
                        res, obligations=remaining
                    )
                else:
                    state.pop(node.args[0].id, None)
                handled.add(id(node))
        return handled

    def _scan_uses(self, node, state, skip_calls):
        """Mark tracked names that *escape* in ``node`` (module
        docstring lists the escape routes)."""
        if node is None:
            return
        for child in ast.walk(node):
            if not isinstance(child, ast.Name) or child.id not in state:
                continue
            if not isinstance(getattr(child, "ctx", None), ast.Load):
                continue
            parent = getattr(child, "_repro_parent", None)
            # receiver of an attribute access (shm.buf, proc.start())
            # is not an ownership transfer
            if isinstance(parent, ast.Attribute):
                continue
            if isinstance(parent, ast.Call):
                if id(parent) in skip_calls:
                    continue
                if parent.func is child:
                    continue  # calling it, not passing it
            res = state[child.id]
            if not res.escaped:
                state[child.id] = replace(res, escaped=True)

    # -- exception edges ----------------------------------------------
    def transfer_exception(self, op, before, after):
        out = {}
        for var, res in before.items():
            post = after.get(var)
            if post is None:
                continue  # released during the op — release sticks
            if post.obligations < res.obligations:
                # the op released part of this resource: mid-cleanup,
                # not the acquire-to-publish window (module docstring)
                continue
            if post.escaped:
                out[var] = post  # escape sticks
            else:
                out[var] = res  # growth (e.g. .start()) did not happen
        return out


def _target_names(target) -> list[str]:
    if target is None:
        return []
    names = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.append(node.id)
    return names


def _walk_skipping_defs(stmt):
    """Like ``ast.walk`` but does not descend into nested function or
    lambda bodies: a release inside a closure runs when the closure
    runs, not where it is defined (the capture itself still escapes
    the resource via :meth:`_LifecycleAnalysis._scan_uses`)."""
    defs = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
    if isinstance(stmt, defs):
        yield stmt
        return
    stack = [stmt]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, defs):
                continue
            stack.append(child)


# ----------------------------------------------------------------------
# the rules
# ----------------------------------------------------------------------
@register
class ResourceLifecycleRule(Rule):
    """Runs the lifecycle analysis once per function and emits all
    three RPR5xx IDs through :meth:`Rule.report_as`."""

    id = "RPR501"
    name = "resource-leak"
    rationale = (
        "Every acquired OS resource (SharedMemory, executors, worker "
        "processes, memmaps, raw file handles) must be released or "
        "handed off on every normal path out of the function."
    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if isinstance(call, ast.Await):
            call = call.value
        if not isinstance(call, ast.Call):
            return
        spec = _acquisition(call, self.ctx.imports)
        if spec is None:
            return
        kind, obligations, _ = spec
        if not obligations:
            return
        self.report(
            node,
            f"{_KIND_LABELS.get(kind, kind)} acquired and immediately "
            "discarded — bind it and release it, or use a with block",
        )

    # ------------------------------------------------------------------
    def _check_function(self, func) -> None:
        cfg = build_cfg(func)
        analysis = _LifecycleAnalysis(self.ctx.imports)
        states = solve(cfg, analysis)

        for line, col, rule_id, message in sorted(analysis.immediate):
            self.report_as(
                rule_id,
                "attacher-unlink",
                SimpleNamespace(lineno=line, col_offset=col),
                message,
            )

        seen: set[tuple[str, int, str]] = set()
        for exit_block, rule_id, name in (
            (cfg.exit, "RPR501", self.name),
            (cfg.raise_exit, "RPR502", "resource-leak-on-raise"),
        ):
            for pred, kind in exit_block.pred:
                entry = states.get(pred.index)
                if entry is None:
                    continue
                _in, out, exc = entry
                flowing = exc if kind == "except" else out
                if not flowing:
                    continue
                edge_line = _block_line(pred)
                for var, res in sorted(flowing.items()):
                    if res.escaped or not res.obligations:
                        continue
                    key = (var, res.line, rule_id)
                    if key in seen:
                        continue
                    seen.add(key)
                    label = _KIND_LABELS.get(res.kind, res.kind)
                    need = "/".join(sorted(res.obligations))
                    if rule_id == "RPR502":
                        message = (
                            f"{label} '{var}' (acquired line {res.line}) "
                            f"leaks when the exception raised around "
                            f"line {edge_line} escapes "
                            f"'{func.name}' — outstanding: {need}"
                        )
                    else:
                        message = (
                            f"{label} '{var}' (acquired line {res.line}) "
                            f"reaches the exit of '{func.name}' near "
                            f"line {edge_line} without {need}"
                        )
                    self.report_as(
                        rule_id,
                        name,
                        SimpleNamespace(lineno=res.line, col_offset=res.col),
                        message,
                    )


def _block_line(block) -> int:
    for op in block.ops:
        line = getattr(op.node, "lineno", None)
        if line is not None:
            return line
    for pred, _ in block.pred:
        line = _block_line(pred)
        if line:
            return line
    return 0


@register
class ExceptionLeakRule(Rule):
    """Metadata holder for RPR502 (emitted by RPR501's analysis)."""

    id = "RPR502"
    name = "resource-leak-on-raise"
    rationale = (
        "An exception edge must not escape a function while an acquired "
        "resource is still live — the bug class EpochEngine's "
        "_reap_on_error guards against, generalized to every function."
    )


@register
class AttacherUnlinkRule(Rule):
    """Metadata holder for RPR503 (emitted by RPR501's analysis)."""

    id = "RPR503"
    name = "attacher-unlink"
    rationale = (
        "A SharedMemory segment opened with create=False is borrowed: "
        "close() detaches it, unlink() would destroy the owner's "
        "segment (the owner/attacher split in repro.engine.shm)."
    )
