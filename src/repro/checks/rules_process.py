"""Cross-process safety rules (``RPR2xx``).

The process-pool engine ships work to ``spawn``-started workers and
shares the CSR graph through named shared-memory segments
(:mod:`repro.engine.shm`).  Two conventions keep that sound: submitted
callables must be picklable module-level functions (lambdas and
closures die at submission time — or worse, only under ``spawn`` on
another platform), and the shared arrays are immutable — a worker
writing through an attached view corrupts every sibling's graph with
no exception raised anywhere.
"""

from __future__ import annotations

import ast

from .core import Rule, enclosing_function, qualified_name
from .registry import register

__all__ = ["UnpicklableTask", "SharedArrayMutation"]

#: Executor methods whose first argument travels across the process
#: boundary and therefore must pickle.
_SUBMIT_METHODS = frozenset(
    {"submit", "map", "apply", "apply_async", "imap", "imap_unordered"}
)

#: Pool constructors whose callable keywords must pickle.
_POOL_CONSTRUCTORS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "ProcessPoolExecutor",
        "multiprocessing.Pool",
    }
)

#: Names of the CSR/store arrays exported into shared memory
#: (:meth:`repro.graph.csr.CSRGraph.export_arrays` keys and their
#: weighted variants).
SHARED_ARRAY_NAMES = frozenset(
    {"indptr", "indices", "rev_indptr", "rev_indices", "weights", "rev_weights"}
)

#: Modules that own those arrays and may legitimately build/fill them.
ARRAY_OWNERS = (
    "repro.graph.csr",
    "repro.graph.weighted",
    "repro.graph.build",
    "repro.engine.shm",
)


def _nested_function_names(func: ast.AST) -> set[str]:
    """Names of functions defined strictly inside ``func``."""
    names: set[str] = set()
    for node in ast.walk(func):
        if node is func:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


@register
class UnpicklableTask(Rule):
    """Lambdas/closures handed to a process pool."""

    id = "RPR201"
    name = "unpicklable-task"
    rationale = (
        "Callables submitted to a process pool are pickled into the "
        "worker; lambdas and functions defined inside another function "
        "cannot be, so they fail at submission time — and only on "
        "spawn-start platforms, making the bug environment-dependent. "
        "Submit module-level functions."
    )

    def _flag(self, node: ast.AST, what: str) -> None:
        self.report(
            node,
            f"{what} handed to a process pool cannot pickle; use a "
            "module-level function",
        )

    def _check_callable(self, arg: ast.AST, call: ast.Call) -> None:
        if isinstance(arg, ast.Lambda):
            self._flag(call, "lambda")
            return
        if isinstance(arg, ast.Name):
            enclosing = enclosing_function(call)
            if enclosing is not None and arg.id in _nested_function_names(
                enclosing
            ):
                self._flag(call, f"nested function {arg.id!r}")

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SUBMIT_METHODS
            and node.args
        ):
            self._check_callable(node.args[0], node)
        dotted = qualified_name(node.func, self.ctx.imports)
        if dotted in _POOL_CONSTRUCTORS:
            for keyword in node.keywords:
                if keyword.value is not None and isinstance(
                    keyword.value, ast.Lambda
                ):
                    self._flag(node, f"lambda {keyword.arg or 'argument'}")


@register
class SharedArrayMutation(Rule):
    """Writes to shm-backed CSR arrays outside their owning modules."""

    id = "RPR202"
    name = "shared-array-mutation"
    rationale = (
        "The CSR arrays (indptr/indices/...) are shared zero-copy with "
        "every pool worker through repro.engine.shm; a write through any "
        "view corrupts all siblings' graph silently. Only the graph "
        "constructors and the shm copy loop may fill them — everyone "
        "else treats them as frozen (debug=True enforces it at runtime "
        "via writeable=False)."
    )

    def _is_shared_target(self, target: ast.AST) -> str | None:
        """The shared-array name a write target stores *through*.

        Matches ``x.indptr[...] = v`` and ``x.indptr += v`` — writes
        into an array reached through an attribute named like a CSR
        export.  Plain rebinding (``self.indptr = indptr``, the
        constructor-holder pattern) and bare local names that merely
        collide (a local ``weights`` probability vector) are not
        mutations of shared state and stay legal.
        """
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute) and target.attr in SHARED_ARRAY_NAMES:
            return target.attr
        return None

    def _flag(self, node: ast.AST, name: str) -> None:
        self.report(
            node,
            f"mutation of shared CSR array {name!r} outside its owning "
            f"modules ({', '.join(ARRAY_OWNERS)}); copy before writing",
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.ctx.in_module(*ARRAY_OWNERS):
            return
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                name = self._is_shared_target(target)
                if name is not None:
                    self._flag(node, name)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.ctx.in_module(*ARRAY_OWNERS):
            return
        name = self._is_shared_target(node.target)
        if name is not None:
            self._flag(node, name)

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.in_module(*ARRAY_OWNERS):
            return
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "setflags"
        ):
            return
        for keyword in node.keywords:
            if (
                keyword.arg == "write"
                and isinstance(keyword.value, ast.Constant)
                and bool(keyword.value.value)
            ):
                self.report(
                    node,
                    "setflags(write=True) re-enables writes on a shared "
                    "array view; exported CSR arrays stay read-only",
                )
