"""Generic forward worklist solver for the dataflow tier.

An analysis supplies an abstract domain (initial state, join, copy,
equality) and a transfer function over :class:`repro.checks.cfg.Op`
operations.  The solver iterates the CFG to a fixpoint, keeping
**per-edge** output states: a block's exceptional successors observe a
different state than its fall-through successors — this distinction is
the entire point of the resource-lifecycle rules (a constructor that
raises acquired nothing; a ``close()`` that raises still released).

States are opaque to the solver; analyses typically use plain dicts
mapping variable names to lattice elements.  ``join`` must be monotone
and the lattice of finite height or the iteration cap trips
(:class:`FixpointError`), which the CI timing guard relies on — the
analyzer failing loudly beats it spinning.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Tuple

from .cfg import CFG, Block, Op

__all__ = ["Analysis", "FixpointError", "solve", "BlockStates"]

#: (in_state, out_state, exc_state) per block index.
BlockStates = Dict[int, Tuple[Any, Any, Any]]


class FixpointError(RuntimeError):
    """The solver failed to converge within its iteration budget."""


class Analysis:
    """Base class for forward dataflow analyses.

    Subclasses implement :meth:`initial`, :meth:`join`, :meth:`copy`
    and :meth:`transfer`; :meth:`transfer_exception` defaults to the
    *pre*-state of the raising operation (nothing the operation would
    have done is observable on the exceptional edge), which individual
    analyses refine — e.g. the lifecycle domain keeps releases that
    happened before the raise.
    """

    def initial(self) -> Any:
        """Abstract state on entry to the function."""
        raise NotImplementedError

    def bottom(self) -> Any:
        """State for not-yet-visited predecessors (identity of join)."""
        return None

    def copy(self, state: Any) -> Any:
        raise NotImplementedError

    def join(self, left: Any, right: Any) -> Any:
        """Merge states at a control-flow join. Must be monotone."""
        raise NotImplementedError

    def equal(self, left: Any, right: Any) -> bool:
        return bool(left == right)

    def transfer(self, op: Op, state: Any) -> Any:
        """Return the post-state of executing ``op`` from ``state``."""
        raise NotImplementedError

    def transfer_exception(self, op: Op, before: Any, after: Any) -> Any:
        """State observable on ``op``'s exceptional out-edge."""
        return self.copy(before)


def _join_maybe(analysis: Analysis, left: Any, right: Any) -> Any:
    if left is None:
        return analysis.copy(right)
    if right is None:
        return analysis.copy(left)
    return analysis.join(left, right)


def solve(cfg: CFG, analysis: Analysis, max_passes: int = 1000) -> BlockStates:
    """Run ``analysis`` over ``cfg`` to a fixpoint.

    Returns ``{block.index: (in_state, out_state, exc_state)}`` for
    every reached block.  ``exc_state`` is what flows along the block's
    ``"except"`` out-edge (``None`` when it has none).  Unreachable
    blocks are absent.  ``max_passes`` bounds *full worklist drains*
    per block, not individual visits; 1000 is far beyond any finite
    lattice this package ships and exists to turn an accidental
    infinite ascent into :class:`FixpointError`.
    """
    in_states: dict[int, Any] = {cfg.entry.index: analysis.initial()}
    out_states: dict[int, Any] = {}
    exc_states: dict[int, Any] = {}
    visits: dict[int, int] = {}

    worklist: deque[Block] = deque([cfg.entry])
    queued = {cfg.entry.index}

    while worklist:
        block = worklist.popleft()
        queued.discard(block.index)
        visits[block.index] = visits.get(block.index, 0) + 1
        if visits[block.index] > max_passes:
            raise FixpointError(
                f"dataflow solver did not converge at block {block.index} "
                f"({block.label}) of {getattr(cfg.func, 'name', '<fn>')!r}"
            )

        state = analysis.copy(in_states[block.index])
        exc_state: Any = None
        for op in block.ops:
            before = state
            state = analysis.transfer(op, analysis.copy(state))
            exc_state = _join_maybe(
                analysis,
                exc_state,
                analysis.transfer_exception(op, before, state),
            )
        if not block.ops:
            # empty blocks (entry, joins, dispatch) pass state through;
            # their except edges — e.g. a finally terminal resuming an
            # in-flight exception — observe that same state
            exc_state = analysis.copy(state)

        out_states[block.index] = state
        exc_states[block.index] = exc_state

        for succ, kind in block.succ:
            flowing = exc_state if kind == "except" else state
            if flowing is None:
                continue
            merged = _join_maybe(
                analysis, in_states.get(succ.index), flowing
            )
            if succ.index in in_states and analysis.equal(
                merged, in_states[succ.index]
            ):
                continue
            in_states[succ.index] = merged
            if succ.index not in queued:
                worklist.append(succ)
                queued.add(succ.index)

    result: BlockStates = {}
    for index, in_state in in_states.items():
        result[index] = (
            in_state,
            out_states.get(index),
            exc_states.get(index),
        )
    return result
