"""RPR701 — RNG taint dataflow.

The reproducibility contract (PAPER.md, docs/determinism.md) is that
every sampled path derives from the seeded streams in
:mod:`repro._rng`.  PR 5's RPR001 catches a *direct* ``np.random``
call; this rule closes the laundering gap: a value produced by ambient
entropy — legacy ``np.random``, seedless ``default_rng()``, stdlib
``random``, ``os.urandom``/``uuid4``/``secrets``, wall clocks,
``id()``, ``hash()`` — is **tainted**, taint propagates through
assignments, arithmetic, containers, and (one interprocedural level)
through calls to module-local helpers whose summaries say they return
taint, and a finding fires when a tainted value reaches a
sample-producing sink: ``PathSampler``/``sample_batch``/
``sample_cohort``, engine ``draw``/``extend``, store ``add_path*``,
engine/session constructors, or any ``seed=``/``rng=`` keyword.

Anything returned by :mod:`repro._rng` itself is clean by definition —
it *is* the sanctioned seam — so ``as_generator(seed)`` sanitizes, and
the rule is inert inside ``repro._rng``.  :mod:`repro.obs` clock reads
are deliberately *not* sources: telemetry timing is sanctioned and
never feeds samplers.
"""

from __future__ import annotations

import ast

from .cfg import build_cfg
from .core import Rule, trailing_identifier
from .dataflow import Analysis, solve
from .registry import register

__all__ = ["RngTaintRule"]

_RNG_MODULE = "repro._rng"

#: dotted names (exact) that mint ambient entropy
_SOURCE_EXACT = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid4",
    "uuid.uuid1",
    "id",
    "hash",
}
#: dotted prefixes that mint ambient entropy
_SOURCE_PREFIXES = (
    "numpy.random.",
    "random.",
    "secrets.",
    "time.",
)
#: datetime constructors that read the wall clock
_SOURCE_DATETIME = {"now", "utcnow", "today"}

#: receiver tails for the receiver-gated sink methods
_SINK_RECEIVERS = {
    "engine",
    "_engine",
    "session",
    "_session",
    "sampler",
    "lane",
}
#: sink methods gated on a sampling-ish receiver
_SINK_GATED_ATTRS = {"draw", "extend"}
#: sink methods distinctive enough to match on any receiver
_SINK_ATTRS = {
    "sample_batch",
    "sample_cohort",
    "add_path",
    "add_paths",
    "add_paths_packed",
}
#: constructors whose arguments seed sampling
_SINK_CONSTRUCTORS = {
    "PathSampler",
    "create_engine",
    "EpochEngine",
    "ProcessPoolEngine",
    "SerialEngine",
    "SamplingSession",
}
#: keyword names that always seed randomness, on any call
_SINK_KEYWORDS = {"seed", "rng"}


class _TaintAnalysis(Analysis):
    """State: the set of tainted local names."""

    def __init__(self, ctx, summaries: dict[str, bool], collect: bool):
        self.ctx = ctx
        self.summaries = summaries
        #: whether sink checks run (off during summary computation)
        self.collect = collect
        self.returns_taint = False
        #: (line, col, message) sink hits, set-keyed across re-runs
        self.hits: set[tuple[int, int, str]] = set()

    # -- lattice -------------------------------------------------------
    def initial(self):
        return set()

    def copy(self, state):
        return set(state)

    def join(self, left, right):
        return left | right

    # -- expression taint ---------------------------------------------
    def tainted(self, expr: ast.AST | None, state: set[str]) -> bool:
        if expr is None:
            return False
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Call):
                dotted = self.ctx.resolve(node.func)
                if dotted is not None and (
                    dotted == _RNG_MODULE
                    or dotted.startswith(_RNG_MODULE + ".")
                ):
                    continue  # the sanctioned seam sanitizes
                if self._is_source(node, dotted):
                    return True
                stack.extend(ast.iter_child_nodes(node))
                continue
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in state
            ):
                return True
            stack.extend(ast.iter_child_nodes(node))
        return False

    def _is_source(self, call: ast.Call, dotted: str | None) -> bool:
        if dotted is not None:
            if dotted in _SOURCE_EXACT:
                return True
            if dotted.startswith(_SOURCE_PREFIXES):
                # seeded construction is judged by its arguments, not
                # by being under numpy.random
                if dotted == "numpy.random.default_rng":
                    return not call.args and not call.keywords
                return True
            if (
                dotted.startswith("datetime.")
                and dotted.rsplit(".", 1)[-1] in _SOURCE_DATETIME
            ):
                return True
        # one-level interprocedural: module-local helper that returns
        # taint (by name for plain calls and self-dispatch)
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ) and func.value.id in ("self", "cls"):
            name = func.attr
        return bool(name is not None and self.summaries.get(name))

    # -- transfer ------------------------------------------------------
    def transfer(self, op, state):
        node = op.node
        if self.collect:
            for expr in _op_expressions(op):
                self._check_sinks(expr, state)
        if op.kind == "test":
            return state
        if op.kind == "for-iter":
            taint = self.tainted(node.iter, state)
            for name in _target_names(node.target):
                if taint:
                    state.add(name)
                else:
                    state.discard(name)
            return state
        if op.kind == "with-enter":
            for item in node.items:
                taint = self.tainted(item.context_expr, state)
                for name in _target_names(item.optional_vars):
                    if taint:
                        state.add(name)
                    else:
                        state.discard(name)
            return state
        if op.kind in ("with-exit", "case"):
            return state
        return self._transfer_stmt(node, state)

    def _transfer_stmt(self, stmt, state):
        if isinstance(stmt, ast.Assign):
            taint = self.tainted(stmt.value, state)
            for target in stmt.targets:
                for name in _target_names(target):
                    if taint:
                        state.add(name)
                    else:
                        state.discard(name)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            taint = self.tainted(stmt.value, state)
            for name in _target_names(stmt.target):
                if taint:
                    state.add(name)
                else:
                    state.discard(name)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name) and self.tainted(
                stmt.value, state
            ):
                state.add(stmt.target.id)
        elif isinstance(stmt, ast.Return):
            if self.tainted(stmt.value, state):
                self.returns_taint = True
        elif isinstance(stmt, ast.Delete):
            for name in _target_names(stmt):
                state.discard(name)
        return state

    # -- sinks ---------------------------------------------------------
    def _check_sinks(self, node: ast.AST | None, state: set[str]) -> None:
        if node is None:
            return
        stack = [node]
        while stack:
            current = stack.pop()
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue  # nested bodies run their own analysis
            stack.extend(ast.iter_child_nodes(current))
            call = current
            if not isinstance(call, ast.Call):
                continue
            sink = self._sink_label(call)
            if sink is None:
                continue
            for arg, label in _call_arguments(call, sink):
                if self.tainted(arg, state):
                    self.hits.add(
                        (
                            call.lineno,
                            call.col_offset,
                            f"value tainted by ambient entropy (not "
                            f"derived from {_RNG_MODULE}) flows into "
                            f"sampling sink {label}",
                        )
                    )
                    break

    def _sink_label(self, call: ast.Call) -> str | None:
        func = call.func
        dotted = self.ctx.resolve(func)
        tail = dotted.rsplit(".", 1)[-1] if dotted else None
        if tail in _SINK_CONSTRUCTORS:
            return f"{tail}()"
        if isinstance(func, ast.Attribute):
            if func.attr in _SINK_ATTRS:
                return f".{func.attr}()"
            if func.attr in _SINK_GATED_ATTRS:
                receiver = trailing_identifier(func.value)
                if receiver is not None and receiver.lower() in _SINK_RECEIVERS:
                    return f"{receiver}.{func.attr}()"
        if any(kw.arg in _SINK_KEYWORDS for kw in call.keywords):
            return "a seed/rng argument"
        return None


def _call_arguments(call: ast.Call, sink: str):
    """Arguments to judge for the matched sink — every positional and
    keyword for sampling sinks, just the seed/rng keywords when only
    the keyword heuristic matched."""
    if sink == "a seed/rng argument":
        for keyword in call.keywords:
            if keyword.arg in _SINK_KEYWORDS:
                yield keyword.value, sink
        return
    for arg in call.args:
        yield arg, sink
    for keyword in call.keywords:
        yield keyword.value, sink


def _op_expressions(op):
    """The expressions an op actually evaluates (sink-check scope) —
    a compound header evaluates only its own piece, not its body."""
    node = op.node
    if op.kind == "test":
        if isinstance(node, ast.Match):
            yield node.subject
        else:
            yield getattr(node, "test", None)
    elif op.kind == "for-iter":
        yield node.iter
    elif op.kind == "with-enter":
        for item in node.items:
            yield item.context_expr
    elif op.kind == "stmt":
        yield node


def _target_names(target) -> list[str]:
    if target is None:
        return []
    return [
        n.id for n in ast.walk(target) if isinstance(n, ast.Name)
    ]


@register
class RngTaintRule(Rule):
    id = "RPR701"
    name = "rng-taint-flow"
    rationale = (
        "Sampled paths must derive exclusively from repro._rng streams; "
        "ambient entropy laundered through a helper or a variable "
        "breaks exchangeability and the adaptive stopping guarantee."
    )

    def __init__(self, ctx):
        super().__init__(ctx)
        self._summaries: dict[str, bool] = {}

    def _exempt(self) -> bool:
        return self.ctx.in_module(_RNG_MODULE)

    def visit_Module(self, node: ast.Module) -> None:
        if self._exempt():
            return
        # one-level summaries: which module-local helpers return taint
        for func in _module_functions(node):
            analysis = _TaintAnalysis(self.ctx, {}, collect=False)
            solve(build_cfg(func), analysis)
            if analysis.returns_taint:
                self._summaries[func.name] = True

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)

    def _check_function(self, func) -> None:
        if self._exempt():
            return
        analysis = _TaintAnalysis(self.ctx, self._summaries, collect=True)
        solve(build_cfg(func), analysis)
        for line, col, message in sorted(analysis.hits):
            self.report(
                _At(line, col),
                message,
            )


class _At:
    def __init__(self, lineno: int, col_offset: int):
        self.lineno = lineno
        self.col_offset = col_offset


def _module_functions(module: ast.Module):
    for node in module.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item
