"""RPR302 — telemetry registry drift (the inverse of RPR301).

RPR301 pins every *emitted* counter/event name to the registry; this
project rule pins the registry back to the code: a name declared in
``COUNTERS``/``EVENTS`` that no checked module ever emits is drift —
usually a renamed emission whose registry entry was left behind, which
silently voids the cross-engine counter-equality contract for that
name (both sides report 0 of a counter that no longer exists).

The rule reads the registry *module's own AST* (so fixtures can ship a
synthetic registry) and scans every checked module for the same
literal-first-argument ``.count(...)``/``.event(...)`` emissions RPR301
recognizes.  It only fires on whole-package runs — the package root
``__init__`` must be among the checked modules — because on a file
subset (``--changed-only``, single-file invocations) "nobody emits
this name" is an artifact of the subset, not drift.
"""

from __future__ import annotations

import ast

from .core import Rule, trailing_identifier
from .registry import register
from .rules_telemetry import HUB_RECEIVERS

__all__ = ["RegistryDriftRule"]


def _registry_literals(tree: ast.AST, target: str) -> dict[str, int]:
    """``name -> line`` for the string constants in the registry's
    ``<target> = frozenset({...})`` (or set/tuple/list literal)."""
    names: dict[str, int] = {}
    for node in getattr(tree, "body", []):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == target for t in node.targets
        ):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("frozenset", "set", "tuple")
            and value.args
        ):
            value = value.args[0]
        for constant in ast.walk(value):
            if isinstance(constant, ast.Constant) and isinstance(
                constant.value, str
            ):
                names.setdefault(constant.value, constant.lineno)
    return names


def _emitted_names(tree: ast.AST) -> tuple[set[str], set[str]]:
    """Literal counter/event names one module emits (RPR301's shape)."""
    counters: set[str] = set()
    events: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        method = node.func.attr
        if method not in ("count", "event"):
            continue
        if trailing_identifier(node.func.value) not in HUB_RECEIVERS:
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            (counters if method == "count" else events).add(first.value)
    return counters, events


@register
class RegistryDriftRule(Rule):
    id = "RPR302"
    name = "registry-drift"
    rationale = (
        "A registered counter/event name nothing emits is a stale "
        "registry entry — usually a renamed emission — and it voids "
        "the cross-engine counter-equality contract for that name."
    )
    project = True

    def check_module(self, tree: ast.AST, project) -> None:
        # this rule speaks only from the registry module itself
        if not self.ctx.module.endswith(".obs.registry"):
            return
        checked = {record.ctx.module for record in project.records}
        package_root = self.ctx.module.split(".")[0]
        if package_root not in checked:
            return  # subset run; absence of an emitter proves nothing

        emitted_counters: set[str] = set()
        emitted_events: set[str] = set()
        for record in project.records:
            counters, events = _emitted_names(record.tree)
            emitted_counters.update(counters)
            emitted_events.update(events)

        for target, registry_kind, emitted in (
            ("COUNTERS", "counter", emitted_counters),
            ("EVENTS", "event", emitted_events),
        ):
            declared = _registry_literals(tree, target)
            for name in sorted(set(declared) - emitted):
                self.report(
                    _At(declared[name]),
                    f"registered telemetry {registry_kind} {name!r} is "
                    f"never emitted by any checked module — remove it "
                    f"from {target} or restore the emission",
                )


class _At:
    def __init__(self, lineno: int):
        self.lineno = lineno
        self.col_offset = 0
