"""RPR6xx — event-loop hygiene over the project call graph.

**RPR601** walks the call graph from every ``async def`` in the checked
tree to known-blocking sinks: sampling compute (engine ``extend``/
``draw``, ``SamplingSession`` methods, ``algorithm.run``), blocking
file/socket I/O (``open``, ``Path.write_text``, ``subprocess``),
``time.sleep``, and thread joins (``executor.shutdown``,
``process.join``).  A sink only counts when it is *called* on the
coroutine's path — a reference passed to ``run_in_executor``/
``asyncio.to_thread``/``functools.partial`` is not a call, so the
sanctioned off-loop pattern passes without any special casing.
Traversal follows resolved *sync* callees transitively (awaiting
another coroutine defers to that coroutine's own check).

**RPR602** builds a lock-order digraph: every ``with <...lock>:``
acquisition records the locks already held (lexically, plus one level
of resolved calls made under a lock), and any pair acquired in both
orders anywhere in the project is an inversion — the classic deadlock
between the compute-lane lock and ``_LockedTelemetry``'s internal
lock.  Lock identity is ``ClassName.attr`` for ``self.<attr>`` locks
so two classes' private ``_lock`` attributes stay distinct.
"""

from __future__ import annotations

import ast

from .callgraph import ProjectIndex, iter_own_calls
from .core import Rule, trailing_identifier
from .registry import register

__all__ = ["BlockingCallRule", "LockOrderRule"]


# ----------------------------------------------------------------------
# RPR601 — blocking sinks
# ----------------------------------------------------------------------
_BLOCKING_QUALIFIED_PREFIXES = (
    "subprocess.",
    "shutil.",
    "socket.",
)
_BLOCKING_QUALIFIED = {
    "time.sleep": "time.sleep",
    "os.system": "os.system",
    "os.popen": "os.popen",
    "open": "open()",
    "io.open": "io.open()",
}
#: blocking regardless of receiver — Path-style whole-file I/O
_BLOCKING_ATTRS = {
    "write_text",
    "read_text",
    "write_bytes",
    "read_bytes",
    "sample_batch",
    "sample_cohort",
}
#: blocking when the receiver's trailing identifier suggests the
#: compute objects these methods belong to
_RECEIVER_SINKS = {
    "extend": {"engine", "_engine", "session", "_session", "sampler", "lane"},
    "draw": {"engine", "_engine", "sampler"},
    "run": {"algorithm", "alg"},
    "shutdown": {"executor", "_executor", "pool", "_pool"},
    "join": {"proc", "process", "thread", "worker"},
    "open": {"path"},
}
#: resolved method prefixes that are blocking wholesale
_BLOCKING_METHOD_PREFIXES = ("repro.session.session.SamplingSession.",)


def _blocking_sink(call: ast.Call, ctx, index: ProjectIndex) -> str | None:
    """Human label of the blocking operation ``call`` performs inline,
    or ``None``."""
    dotted = ctx.resolve(call.func)
    if dotted is not None:
        canonical = index.canonical(dotted)
        if dotted in _BLOCKING_QUALIFIED:
            return _BLOCKING_QUALIFIED[dotted]
        if dotted.startswith(_BLOCKING_QUALIFIED_PREFIXES):
            return dotted
        for prefix in _BLOCKING_METHOD_PREFIXES:
            if canonical.startswith(prefix):
                method = canonical[len(prefix) :]
                return f"SamplingSession.{method}()"
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr in _BLOCKING_ATTRS:
            return f".{attr}()"
        receivers = _RECEIVER_SINKS.get(attr)
        if receivers is not None:
            tail = trailing_identifier(call.func.value)
            if tail is not None and tail.lower() in receivers:
                return f"{tail}.{attr}()"
    return None


@register
class BlockingCallRule(Rule):
    id = "RPR601"
    name = "blocking-call-in-coroutine"
    rationale = (
        "A coroutine runs on the event loop; any inline compute or "
        "blocking I/O stalls every connected client. Blocking work "
        "must be routed through run_in_executor/asyncio.to_thread."
    )
    project = True

    def check_module(self, tree: ast.AST, project: ProjectIndex) -> None:
        cache: dict[str, tuple[str, tuple[str, ...]] | None] = {}
        for info in project.functions.values():
            if info.module != self.ctx.module or not info.is_async:
                continue
            for call in iter_own_calls(info.node):
                if isinstance(
                    getattr(call, "_repro_parent", None), ast.Await
                ):
                    # `await x(...)`: defers to the awaited coroutine's
                    # own check
                    continue
                sink = _blocking_sink(call, info.ctx, project)
                if sink is not None:
                    self.report(
                        call,
                        f"coroutine '{info.node.name}' calls blocking "
                        f"{sink} on the event loop — route it through "
                        "run_in_executor/asyncio.to_thread",
                    )
                    continue
                target = project.resolve_call(call, info.ctx, info.class_name)
                if target is None:
                    continue
                callee = project.function(target)
                if callee is None or callee.is_async:
                    continue
                reached = _reaches_blocking(project, target, cache, ())
                if reached is not None:
                    sink, path = reached
                    via = " -> ".join(
                        part.rsplit(".", 1)[-1] for part in path
                    )
                    self.report(
                        call,
                        f"coroutine '{info.node.name}' calls "
                        f"'{target.rsplit('.', 1)[-1]}', which reaches "
                        f"blocking {sink} (via {via}) — route the call "
                        "through run_in_executor/asyncio.to_thread",
                    )


def _reaches_blocking(
    index: ProjectIndex,
    qualname: str,
    cache: dict,
    stack: tuple[str, ...],
) -> tuple[str, tuple[str, ...]] | None:
    """Transitive sync-call search for a blocking sink; returns the
    sink label and the call chain that reaches it."""
    if qualname in cache:
        return cache[qualname]
    if qualname in stack:
        return None
    info = index.function(qualname)
    if info is None or info.is_async:
        return None
    cache[qualname] = None  # cycle guard while this frame is live
    result = None
    for call in iter_own_calls(info.node):
        sink = _blocking_sink(call, info.ctx, index)
        if sink is not None:
            result = (sink, (qualname,))
            break
        target = index.resolve_call(call, info.ctx, info.class_name)
        if target is None or target == qualname:
            continue
        deeper = _reaches_blocking(
            index, target, cache, stack + (qualname,)
        )
        if deeper is not None:
            sink, path = deeper
            result = (sink, (qualname,) + path)
            break
    cache[qualname] = result
    return result


# ----------------------------------------------------------------------
# RPR602 — lock-order inversions
# ----------------------------------------------------------------------
def _lock_token(expr: ast.expr, class_name: str | None) -> str | None:
    """Identity of a lock acquired by ``with expr:``, or ``None``."""
    tail = trailing_identifier(expr)
    if tail is None or "lock" not in tail.lower():
        return None
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id in ("self", "cls")
        and class_name is not None
    ):
        return f"{class_name}.{tail}"
    return tail


def _collect_lock_facts(info) -> tuple[list, list, list]:
    """Per function: ``(pairs, acquires, calls_under_lock)`` where
    pairs are (held, acquired, node), acquires are every lock token the
    function takes, and calls_under_lock are (held, call) facts for the
    one-level interprocedural step."""
    pairs: list[tuple[str, str, ast.AST]] = []
    acquires: list[str] = []
    calls_under: list[tuple[str, ast.Call]] = []

    def visit(node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ) and node is not info.node:
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                token = _lock_token(item.context_expr, info.class_name)
                if token is None:
                    continue
                for prior in inner:
                    if prior != token:
                        pairs.append((prior, token, item.context_expr))
                acquires.append(token)
                inner = inner + (token,)
            for child in node.body:
                visit(child, inner)
            return
        if isinstance(node, ast.Call) and held:
            for token in held:
                calls_under.append((token, node))
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for child in info.node.body:
        visit(child, ())
    return pairs, acquires, calls_under


def _lock_order_sites(index: ProjectIndex) -> dict:
    """``(held, acquired) -> [(module, path, line, col)]`` across the
    project, cached on the index (rules run once per module)."""
    cached = getattr(index, "_rpr602_sites", None)
    if cached is not None:
        return cached

    facts = {
        qualname: _collect_lock_facts(info)
        for qualname, info in index.functions.items()
    }
    sites: dict[tuple[str, str], list[tuple[str, str, int, int]]] = {}

    def record(held: str, acquired: str, node: ast.AST, info) -> None:
        sites.setdefault((held, acquired), []).append(
            (
                info.module,
                info.ctx.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
            )
        )

    for qualname, info in index.functions.items():
        pairs, _acquires, calls_under = facts[qualname]
        for held, acquired, node in pairs:
            record(held, acquired, node, info)
        # one level of interprocedural depth: a call made under a lock
        # acquires whatever the (resolved) callee acquires
        for held, call in calls_under:
            target = index.resolve_call(call, info.ctx, info.class_name)
            if target is None or target == qualname:
                continue
            callee_facts = facts.get(target)
            if callee_facts is None:
                continue
            for acquired in callee_facts[1]:
                if acquired != held:
                    record(held, acquired, call, info)

    index._rpr602_sites = sites  # type: ignore[attr-defined]
    return sites


@register
class LockOrderRule(Rule):
    id = "RPR602"
    name = "lock-order-inversion"
    rationale = (
        "Two locks acquired in opposite orders on two code paths can "
        "deadlock the daemon (compute-lane lock vs _LockedTelemetry's "
        "lock); the project must pick one global acquisition order."
    )
    project = True

    def check_module(self, tree: ast.AST, project: ProjectIndex) -> None:
        sites = _lock_order_sites(project)
        reported: set[tuple[int, int, str, str]] = set()
        for (held, acquired), locations in sorted(sites.items()):
            reverse = sites.get((acquired, held))
            if not reverse:
                continue
            other_path, other_line = reverse[0][1], reverse[0][2]
            for module, _path, line, col in locations:
                if module != self.ctx.module:
                    continue
                key = (line, col, held, acquired)
                if key in reported:
                    continue
                reported.add(key)
                self.report(
                    _At(line, col),
                    f"lock '{acquired}' acquired while holding "
                    f"'{held}', but the opposite order exists at "
                    f"{other_path}:{other_line} — pick one global "
                    "acquisition order",
                )


class _At:
    """Minimal location carrier for :meth:`Rule.report`."""

    def __init__(self, lineno: int, col_offset: int):
        self.lineno = lineno
        self.col_offset = col_offset
