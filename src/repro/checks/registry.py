"""The rule registry: stable IDs, one class per rule.

Every rule registers itself with :func:`register` under a stable ID of
the form ``RPR`` + three digits.  IDs are grouped by the invariant
family they guard:

* ``RPR0xx`` — RNG hygiene (all randomness flows through
  :mod:`repro._rng`);
* ``RPR1xx`` — determinism (no hidden inputs: clocks, unordered
  iteration);
* ``RPR2xx`` — cross-process safety (picklable tasks, immutable shared
  arrays);
* ``RPR3xx`` — telemetry discipline (registered counter/event names);
* ``RPR4xx`` — exception policy (:mod:`repro.exceptions` types for
  validation).

``RPR000`` is reserved for files the checker cannot parse.  IDs are
append-only: a retired rule's ID is never reused, so suppression
comments and CI configurations stay meaningful across versions.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from ..exceptions import ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import Rule

__all__ = ["RULES", "PARSE_ERROR_ID", "register", "all_rules"]

#: Reserved ID attached to findings for unparseable files.
PARSE_ERROR_ID = "RPR000"

#: ``rule id -> rule class``, populated by :func:`register` as the
#: rule modules are imported (:mod:`repro.checks` imports them all).
RULES: dict[str, type["Rule"]] = {}

_ID_PATTERN = re.compile(r"^RPR\d{3}$")


def register(cls: type["Rule"]) -> type["Rule"]:
    """Class decorator adding a rule to :data:`RULES`.

    Enforces the ID contract at import time: well-formed, not the
    reserved parse-error ID, and never colliding with an already
    registered rule.
    """
    rule_id = getattr(cls, "id", "")
    if not _ID_PATTERN.match(rule_id):
        raise ParameterError(f"rule id {rule_id!r} does not match RPRnnn")
    if rule_id == PARSE_ERROR_ID:
        raise ParameterError(f"{PARSE_ERROR_ID} is reserved for parse errors")
    if rule_id in RULES and RULES[rule_id] is not cls:
        raise ParameterError(
            f"rule id {rule_id} already registered by "
            f"{RULES[rule_id].__name__}"
        )
    if not getattr(cls, "name", ""):
        raise ParameterError(f"rule {rule_id} must define a short name")
    RULES[rule_id] = cls
    return cls


def all_rules() -> list[type["Rule"]]:
    """Every registered rule class, in ID order."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]
