"""Command-line front end of the checker.

Two spellings, one implementation: ``python -m repro.checks`` and
``repro-gbc check`` both land in :func:`run_cli`.

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage errors
(argparse).  Parse failures of *checked* files are reported as
``RPR000`` findings (exit ``1``), not crashes — a broken file in the
tree is a finding like any other.
"""

from __future__ import annotations

import argparse
import json
import sys

from .core import Report, run_checks
from .registry import all_rules

__all__ = ["main", "run_cli", "build_parser", "render_text", "render_json"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-checks",
        description=(
            "Project-specific static analysis: determinism, RNG hygiene, "
            "cross-process safety, telemetry and exception discipline "
            "(see docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        metavar="PATH",
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def render_text(report: Report) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in report.findings]
    noun = "finding" if len(report.findings) == 1 else "findings"
    summary = (
        f"{len(report.findings)} {noun} in {report.files_checked} file(s)"
    )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: Report) -> str:
    """The stable machine-readable report (schema ``version`` 1)."""
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)


def _render_rules() -> str:
    lines = []
    for cls in all_rules():
        lines.append(f"{cls.id} {cls.name}")
        lines.append(f"    {cls.rationale}")
    return "\n".join(lines)


def run_cli(args: argparse.Namespace) -> int:
    """Execute a parsed invocation; returns the process exit code."""
    if args.list_rules:
        print(_render_rules())
        return 0
    report = run_checks(args.paths)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(report))
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.checks``."""
    return run_cli(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
