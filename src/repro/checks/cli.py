"""Command-line front end of the checker.

Two spellings, one implementation: ``python -m repro.checks`` and
``repro-gbc check`` both land in :func:`run_cli`.

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage errors
(argparse, unknown ``--rules`` selectors, unusable ``--changed-only``
ref).  Parse failures of *checked* files are reported as ``RPR000``
findings (exit ``1``), not crashes — a broken file in the tree is a
finding like any other.

``--changed-only`` restricts the run to ``.py`` files that differ from
a git ref (default ``origin/main``, falling back to ``main`` then
``HEAD`` when absent, e.g. in shallow CI clones) plus untracked files —
the fast lane the pre-commit hook uses.  Note the project rules
(RPR302 registry drift) deliberately stay quiet on subset runs; the
full-tree CI job remains the source of truth.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from ..exceptions import ParameterError
from .core import Report, Rule, iter_python_files, run_checks
from .registry import all_rules

__all__ = [
    "main",
    "run_cli",
    "build_parser",
    "render_text",
    "render_json",
    "changed_files",
    "select_rules",
]

_DEFAULT_REF = "origin/main"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-checks",
        description=(
            "Project-specific static analysis: determinism, RNG hygiene, "
            "cross-process safety, telemetry and exception discipline, "
            "plus the flow-sensitive tier (resource lifecycle, event-loop "
            "hygiene, RNG taint) — see docs/static-analysis.md"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        metavar="PATH",
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help=(
            "comma-separated rule IDs or prefixes to run "
            "(e.g. 'RPR501,RPR7' runs RPR501 and every RPR7xx rule)"
        ),
    )
    parser.add_argument(
        "--changed-only",
        nargs="?",
        const=_DEFAULT_REF,
        default=None,
        metavar="REF",
        help=(
            "only check .py files changed vs the given git ref "
            f"(default when flag is bare: {_DEFAULT_REF}, falling back "
            "to main, then HEAD) plus untracked files"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def render_text(report: Report) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in report.findings]
    noun = "finding" if len(report.findings) == 1 else "findings"
    summary = (
        f"{len(report.findings)} {noun} in {report.files_checked} file(s)"
    )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: Report) -> str:
    """The stable machine-readable report (schema ``version`` 1)."""
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)


def _render_rules() -> str:
    lines = []
    for cls in all_rules():
        lines.append(f"{cls.id} {cls.name}")
        lines.append(f"    {cls.rationale}")
    return "\n".join(lines)


def select_rules(spec: str) -> list[type[Rule]]:
    """Rule classes matching a comma list of IDs/prefixes.

    Raises :class:`~repro.exceptions.ParameterError` for a selector
    that matches nothing — a typo in ``--rules`` silently running zero
    rules would read as "clean".
    """
    selectors = [part.strip() for part in spec.split(",") if part.strip()]
    if not selectors:
        raise ParameterError("--rules got an empty selector list")
    selected: list[type[Rule]] = []
    for selector in selectors:
        matches = [
            cls
            for cls in all_rules()
            if cls.id == selector or cls.id.startswith(selector)
        ]
        if not matches:
            raise ParameterError(
                f"--rules selector {selector!r} matches no rule"
            )
        for cls in matches:
            if cls not in selected:
                selected.append(cls)
    return selected


# ----------------------------------------------------------------------
# --changed-only support
# ----------------------------------------------------------------------
def _git(*args: str) -> str:
    return subprocess.run(
        ["git", *args],
        check=True,
        capture_output=True,
        text=True,
    ).stdout


def _resolve_ref(ref: str) -> str:
    """First usable ref among ``ref`` and the documented fallbacks."""
    candidates = [ref]
    for fallback in (_DEFAULT_REF, "main", "HEAD"):
        if fallback not in candidates:
            candidates.append(fallback)
    for candidate in candidates:
        probe = subprocess.run(
            ["git", "rev-parse", "--verify", "--quiet", f"{candidate}^{{commit}}"],
            capture_output=True,
            text=True,
        )
        if probe.returncode == 0:
            return candidate
    raise ParameterError(f"no usable git ref among {candidates}")


def changed_files(ref: str, paths: list[str]) -> list[Path]:
    """``.py`` files under ``paths`` changed vs ``ref`` or untracked.

    Raises :class:`~repro.exceptions.ParameterError` when git is
    unavailable or no candidate ref resolves (the caller maps that to
    exit code 2).
    """
    try:
        root = Path(_git("rev-parse", "--show-toplevel").strip())
        resolved = _resolve_ref(ref)
        diffed = _git("diff", "--name-only", resolved)
        untracked = _git("ls-files", "--others", "--exclude-standard")
    except (OSError, subprocess.CalledProcessError) as exc:
        raise ParameterError(
            f"git unavailable for --changed-only: {exc}"
        ) from exc
    changed = {
        (root / line).resolve()
        for line in (diffed + untracked).splitlines()
        if line.strip().endswith(".py")
    }
    requested = {path.resolve() for path in iter_python_files(list(paths))}
    return sorted(requested & changed)


def run_cli(args: argparse.Namespace) -> int:
    """Execute a parsed invocation; returns the process exit code."""
    if args.list_rules:
        print(_render_rules())
        return 0
    rules = None
    if args.rules:
        try:
            rules = select_rules(args.rules)
        except ParameterError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    paths = list(args.paths)
    if args.changed_only is not None:
        try:
            paths = changed_files(args.changed_only, paths)
        except ParameterError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    report = run_checks(paths, rules=rules)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(report))
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.checks``."""
    return run_cli(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
