"""Module-level call graph with alias-resolved qualified names.

Built once per :func:`repro.checks.core.run_checks` invocation over
every module that parsed, the :class:`ProjectIndex` gives the project
rules (RPR3xx/6xx) three things the per-file pass cannot provide:

* a table of every function/method definition keyed by canonical
  dotted name (``repro.serve.daemon.GBCServer._compute``),
* an alias table that chases re-exports (``repro.session.
  SamplingSession`` -> ``repro.session.session.SamplingSession``)
  built from each module's import statements — the same resolver the
  syntactic rules use (:func:`repro.checks.core.qualified_name`),
* resolved call edges, caller -> (callee, call node), plus the
  *unresolved* attribute calls (receiver tail, method name) that the
  heuristic sink matchers consume.

Resolution is deliberately conservative: a call binds to a definition
only when the import alias chain reaches it, when it is ``self.``/
``cls.``-dispatch inside the defining class, or when the method name
is **unique** across every class in the project (good enough for a
codebase this size, and wrong resolutions only ever *add* edges to a
reachability analysis whose findings are then human-reviewed).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .core import ModuleContext, qualified_name, trailing_identifier

__all__ = ["FunctionInfo", "ProjectIndex"]


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: ModuleContext
    class_name: str | None = None

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)


@dataclass
class _Record:
    """What the index needs from one parsed module."""

    ctx: ModuleContext
    tree: ast.AST


class ProjectIndex:
    """Cross-module lookup structures for the project rules."""

    def __init__(self, records):
        self.records: list[_Record] = list(records)
        #: canonical qualname -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        #: ``module.local`` -> imported dotted target (re-export chase)
        self.aliases: dict[str, str] = {}
        #: method name -> set of qualnames defining it
        self.method_names: dict[str, set[str]] = {}
        #: caller qualname -> list of (callee qualname, call node)
        self.calls: dict[str, list[tuple[str, ast.Call]]] = {}
        #: caller qualname -> list of (receiver tail, attr, call node)
        #: for attribute calls that did not resolve to a definition
        self.attr_calls: dict[str, list[tuple[str | None, str, ast.Call]]] = {}

        for record in self.records:
            self._collect_definitions(record)
        for record in self.records:
            ctx = record.ctx
            for local, target in ctx.imports.items():
                self.aliases[f"{ctx.module}.{local}"] = target
        for info in list(self.functions.values()):
            self._collect_calls(info)

    # ------------------------------------------------------------------
    def _collect_definitions(self, record: _Record) -> None:
        module = record.ctx.module
        for node in getattr(record.tree, "body", []):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(record, node, None)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._add_function(record, item, node.name)
                # the class itself is addressable (Cls.method)
                self.aliases.setdefault(
                    f"{module}.{node.name}", f"{module}.{node.name}"
                )

    def _add_function(
        self,
        record: _Record,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> None:
        module = record.ctx.module
        if class_name is None:
            qualname = f"{module}.{node.name}"
        else:
            qualname = f"{module}.{class_name}.{node.name}"
            self.method_names.setdefault(node.name, set()).add(qualname)
        self.functions[qualname] = FunctionInfo(
            qualname=qualname,
            module=module,
            node=node,
            ctx=record.ctx,
            class_name=class_name,
        )

    # ------------------------------------------------------------------
    def _collect_calls(self, info: FunctionInfo) -> None:
        resolved: list[tuple[str, ast.Call]] = []
        unresolved: list[tuple[str | None, str, ast.Call]] = []
        for call in iter_own_calls(info.node):
            target = self.resolve_call(call, info.ctx, info.class_name)
            if target is not None:
                resolved.append((target, call))
            elif isinstance(call.func, ast.Attribute):
                unresolved.append(
                    (
                        trailing_identifier(call.func.value),
                        call.func.attr,
                        call,
                    )
                )
        self.calls[info.qualname] = resolved
        self.attr_calls[info.qualname] = unresolved

    # ------------------------------------------------------------------
    def canonical(self, dotted: str) -> str:
        """Chase import aliases until a known definition (or fixpoint)."""
        for _ in range(10):
            if dotted in self.functions:
                return dotted
            parts = dotted.split(".")
            expanded = None
            for cut in range(len(parts), 0, -1):
                prefix = ".".join(parts[:cut])
                target = self.aliases.get(prefix)
                if target is not None and target != prefix:
                    expanded = ".".join([target] + parts[cut:])
                    break
            if expanded is None or expanded == dotted:
                return dotted
            dotted = expanded
        return dotted

    def resolve_call(
        self,
        call: ast.Call,
        ctx: ModuleContext,
        class_name: str | None = None,
    ) -> str | None:
        """Canonical qualname of ``call``'s callee, if determinable."""
        func = call.func
        if isinstance(func, ast.Name):
            local = f"{ctx.module}.{func.id}"
            if local in self.functions:
                return local
            dotted = ctx.imports.get(func.id)
            if dotted is not None:
                canonical = self.canonical(dotted)
                if canonical in self.functions:
                    return canonical
            return None
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in ("self", "cls")
            and class_name is not None
        ):
            qualname = f"{ctx.module}.{class_name}.{func.attr}"
            if qualname in self.functions:
                return qualname
        dotted = ctx.resolve(func)
        if dotted is not None:
            canonical = self.canonical(dotted)
            if canonical in self.functions:
                return canonical
        owners = self.method_names.get(func.attr)
        if owners is not None and len(owners) == 1:
            return next(iter(owners))
        return None

    # ------------------------------------------------------------------
    def callees(self, qualname: str) -> list[tuple[str, ast.Call]]:
        return self.calls.get(qualname, [])

    def function(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)


def iter_own_calls(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.Call]:
    """Calls lexically in ``func``'s body, excluding nested function and
    lambda bodies (those execute on *their* invocation, not here)."""
    calls: list[ast.Call] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            calls.append(node)
        stack.extend(ast.iter_child_nodes(node))
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls
