"""Project-specific static analysis (``repro.checks``).

Two tiers, one report.  The *syntactic* tier is an AST lint pass
enforcing the conventions the repository's determinism guarantees rest
on: RNG hygiene (``RPR0xx``), determinism (``RPR1xx``), cross-process
safety (``RPR2xx``), telemetry discipline (``RPR3xx``), and exception
policy (``RPR4xx``).  The *dataflow* tier lowers every function to a
CFG (:mod:`repro.checks.cfg`), runs abstract domains over a shared
worklist solver (:mod:`repro.checks.dataflow`) and a project call
graph (:mod:`repro.checks.callgraph`): resource lifecycle
(``RPR5xx``), event-loop hygiene (``RPR6xx``), and RNG taint
(``RPR7xx``).  Run it all with ``python -m repro.checks src/repro`` or
``repro-gbc check``; the CI ``checks`` step fails the build on any
finding.  Rules, rationale, and the suppression syntax are documented
in ``docs/static-analysis.md``.

Programmatic use::

    from repro.checks import run_checks
    report = run_checks(["src/repro"])
    assert report.ok, [f.render() for f in report.findings]
"""

from __future__ import annotations

from .core import (
    Finding,
    ModuleContext,
    Report,
    Rule,
    check_file,
    check_source,
    run_checks,
)
from .registry import PARSE_ERROR_ID, RULES, all_rules, register

__all__ = [
    "Finding",
    "Report",
    "Rule",
    "ModuleContext",
    "check_source",
    "check_file",
    "run_checks",
    "RULES",
    "PARSE_ERROR_ID",
    "register",
    "all_rules",
    "rule_ids",
]


def _load_rules() -> None:
    """Import every rule module (registration is an import side effect)."""
    from . import (  # noqa: F401  (imported for registration)
        rules_async,
        rules_determinism,
        rules_exceptions,
        rules_lifecycle,
        rules_process,
        rules_registry_drift,
        rules_rng,
        rules_taint,
        rules_telemetry,
    )


_load_rules()


def rule_ids() -> list[str]:
    """Every registered rule ID, sorted."""
    return sorted(RULES)
