"""Telemetry discipline rule (``RPR3xx``).

The cross-engine equality tests (``tests/obs``) compare counter totals
*by name* between serial/batch/process runs — a typo in one engine's
counter name makes the dicts differ in keys, which a tolerant consumer
can easily read as "counter is zero here" instead of failing loudly.
This rule pins every ``telemetry.count``/``telemetry.event`` name to
the checked-in registry (:mod:`repro.obs.registry`), so a new or
renamed name is a compile-time conversation, not a runtime surprise.
"""

from __future__ import annotations

import ast

from ..obs.registry import COUNTERS, EVENTS
from .core import Rule, trailing_identifier
from .registry import register

__all__ = ["UnregisteredTelemetryName"]

#: Receiver spellings treated as a telemetry hub.  The rule is
#: name-based (no type inference): any ``.count(...)``/``.event(...)``
#: whose receiver's last identifier is one of these is checked, which
#: covers every hub handle the codebase uses (``self.telemetry``,
#: ``telemetry``, ``hub``) without tripping on ``str.count`` /
#: ``list.count`` receivers.
HUB_RECEIVERS = frozenset({"telemetry", "_telemetry", "hub", "tel"})

_REGISTRY_HINT = "register it in repro.obs.registry"


@register
class UnregisteredTelemetryName(Rule):
    """Counter/event names missing from the telemetry registry."""

    id = "RPR301"
    name = "unregistered-telemetry-name"
    rationale = (
        "Engines are compared by counter *name*; an unregistered or "
        "misspelled name silently breaks the cross-engine equality "
        "contract. The registry in repro.obs.registry is the single "
        "source of truth for what the package may emit."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        if method not in ("count", "event"):
            return
        receiver = trailing_identifier(node.func.value)
        if receiver not in HUB_RECEIVERS:
            return
        if not node.args:
            return
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            self.report(
                node,
                f"telemetry {method} name must be a string literal so the "
                "registry check can see it",
            )
            return
        name = first.value
        registry = COUNTERS if method == "count" else EVENTS
        if name not in registry:
            kind = "counter" if method == "count" else "event"
            self.report(
                node,
                f"unregistered telemetry {kind} name {name!r}; "
                f"{_REGISTRY_HINT} ({kind.upper()}S)",
            )
