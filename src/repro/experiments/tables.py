"""The paper's Table I as a runnable experiment.

Prints the dataset inventory: the paper's original sizes next to the
scaled stand-ins this reproduction actually instantiates (and their
giant-component sizes, which are what every experiment runs on).
"""

from __future__ import annotations

from ..datasets import dataset_names, get_spec, load
from .figures import FigureResult
from .harness import ExperimentConfig

__all__ = ["run_table1"]


def run_table1(config: ExperimentConfig, all_datasets: bool = True) -> FigureResult:
    """Materialize each dataset and tabulate paper-vs-stand-in sizes."""
    names = dataset_names() if all_datasets else list(config.datasets)
    rows = []
    for name in names:
        spec = get_spec(name)
        graph = load(name, seed=config.seed, giant_only=False)
        giant = load(name, seed=config.seed, giant_only=True)
        rows.append(
            [
                name,
                spec.paper_nodes,
                spec.paper_edges,
                "directed" if spec.directed else "undirected",
                graph.n,
                graph.num_edges,
                giant.n,
                giant.num_edges,
            ]
        )
    return FigureResult(
        name="Table I",
        title="datasets: paper originals vs scaled stand-ins",
        headers=[
            "dataset",
            "paper_V",
            "paper_E",
            "type",
            "standin_V",
            "standin_E",
            "giant_V",
            "giant_E",
        ],
        rows=rows,
    )
