"""Experiment harness regenerating the paper's tables and figures."""

from .ablations import (
    run_base_sweep,
    run_endpoint_ablation,
    run_local_search_ablation,
    run_pair_vs_path,
    run_sampler_work,
    run_strategy_comparison,
    run_validation_set_ablation,
    run_work_scaling,
)
from .export import read_json, to_csv, to_json, write_result
from .figures import FigureResult, run_fig1, run_fig2, run_fig3, run_fig4, run_fig5
from .harness import (
    BENCH,
    FULL,
    REDUCED,
    SAMPLING_ALGORITHMS,
    SMOKE,
    DatasetContext,
    ExperimentConfig,
    aggregate,
    build_sampling_algorithm,
    load_dataset,
)
from .report import format_number, format_table, render_series
from .summary import EXPECTED_SHAPES, run_all, write_markdown
from .tables import run_table1

__all__ = [
    "ExperimentConfig",
    "SMOKE",
    "BENCH",
    "REDUCED",
    "FULL",
    "SAMPLING_ALGORITHMS",
    "DatasetContext",
    "build_sampling_algorithm",
    "load_dataset",
    "aggregate",
    "FigureResult",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_table1",
    "run_base_sweep",
    "run_sampler_work",
    "run_endpoint_ablation",
    "run_strategy_comparison",
    "run_pair_vs_path",
    "run_validation_set_ablation",
    "run_local_search_ablation",
    "run_work_scaling",
    "format_table",
    "format_number",
    "render_series",
    "to_csv",
    "to_json",
    "write_result",
    "read_json",
    "run_all",
    "write_markdown",
    "EXPECTED_SHAPES",
]
