"""Plain-text rendering of experiment output.

The original paper presents its evaluation as figures; a terminal
reproduction prints the same series as aligned tables.  These helpers
are deliberately dependency-free (no plotting), matching the harness's
"print the rows the paper plots" contract.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_number", "render_series"]


def format_number(value) -> str:
    """Compact human formatting: ints as-is, floats to 4 significant digits."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table with a header rule."""
    str_rows = [[format_number(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in str_rows
    ]
    return "\n".join([header_line, rule, *body])


def render_series(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """A titled table block, ready for printing."""
    table = format_table(headers, rows)
    bar = "=" * max(len(title), 8)
    return f"{title}\n{bar}\n{table}\n"
