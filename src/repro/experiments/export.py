"""Export experiment results to CSV / JSON.

``FigureResult`` rows are plain Python scalars, so serialization is a
direct mapping; these helpers exist so that EXPERIMENTS.md and any
downstream plotting can be generated from the exact data a run
produced (the CLI's ``experiment --output`` flag uses them).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..exceptions import ParameterError
from .figures import FigureResult

__all__ = ["to_csv", "to_json", "write_result", "read_json"]


def to_csv(result: FigureResult, path) -> None:
    """Write the result's rows as a CSV file with a header row."""
    path = Path(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        writer.writerows(result.rows)


def to_json(result: FigureResult, path) -> None:
    """Write the result as JSON: metadata plus a list of row objects."""
    path = Path(path)
    payload = {
        "name": result.name,
        "title": result.title,
        "headers": result.headers,
        "meta": result.meta,
        "rows": [dict(zip(result.headers, row)) for row in result.rows],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def write_result(result: FigureResult, path) -> None:
    """Dispatch on the file extension (``.csv`` or ``.json``)."""
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        to_csv(result, path)
    elif suffix == ".json":
        to_json(result, path)
    else:
        raise ParameterError(f"unsupported output format {suffix!r} (.csv/.json)")


def read_json(path) -> FigureResult:
    """Load a result previously written by :func:`to_json`."""
    with open(path) as handle:
        payload = json.load(handle)
    headers = payload["headers"]
    rows = [[row[h] for h in headers] for row in payload["rows"]]
    return FigureResult(
        name=payload["name"],
        title=payload["title"],
        headers=headers,
        rows=rows,
        meta=payload.get("meta", {}),
    )
