"""Ablation experiments for the design choices of DESIGN.md §6.

Each function returns a :class:`~repro.experiments.figures.FigureResult`
(same contract as the paper's figures) so the results can be rendered,
exported, and asserted by the benchmark suite.  They are also exposed
on the CLI as ``repro-gbc experiment ablation-...``.
"""

from __future__ import annotations

from .._rng import as_generator
from ..algorithms import AdaAlg, TopBetweenness, TopDegree, YoshidaSketch
from ..paths.exact_gbc import exact_gbc
from ..paths.sampler import PathSampler
from .figures import FigureResult
from .harness import DatasetContext, ExperimentConfig, load_dataset

__all__ = [
    "run_base_sweep",
    "run_sampler_work",
    "run_endpoint_ablation",
    "run_strategy_comparison",
    "run_pair_vs_path",
    "run_validation_set_ablation",
    "run_local_search_ablation",
    "run_work_scaling",
]

_BASES = (1.1, 1.2, 1.4, 1.7, 2.0)


def run_base_sweep(config: ExperimentConfig, eps: float = 0.3) -> FigureResult:
    """Sample count and quality of AdaAlg as the growth base varies.

    Sec. IV-C of the paper discusses the trade-off: a small base
    lands close to the minimal sufficient sample size but runs more
    iterations; a large base overshoots on its final iteration.
    """
    rows = []
    for dataset in config.datasets:
        graph = load_dataset(dataset, config)
        context = DatasetContext(graph, config)
        master = as_generator(config.seed + 11)
        k = min(max(config.ks), graph.n)
        for b_min in _BASES:
            result = AdaAlg(
                eps=eps, gamma=config.gamma, b_min=b_min, seed=master
            ).run(graph, k)
            rows.append(
                [
                    dataset,
                    b_min,
                    result.diagnostics["base"],
                    result.num_samples,
                    result.iterations,
                    context.evaluate_normalized(result.group),
                ]
            )
    return FigureResult(
        name="Ablation: base b",
        title=f"AdaAlg growth-base sweep (eps={eps}, K=max(ks))",
        headers=["dataset", "b_min", "b_used", "samples", "iterations", "norm_gbc"],
        rows=rows,
    )


def run_sampler_work(
    config: ExperimentConfig, draws: int = 300
) -> FigureResult:
    """Mean arcs touched per sample: bidirectional vs forward BFS.

    Quantifies the paper's Sec. III-D claim that the balanced
    bidirectional search does roughly ``O(m^(1/2+o(1)))`` work per
    sample against the forward search's ``O(m)``.
    """
    rows = []
    for dataset in config.datasets:
        graph = load_dataset(dataset, config)
        work = {}
        for method in ("bidirectional", "forward"):
            sampler = PathSampler(graph, seed=config.seed + 12, method=method)
            sampler.sample_many(draws)
            work[method] = sampler.total_edges_explored / draws
        rows.append(
            [
                dataset,
                graph.num_edges,
                work["bidirectional"],
                work["forward"],
                work["forward"] / max(work["bidirectional"], 1e-12),
            ]
        )
    return FigureResult(
        name="Ablation: sampler work",
        title=f"mean arcs touched per sample over {draws} draws",
        headers=["dataset", "edges", "bidirectional", "forward", "speedup"],
        rows=rows,
    )


def run_endpoint_ablation(
    config: ExperimentConfig, eps: float = 0.3
) -> FigureResult:
    """Effect of the endpoint convention on the found group's value.

    The paper (Sec. III-B) argues endpoint inclusion adds at most the
    constant ``2Kn - K^2 - K`` (every endpoint pair counts once, and
    those already covered internally gain nothing); this ablation runs
    AdaAlg under both conventions and reports the observed gap next to
    that bound.
    """
    rows = []
    for dataset in config.datasets:
        graph = load_dataset(dataset, config)
        master = as_generator(config.seed + 13)
        k = min(min(config.ks), graph.n)
        with_ep = AdaAlg(eps=eps, gamma=config.gamma, seed=master).run(graph, k)
        without_ep = AdaAlg(
            eps=eps, gamma=config.gamma, seed=master, include_endpoints=False
        ).run(graph, k)
        constant = 2 * k * graph.n - k * k - k
        rows.append(
            [
                dataset,
                k,
                with_ep.estimate,
                without_ep.estimate,
                with_ep.estimate - without_ep.estimate,
                constant,
            ]
        )
    return FigureResult(
        name="Ablation: endpoints",
        title="endpoint-inclusion convention (paper Sec. III-B)",
        headers=[
            "dataset",
            "K",
            "est_with_endpoints",
            "est_without",
            "gap",
            "paper_upper_bound",
        ],
        rows=rows,
    )


def run_strategy_comparison(
    config: ExperimentConfig, eps: float = 0.3
) -> FigureResult:
    """Group-GBC of the naive strategies vs AdaAlg, graded exactly.

    The motivation experiment: top-K degree and top-K individual
    betweenness against the jointly optimized group.
    """
    rows = []
    for dataset in config.datasets:
        graph = load_dataset(dataset, config)
        master = as_generator(config.seed + 14)
        k = min(min(config.ks), graph.n)
        pairs = graph.num_ordered_pairs
        strategies = [
            TopDegree(),
            TopBetweenness(eps=0.005, seed=master),
            AdaAlg(eps=eps, gamma=config.gamma, seed=master),
        ]
        values = {}
        for strategy in strategies:
            result = strategy.run(graph, k)
            values[strategy.name] = exact_gbc(graph, result.group) / pairs
        rows.append(
            [
                dataset,
                k,
                values["TopDegree"],
                values["TopBetweenness"],
                values["AdaAlg"],
            ]
        )
    return FigureResult(
        name="Ablation: strategies",
        title="exact normalized GBC of naive strategies vs AdaAlg",
        headers=["dataset", "K", "top_degree", "top_betweenness", "adaalg"],
        rows=rows,
    )


def run_work_scaling(
    config: ExperimentConfig,
    sizes=(500, 1000, 2000, 4000, 8000),
    attach: int = 5,
    draws: int = 300,
) -> FigureResult:
    """Per-sample traversal work vs graph size (Theorem 1's engine).

    The paper's time bound rests on the balanced bidirectional BFS
    doing ``O(m^(1/2+o(1)))`` work per sample on realistic networks.
    This experiment measures mean arcs touched per sample on
    Barabási–Albert graphs of growing size and fits the scaling
    exponent ``alpha`` in ``work ~ m^alpha`` by least squares on the
    log-log series — expected well below 1 (the forward-BFS exponent).
    """
    import math

    from ..graph.generators import barabasi_albert

    rows = []
    logs = []
    for n in sizes:
        graph = barabasi_albert(n, attach, seed=config.seed)
        work = {}
        for method in ("bidirectional", "forward"):
            sampler = PathSampler(graph, seed=config.seed + 18, method=method)
            sampler.sample_many(draws)
            work[method] = sampler.total_edges_explored / draws
        arcs = 2 * graph.num_edges
        logs.append((math.log(arcs), math.log(max(work["bidirectional"], 1.0))))
        rows.append(
            [n, graph.num_edges, work["bidirectional"], work["forward"],
             math.sqrt(arcs)]
        )
    # least-squares slope of log(work) on log(m)
    mean_x = sum(x for x, _ in logs) / len(logs)
    mean_y = sum(y for _, y in logs) / len(logs)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in logs)
    denominator = sum((x - mean_x) ** 2 for x, y in logs)
    slope = numerator / denominator if denominator else 0.0
    rows.append(["exponent", slope, None, None, None])
    return FigureResult(
        name="Ablation: work scaling",
        title=f"mean arcs per sample vs graph size (BA, attach={attach})",
        headers=["n", "edges", "bidirectional", "forward", "sqrt_arcs"],
        rows=rows,
    )


def run_validation_set_ablation(
    config: ExperimentConfig, eps: float = 0.3
) -> FigureResult:
    """AdaAlg with and without its independent validation set ``T``.

    Dropping ``T`` halves the samples but removes the bias correction
    the ``(1-1/e-eps)`` guarantee rests on; the exact grading column
    shows what that costs in solution quality.
    """
    rows = []
    for dataset in config.datasets:
        graph = load_dataset(dataset, config)
        master = as_generator(config.seed + 16)
        k = min(min(config.ks), graph.n)
        pairs = graph.num_ordered_pairs
        full = AdaAlg(eps=eps, gamma=config.gamma, seed=master).run(graph, k)
        no_t = AdaAlg(
            eps=eps, gamma=config.gamma, seed=master, validation_set=False
        ).run(graph, k)
        rows.append(
            [
                dataset,
                k,
                full.num_samples,
                exact_gbc(graph, full.group) / pairs,
                no_t.num_samples,
                exact_gbc(graph, no_t.group) / pairs,
            ]
        )
    return FigureResult(
        name="Ablation: validation set",
        title="AdaAlg with vs without the independent T sample set",
        headers=[
            "dataset",
            "K",
            "samples_with_T",
            "exact_with_T",
            "samples_no_T",
            "exact_no_T",
        ],
        rows=rows,
    )


def run_local_search_ablation(
    config: ExperimentConfig, eps: float = 0.3
) -> FigureResult:
    """Swap local search on top of AdaAlg's greedy group.

    The refinement re-optimizes on AdaAlg's own selection samples; the
    exact columns show whether the extra covered samples translate into
    real centrality.
    """
    from ..coverage import CoverageInstance, swap_local_search
    from ..engine import create_engine

    rows = []
    for dataset in config.datasets:
        graph = load_dataset(dataset, config)
        master = as_generator(config.seed + 17)
        k = min(min(config.ks), graph.n)
        pairs = graph.num_ordered_pairs
        result = AdaAlg(eps=eps, gamma=config.gamma, seed=master).run(graph, k)
        # rebuild a selection-sized sample set to refine against
        instance = CoverageInstance(graph.n)
        with create_engine(
            config.engine, graph, seed=master, workers=config.workers
        ) as engine:
            engine.extend(instance, max(result.num_samples // 2, 500))
        refined = swap_local_search(instance, result.group)
        rows.append(
            [
                dataset,
                k,
                refined.swaps,
                exact_gbc(graph, result.group) / pairs,
                exact_gbc(graph, refined.group) / pairs,
            ]
        )
    return FigureResult(
        name="Ablation: local search",
        title="swap local search refinement of AdaAlg's group",
        headers=["dataset", "K", "swaps", "exact_greedy", "exact_refined"],
        rows=rows,
    )


def run_pair_vs_path(config: ExperimentConfig, eps: float = 0.3) -> FigureResult:
    """Pair sampling (Yoshida sketch) vs path sampling (AdaAlg)."""
    rows = []
    for dataset in config.datasets:
        graph = load_dataset(dataset, config)
        master = as_generator(config.seed + 15)
        k = min(min(config.ks), graph.n)
        pairs = graph.num_ordered_pairs
        sketch = YoshidaSketch(
            eps=eps, gamma=config.gamma, seed=master, max_samples=config.max_samples
        ).run(graph, k)
        ada = AdaAlg(eps=eps, gamma=config.gamma, seed=master).run(graph, k)
        rows.append(
            [
                dataset,
                k,
                sketch.num_samples,
                sketch.estimate / pairs,
                exact_gbc(graph, sketch.group) / pairs,
                ada.num_samples,
                exact_gbc(graph, ada.group) / pairs,
            ]
        )
    return FigureResult(
        name="Ablation: pair vs path",
        title="Yoshida hypergraph sketch vs AdaAlg path sampling",
        headers=[
            "dataset",
            "K",
            "sketch_samples",
            "sketch_claimed",
            "sketch_exact",
            "ada_samples",
            "ada_exact",
        ],
        rows=rows,
    )
