"""Shared experiment plumbing: configs, per-dataset context, aggregation.

Two design choices keep the full figure grid tractable in pure Python
without changing what is being measured:

* **Holdout quality grading.**  Every returned group is graded on a
  single large *holdout* sample set drawn once per dataset
  (:class:`DatasetContext`), independent of every algorithm's internal
  samples — an unbiased estimate of ``B(C)`` whose noise (well under
  1% at the default 30k+ paths) is shared by all algorithms in a
  figure, so ratios are clean.  ``quality_mode="exact"`` switches to
  the exact avoid-set computation instead.
* **Shared EXHAUST pool.**  EXHAUST (the quality yardstick) depends on
  the dataset and K but not on eps or the repetition index, and its
  sample set can be drawn once per dataset; the per-K greedy runs on
  that shared pool.

Scaling note: the paper runs each point 20 times (100 for Fig. 1) on a
C++ implementation; the presets here default to fewer repetitions and
a safety cap on the baselines' sample demands.  Both are plain config
fields — raise them (or use ``FULL``) for a full-fidelity run.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace

from .._rng import as_generator, spawn
from ..algorithms import AdaAlg, CentRa, Hedge
from ..coverage import CoverageInstance, greedy_max_cover
from ..datasets import load
from ..engine import create_engine
from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from ..obs import Telemetry
from ..paths.exact_gbc import exact_gbc
from ..session import SamplingSession

__all__ = [
    "ExperimentConfig",
    "SMOKE",
    "BENCH",
    "REDUCED",
    "FULL",
    "DatasetContext",
    "SessionBank",
    "build_sampling_algorithm",
    "load_dataset",
    "aggregate",
    "SAMPLING_ALGORITHMS",
    "ALGORITHM_LANES",
]

SAMPLING_ALGORITHMS = ("HEDGE", "CentRa", "AdaAlg")

#: Session lanes each sampling algorithm draws through (AdaAlg keeps an
#: independent validation set T next to its selection set S).
ALGORITHM_LANES = {"HEDGE": 1, "CentRa": 1, "AdaAlg": 2, "EXHAUST": 1}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment.

    Attributes
    ----------
    datasets:
        Registry names to run on.
    ks:
        Group sizes (paper: 20..100).
    eps_values:
        Error ratios (paper: 0.1..0.5; the quick presets start at 0.2
        because HEDGE's 1/eps^2 sample demand dominates the runtime).
    gamma:
        Error probability (paper: 0.01 throughout).
    repetitions:
        Independent runs per cell (paper: 20; Fig. 1 uses
        ``fig1_simulations``).
    fig1_simulations, fig1_lengths:
        Fig. 1's simulation count (paper: 100) and L checkpoints
        (paper: 500..16000).
    exhaust_samples:
        Size of the shared EXHAUST reference pool.
    eval_samples:
        Size of the holdout set used to grade group quality.
    max_samples:
        Safety cap on HEDGE/CentRa sample demands (None = faithful).
    quality_mode:
        ``"holdout"`` (default) or ``"exact"``.
    engine:
        Execution engine (:data:`repro.engine.ENGINES`) every sample —
        the algorithms' own and the harness's holdout/reference pools —
        is drawn through.
    workers:
        Worker-process count for the ``"process"`` engine (``None`` =
        all cores); ignored by in-process engines.
    kernel:
        Traversal kernel for the batch/process engines
        (:data:`repro.engine.KERNELS`).
    telemetry:
        When true, every sampling algorithm gets its own in-memory
        :class:`repro.obs.Telemetry` hub, so per-run span timings,
        engine counters, and per-iteration events land in
        ``GBCResult.diagnostics["telemetry"]`` (and the fact is
        recorded in each figure's provenance metadata).
    reuse_sessions:
        Warm-start the sweep: every (dataset, algorithm) pair draws
        through one persistent :class:`~repro.session.SamplingSession`
        (a :class:`SessionBank`), so the sample pool grows monotonically
        across eps/K cells — the sampler distribution is independent of
        eps and K, so a later cell *extends* the earlier cells' store
        instead of re-drawing it.  Figures record the saved volume as
        ``samples_reused`` in their ``meta``.  Off by default: reused
        cells are statistically valid but no longer independent across
        cells/repetitions, which matters when quoting per-cell variance.
    seed:
        Master seed; every cell derives its own stream from it.
    """

    datasets: tuple[str, ...] = ("GrQc",)
    ks: tuple[int, ...] = (20, 40, 60, 80, 100)
    eps_values: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)
    gamma: float = 0.01
    repetitions: int = 3
    fig1_simulations: int = 10
    fig1_lengths: tuple[int, ...] = (500, 1000, 2000, 4000, 8000, 16000)
    exhaust_samples: int = 100_000
    eval_samples: int = 100_000
    max_samples: int | None = 500_000
    quality_mode: str = "holdout"
    engine: str = "serial"
    workers: int | None = None
    kernel: str = "wavefront"
    telemetry: bool = False
    reuse_sessions: bool = False
    seed: int = 20250704

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Minimal config for tests and benchmark smoke runs (seconds).
SMOKE = ExperimentConfig(
    datasets=("GrQc",),
    ks=(10, 20),
    eps_values=(0.3, 0.5),
    repetitions=1,
    fig1_simulations=2,
    fig1_lengths=(500, 1000, 2000),
    exhaust_samples=8_000,
    eval_samples=8_000,
    max_samples=40_000,
)

#: Default benchmark config: every claim's shape in ~15 minutes total.
BENCH = ExperimentConfig(
    datasets=("GrQc",),
    ks=(20, 60, 100),
    eps_values=(0.2, 0.3, 0.5),
    repetitions=1,
    fig1_simulations=5,
    fig1_lengths=(500, 1000, 2000, 4000, 8000),
    exhaust_samples=30_000,
    eval_samples=30_000,
    max_samples=500_000,
)

#: Wider grid over several datasets (about an hour).
REDUCED = ExperimentConfig(
    datasets=("GrQc", "Coauthor", "Twitter", "SyntheticNetwork-WS"),
    ks=(20, 40, 60, 80, 100),
    eps_values=(0.1, 0.2, 0.3, 0.4, 0.5),
    repetitions=3,
    fig1_simulations=20,
    exhaust_samples=60_000,
    eval_samples=60_000,
    max_samples=1_000_000,
)

#: Faithful grid (all datasets, paper's repetitions, no caps) — many hours.
FULL = ExperimentConfig(
    datasets=(
        "GrQc",
        "Facebook",
        "Coauthor",
        "DBLP-2011",
        "Epinions",
        "Twitter",
        "Email-euAll",
        "LiveJournal",
        "SyntheticNetwork-BA",
        "SyntheticNetwork-WS",
    ),
    repetitions=20,
    fig1_simulations=100,
    exhaust_samples=300_000,
    eval_samples=300_000,
    max_samples=None,
)


class SessionBank:
    """A warm-start pool of sampling sessions for one dataset.

    One persistent :class:`~repro.session.SamplingSession` per
    algorithm, created lazily on first request and handed to every
    subsequent run of that algorithm in the sweep.  Because the sampler
    distribution does not depend on eps, K, or the repetition index,
    the pool only ever *grows* (monotone reuse): a cell whose schedule
    is already covered draws nothing at all.

    The bank tracks ``samples_reused`` — the pool volume that later
    runs found already present — which the figure drivers surface in
    ``FigureResult.meta``.
    """

    def __init__(self, graph: CSRGraph, config: ExperimentConfig, seed=None):
        self.graph = graph
        self.config = config
        self._rng = as_generator(config.seed + 9 if seed is None else seed)
        self._sessions: dict[str, SamplingSession] = {}
        #: Samples already present in a session at hand-out time,
        #: accumulated over every reuse (first hand-outs contribute 0).
        self.samples_reused = 0

    def session_for(self, name: str) -> SamplingSession:
        """The persistent session of one algorithm (created on demand)."""
        if name not in self._sessions:
            self._sessions[name] = SamplingSession(
                self.graph,
                lanes=ALGORITHM_LANES.get(name, 1),
                seed=self._rng,
                engine=self.config.engine,
                workers=self.config.workers,
                kernel=self.config.kernel,
            )
        else:
            self.samples_reused += self._sessions[name].total_samples
        return self._sessions[name]

    @property
    def samples_drawn(self) -> int:
        """Total samples drawn through the bank's sessions so far."""
        return sum(s.samples_drawn for s in self._sessions.values())

    def close(self) -> None:
        """Release every session's engines; idempotent."""
        for session in self._sessions.values():
            session.close()

    def __enter__(self) -> "SessionBank":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def build_sampling_algorithm(
    name: str, eps: float, config: ExperimentConfig, seed, session=None
):
    """Construct one of the paper's sampling algorithms from a config.

    With ``config.telemetry`` set, each algorithm gets a private
    in-memory :class:`repro.obs.Telemetry` hub, so its run records
    land in ``GBCResult.diagnostics["telemetry"]``.  ``session``
    attaches an external (bank-owned) session for warm-started sweeps.
    """
    sampling = {
        "engine": config.engine,
        "workers": config.workers,
        "kernel": config.kernel,
        "telemetry": Telemetry() if config.telemetry else None,
        "session": session,
    }
    if name == "HEDGE":
        return Hedge(
            eps=eps,
            gamma=config.gamma,
            seed=seed,
            max_samples=config.max_samples,
            **sampling,
        )
    if name == "CentRa":
        return CentRa(
            eps=eps,
            gamma=config.gamma,
            seed=seed,
            max_samples=config.max_samples,
            **sampling,
        )
    if name == "AdaAlg":
        return AdaAlg(eps=eps, gamma=config.gamma, seed=seed, **sampling)
    raise ParameterError(f"unknown sampling algorithm {name!r}")


def load_dataset(name: str, config: ExperimentConfig) -> CSRGraph:
    """Materialize a dataset with the config's master seed."""
    return load(name, seed=config.seed, giant_only=True)


class DatasetContext:
    """Per-dataset shared state for the quality experiments.

    Holds two sample pools drawn once:

    * the **holdout** set, used only to grade groups
      (:meth:`evaluate`) — never seen by any algorithm;
    * the **reference pool**, on which :meth:`exhaust_group` runs the
      greedy to produce the EXHAUST yardstick group for each K.
    """

    def __init__(self, graph: CSRGraph, config: ExperimentConfig, seed=None):
        self.graph = graph
        self.config = config
        rng = as_generator(config.seed if seed is None else seed)
        rng_eval, rng_pool = spawn(rng, 2)
        self._holdout = self._draw(graph, rng_eval, config.eval_samples)
        self._pool = self._draw(graph, rng_pool, config.exhaust_samples)
        self._exhaust_cache: dict[int, list[int]] = {}

    def _draw(self, graph: CSRGraph, rng, count: int) -> CoverageInstance:
        instance = CoverageInstance(graph.n)
        with create_engine(
            self.config.engine,
            graph,
            seed=rng,
            include_endpoints=True,
            workers=self.config.workers,
            kernel=self.config.kernel,
        ) as engine:
            engine.extend(instance, count)
        return instance

    # ------------------------------------------------------------------
    def exhaust_group(self, k: int) -> list[int]:
        """The EXHAUST yardstick group for size ``k`` (cached)."""
        if k not in self._exhaust_cache:
            self._exhaust_cache[k] = greedy_max_cover(self._pool, k).group
        return self._exhaust_cache[k]

    def evaluate(self, group) -> float:
        """Estimate (or exactly compute) ``B(group)``."""
        if self.config.quality_mode == "exact":
            return exact_gbc(self.graph, group)
        fraction = self._holdout.coverage_fraction(group)
        return fraction * self.graph.num_ordered_pairs

    def evaluate_normalized(self, group) -> float:
        """``B(group) / n(n-1)`` on the holdout (or exactly)."""
        pairs = self.graph.num_ordered_pairs
        return self.evaluate(group) / pairs if pairs else 0.0


def aggregate(values: list[float]) -> tuple[float, float]:
    """``(mean, max)`` of a non-empty list."""
    if not values:
        raise ParameterError("cannot aggregate an empty list")
    return statistics.fmean(values), max(values)
