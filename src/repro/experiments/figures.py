"""The paper's Figures 1–5 as runnable experiments.

Every ``run_figN`` function executes the corresponding experiment grid
and returns a :class:`FigureResult` whose rows are exactly the series
the paper plots; ``FigureResult.render()`` prints them as a table.
Absolute values differ from the paper (scaled datasets, Python
substrate) but the *shapes* under test are listed in DESIGN.md §5 and
asserted by the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from .._rng import as_generator, spawn
from ..coverage import CoverageInstance, greedy_max_cover
from ..engine import create_engine
from .harness import (
    SAMPLING_ALGORITHMS,
    DatasetContext,
    ExperimentConfig,
    SessionBank,
    build_sampling_algorithm,
    load_dataset,
)
from .report import render_series

__all__ = [
    "FigureResult",
    "engine_meta",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_eps_sweep",
]


def engine_meta(config: ExperimentConfig) -> dict:
    """Provenance entries recording which engine produced a figure."""
    return {
        "engine": config.engine,
        "workers": config.workers,
        "kernel": config.kernel,
        "telemetry": config.telemetry,
        "reuse_sessions": config.reuse_sessions,
    }


@dataclass
class FigureResult:
    """Rows of one reproduced figure (see the module docstring)."""

    name: str
    title: str
    headers: list[str]
    rows: list[list]
    #: Run provenance (execution engine, workers, ...); carried through
    #: the JSON exporter so artifacts record how they were produced.
    meta: dict = field(default_factory=dict)

    def render(self) -> str:
        """The figure as a printable table."""
        return render_series(f"{self.name}: {self.title}", self.headers, self.rows)

    def column(self, header: str) -> list:
        """All values of one column, in row order."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def filtered(self, **criteria) -> list[list]:
        """Rows whose named columns equal the given values."""
        idxs = {self.headers.index(h): v for h, v in criteria.items()}
        return [
            row for row in self.rows if all(row[i] == v for i, v in idxs.items())
        ]


# ----------------------------------------------------------------------
# Figure 1 — convergence of the relative error beta
# ----------------------------------------------------------------------
def run_fig1(config: ExperimentConfig, ks: Sequence[int] = (50, 100)) -> FigureResult:
    """Average/maximum relative error ``beta`` vs sample count ``L``.

    For each simulation, two independent sample sets S and T grow to
    each checkpoint ``L``; the greedy group found on S gives the biased
    estimate, T the unbiased one, and ``beta = 1 - unbiased/biased``
    (paper Sec. VI-B, Fig. 1).
    """
    rows: list[list] = []
    for dataset in config.datasets:
        graph = load_dataset(dataset, config)
        pairs = graph.num_ordered_pairs
        master = as_generator(config.seed + 1)
        for k in ks:
            if k > graph.n:
                continue
            betas: dict[int, list[float]] = {
                length: [] for length in config.fig1_lengths
            }
            for _ in range(config.fig1_simulations):
                rng_s, rng_t = spawn(master, 2)
                # with-managed so neither engine's workers leak if the
                # other's construction or an extend raises mid-figure
                with create_engine(
                    config.engine,
                    graph,
                    seed=rng_s,
                    workers=config.workers,
                    kernel=config.kernel,
                ) as engine_s, create_engine(
                    config.engine,
                    graph,
                    seed=rng_t,
                    workers=config.workers,
                    kernel=config.kernel,
                ) as engine_t:
                    selection = CoverageInstance(graph.n)
                    validation = CoverageInstance(graph.n)
                    for length in sorted(config.fig1_lengths):
                        engine_s.extend(selection, length)
                        engine_t.extend(validation, length)
                        cover = greedy_max_cover(selection, k)
                        biased = cover.covered / selection.num_paths * pairs
                        unbiased = (
                            validation.covered_count(cover.group)
                            / validation.num_paths
                            * pairs
                        )
                        if biased > 0:
                            betas[length].append(1.0 - unbiased / biased)
            for length in sorted(config.fig1_lengths):
                values = betas[length]
                if not values:
                    continue
                avg = sum(values) / len(values)
                rows.append([dataset, k, length, avg, max(values)])
    return FigureResult(
        name="Figure 1",
        title="relative error beta between biased and unbiased estimates vs L",
        headers=["dataset", "K", "L", "beta_avg", "beta_max"],
        rows=rows,
        meta=engine_meta(config),
    )


# ----------------------------------------------------------------------
# Figures 2 & 3 — solution quality (normalized GBC)
# ----------------------------------------------------------------------
def _quality_rows(config: ExperimentConfig, cells):
    """Shared driver for the quality figures: per cell, the holdout-graded
    normalized GBC of EXHAUST (shared pool) and each sampling algorithm
    (averaged over repetitions), plus AdaAlg's ratio to EXHAUST."""
    rows = []
    samples_reused = 0
    for dataset in config.datasets:
        graph = load_dataset(dataset, config)
        context = DatasetContext(graph, config)
        master = as_generator(config.seed + 2)
        bank = SessionBank(graph, config) if config.reuse_sessions else None
        try:
            for k, eps in cells:
                if k > graph.n:
                    continue
                exhaust_norm = context.evaluate_normalized(context.exhaust_group(k))
                means = {}
                for name in SAMPLING_ALGORITHMS:
                    total = 0.0
                    for _ in range(config.repetitions):
                        algorithm = build_sampling_algorithm(
                            name, eps, config, master,
                            session=bank.session_for(name) if bank else None,
                        )
                        result = algorithm.run(graph, k)
                        total += context.evaluate_normalized(result.group)
                    means[name] = total / config.repetitions
                ratio = means["AdaAlg"] / exhaust_norm if exhaust_norm else 0.0
                rows.append(
                    [
                        dataset,
                        k,
                        eps,
                        exhaust_norm,
                        *(means[name] for name in SAMPLING_ALGORITHMS),
                        ratio,
                    ]
                )
        finally:
            if bank is not None:
                samples_reused += bank.samples_reused
                bank.close()
    headers = [
        "dataset",
        "K",
        "eps",
        "norm_EXHAUST",
        *(f"norm_{name}" for name in SAMPLING_ALGORITHMS),
        "ada_vs_exhaust",
    ]
    return headers, rows, samples_reused


def run_fig2(config: ExperimentConfig, eps: float = 0.3) -> FigureResult:
    """Normalized GBC of all four algorithms vs group size K (Fig. 2)."""
    cells = [(k, eps) for k in config.ks]
    headers, rows, reused = _quality_rows(config, cells)
    return FigureResult(
        name="Figure 2",
        title=f"normalized GBC vs K (eps={eps}, gamma={config.gamma})",
        headers=headers,
        rows=rows,
        meta={**engine_meta(config), "samples_reused": reused},
    )


def run_fig3(config: ExperimentConfig, k: int | None = None) -> FigureResult:
    """Normalized GBC of all four algorithms vs error ratio eps (Fig. 3)."""
    k = max(config.ks) if k is None else k
    cells = [(k, eps) for eps in config.eps_values]
    headers, rows, reused = _quality_rows(config, cells)
    return FigureResult(
        name="Figure 3",
        title=f"normalized GBC vs eps (K={k}, gamma={config.gamma})",
        headers=headers,
        rows=rows,
        meta={**engine_meta(config), "samples_reused": reused},
    )


# ----------------------------------------------------------------------
# Figures 4 & 5 — sample counts
# ----------------------------------------------------------------------
def _sample_rows(config: ExperimentConfig, cells):
    """Shared driver for the sample-count figures (no quality grading)."""
    rows = []
    samples_reused = 0
    for dataset in config.datasets:
        graph = load_dataset(dataset, config)
        master = as_generator(config.seed + 3)
        bank = SessionBank(graph, config) if config.reuse_sessions else None
        try:
            for k, eps in cells:
                if k > graph.n:
                    continue
                means = {}
                for name in SAMPLING_ALGORITHMS:
                    total = 0
                    for _ in range(config.repetitions):
                        algorithm = build_sampling_algorithm(
                            name, eps, config, master,
                            session=bank.session_for(name) if bank else None,
                        )
                        total += algorithm.run(graph, k).num_samples
                    means[name] = total / config.repetitions
                ratio = means["CentRa"] / means["AdaAlg"] if means["AdaAlg"] else 0.0
                rows.append(
                    [
                        dataset,
                        k,
                        eps,
                        *(means[name] for name in SAMPLING_ALGORITHMS),
                        ratio,
                    ]
                )
        finally:
            if bank is not None:
                samples_reused += bank.samples_reused
                bank.close()
    headers = [
        "dataset",
        "K",
        "eps",
        *(f"samples_{name}" for name in SAMPLING_ALGORITHMS),
        "centra_over_ada",
    ]
    return headers, rows, samples_reused


def run_fig4(config: ExperimentConfig, eps: float = 0.3) -> FigureResult:
    """Sample counts of the three sampling algorithms vs K (Fig. 4)."""
    cells = [(k, eps) for k in config.ks]
    headers, rows, reused = _sample_rows(config, cells)
    return FigureResult(
        name="Figure 4",
        title=f"number of samples vs K (eps={eps}, gamma={config.gamma})",
        headers=headers,
        rows=rows,
        meta={**engine_meta(config), "samples_reused": reused},
    )


def run_fig5(config: ExperimentConfig, ks: Sequence[int] | None = None) -> FigureResult:
    """Sample counts vs eps at the smallest/largest K (Fig. 5)."""
    if ks is None:
        ks = (min(config.ks), max(config.ks))
    cells = [(k, eps) for k in ks for eps in config.eps_values]
    headers, rows, reused = _sample_rows(config, cells)
    return FigureResult(
        name="Figure 5",
        title=f"number of samples vs eps (K in {tuple(ks)}, gamma={config.gamma})",
        headers=headers,
        rows=rows,
        meta={**engine_meta(config), "samples_reused": reused},
    )


# ----------------------------------------------------------------------
# Warm-start eps sweep — the session layer's headline saving
# ----------------------------------------------------------------------
def run_eps_sweep(
    config: ExperimentConfig,
    k: int | None = None,
    algorithm: str = "AdaAlg",
) -> FigureResult:
    """Samples drawn across an eps sweep, cold vs warm-started.

    Runs the same descending-eps sweep twice from the same master seed:
    once with a fresh session per cell (cold — the historical behavior)
    and once through one persistent :class:`SessionBank` session (warm —
    each cell extends the pool the previous cells grew).  The sampler
    distribution is eps-independent, so the warm pool is monotone and
    the warm sweep draws strictly fewer paths; the per-cell split and
    the aggregate saving land in the rows and ``meta``.
    """
    k = min(config.ks) if k is None else k
    eps_sweep = sorted(config.eps_values, reverse=True)
    rows: list[list] = []
    cold_total = 0
    warm_total = 0
    reused_total = 0
    for dataset in config.datasets:
        graph = load_dataset(dataset, config)
        if k > graph.n:
            continue
        cold_drawn: dict[float, int] = {}
        master = as_generator(config.seed + 5)
        for eps in eps_sweep:
            alg = build_sampling_algorithm(algorithm, eps, config, master)
            result = alg.run(graph, k)
            cold_drawn[eps] = result.diagnostics["session"]["samples_drawn"]
        master = as_generator(config.seed + 5)
        with SessionBank(graph, config, seed=master) as bank:
            for eps in eps_sweep:
                session = bank.session_for(algorithm)
                before = session.samples_drawn
                alg = build_sampling_algorithm(
                    algorithm, eps, config, master, session=session
                )
                alg.run(graph, k)
                warm_drawn = session.samples_drawn - before
                rows.append([dataset, k, eps, cold_drawn[eps], warm_drawn])
                cold_total += cold_drawn[eps]
                warm_total += warm_drawn
            reused_total += bank.samples_reused
    saved = cold_total - warm_total
    return FigureResult(
        name="Eps sweep",
        title=f"samples drawn per eps cell, cold vs warm ({algorithm}, K={k})",
        headers=["dataset", "K", "eps", "samples_cold", "samples_warm"],
        rows=rows,
        meta={
            **engine_meta(config),
            "algorithm": algorithm,
            "samples_cold": cold_total,
            "samples_warm": warm_total,
            "samples_saved": saved,
            "samples_reused": reused_total,
            "saving_fraction": saved / cold_total if cold_total else 0.0,
        },
    )
