"""Random-number-generator plumbing shared by the whole package.

Every randomized component in :mod:`repro` accepts a ``seed`` argument
that may be ``None`` (fresh OS entropy), an integer, or an existing
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes all
three into a `Generator`, and :func:`spawn` derives independent child
generators so that parallel components never share a stream.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

from .exceptions import ParameterError

#: Anything a ``seed=`` parameter accepts anywhere in the package.
SeedLike: TypeAlias = (
    "int | np.random.Generator | np.random.SeedSequence | None"
)


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None``, an ``int``, a ``SeedSequence``, or an
    existing ``Generator`` (returned unchanged so that callers can share
    a stream deliberately).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(rng: np.random.Generator, count: int) -> list[int]:
    """Derive ``count`` independent child *seeds* from ``rng``.

    The integer form exists for components that must ship a seed across
    a process boundary (generators do not pickle compactly); feeding
    each value to :func:`numpy.random.default_rng` yields the same
    children :func:`spawn` would produce.
    """
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [int(s) for s in seeds]


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses the generator's own bit stream to seed children, which keeps
    the derivation reproducible for a seeded parent.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(rng, count)]


def stream_entropy(rng: np.random.Generator) -> int:
    """One entropy word drawn from ``rng``, keying an *indexed* family
    of child streams (see :func:`indexed_seed`).

    Unlike :func:`spawn_seeds`, which hands out children sequentially
    from the parent stream, an entropy word fixes the whole family at
    once: child ``i`` is addressable without having derived children
    ``0..i-1`` first.  That is what lets the epoch engine dispatch
    epochs speculatively and still replay any suffix after a resume.
    """
    return spawn_seeds(rng, 1)[0]


def indexed_seed(entropy: int, index: int) -> int:
    """The child seed of stream ``index`` in the family keyed by
    ``entropy``.

    Built on :class:`numpy.random.SeedSequence` spawn keys, so distinct
    indices yield statistically independent streams and the mapping
    ``(entropy, index) -> seed`` is a pure function — the anchor of the
    epoch engine's worker-count-independent determinism.
    """
    if index < 0:
        raise ParameterError(f"stream index must be non-negative, got {index}")
    sequence = np.random.SeedSequence(entropy=int(entropy), spawn_key=(int(index),))
    return int(sequence.generate_state(1, np.uint64)[0])
