"""The :class:`SamplingSession` driver — growing sample pools as state.

AdaAlg's core trick (paper Sec. III-C) is that the *same* growing
sample set is reused across adaptive iterations.  A session makes that
pool first-class: it owns one or more ``(engine, store)`` *lanes*
(AdaAlg keeps two — the selection set S and the validation set T;
HEDGE/CentRa/EXHAUST keep one), serves ``extend`` requests against
them, and can freeze the whole arrangement to disk and thaw it later
**bit-identically** — same stores, same engine RNG states, so the
continued sample stream is exactly what the uninterrupted run would
have drawn.

The algorithms are stopping-rule policies over this driver: they decide
*how far* to extend and *when* to stop, the session decides nothing —
it acquires, accounts, and persists.

Checkpoint files are single ``.npz`` archives holding every lane's
:class:`~repro.session.SampleStore` arrays plus a JSON ``meta`` blob:
graph fingerprint, engine provenance, per-lane RNG states, the draw
schedule, and an arbitrary ``state`` payload the owning algorithm uses
for its loop variables.  See ``docs/architecture.md`` for the format
and its compatibility caveats.
"""

from __future__ import annotations

import json

import numpy as np

from .._rng import as_generator, spawn
from ..engine import SampleEngine, create_engine
from ..exceptions import CheckpointError, ParameterError
from ..graph.csr import CSRGraph
from ..obs import as_telemetry
from ..paths._dispatch import is_weighted
from .store import SampleStore, _atomic_savez

__all__ = ["SamplingSession", "CHECKPOINT_FORMAT", "CHECKPOINT_VERSION"]

CHECKPOINT_FORMAT = "repro-session-checkpoint"
CHECKPOINT_VERSION = 1


def _graph_fingerprint(graph: CSRGraph) -> dict:
    """A light identity check for resume-time validation.

    Covers mmap-loaded graphs too: :func:`repro.graph.mmap.load_graph`
    returns a regular :class:`CSRGraph`/``WeightedCSRGraph`` whose
    ``n``/``m``/``directed``/weightedness describe the mapped arrays,
    so a checkpoint taken on an in-memory graph resumes cleanly on the
    same graph spilled to an mmap directory — and a *different* mapped
    graph is rejected like any other mismatch.
    """
    return {
        "n": int(graph.n),
        "m": int(graph.num_edges),
        "directed": bool(graph.directed),
        "weighted": is_weighted(graph),
    }


def _describe_graph(graph: CSRGraph, fingerprint: dict) -> str:
    """A human-readable fingerprint, naming the mmap source if any."""
    text = json.dumps(fingerprint, sort_keys=True)
    if graph.mmap_source is not None:
        text += f" (mmap: {graph.mmap_source})"
    return text


class SamplingSession:
    """Owns the engines and stores one algorithm run draws through.

    Parameters
    ----------
    graph:
        The network being sampled.
    lanes:
        Number of independent ``(engine, store)`` pairs.  Each lane's
        engine gets its own child stream spawned from ``seed`` — in the
        same order :class:`~repro.algorithms.SamplingAlgorithm` used to
        spawn engines directly, so seeded runs are unchanged.
    seed:
        Master seed (or a shared :class:`numpy.random.Generator`) the
        lane streams are derived from.
    engine, method, include_endpoints, workers, kernel, cache_sources,
    epoch_size, delta:
        Engine configuration, recorded as provenance in checkpoints
        (``epoch_size`` only applies to the ``"epoch"`` engine,
        ``delta`` to weighted-graph cohort kernels; ``None`` keeps the
        defaults).
    telemetry:
        A :class:`~repro.obs.Telemetry` hub; the session reports
        ``session.*`` counters (samples drawn/reused, extend calls,
        checkpoints, restores) and ``checkpoint``/``restore`` spans,
        and wires the same hub into its engines.
    debug:
        Forwarded to the engines (per-draw invariant validation) and to
        the lane stores, whose escaping views and exported arrays are
        then returned with ``writeable=False`` (the runtime sanitizer
        backing the static RPR202 rule).
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        lanes: int = 1,
        seed=None,
        engine: str = "serial",
        method: str = "bidirectional",
        include_endpoints: bool = True,
        workers: int | None = None,
        kernel: str = "wavefront",
        cache_sources: int = 0,
        epoch_size: int | None = None,
        delta: int | None = None,
        telemetry=None,
        debug: bool = False,
    ):
        if lanes < 1:
            raise ParameterError(f"a session needs at least one lane, got {lanes}")
        self.graph = graph
        self.telemetry = as_telemetry(telemetry)
        self.debug = bool(debug)
        self.provenance = {
            "engine": engine,
            "method": method,
            "include_endpoints": bool(include_endpoints),
            "workers": workers,
            "kernel": kernel,
            "cache_sources": int(cache_sources),
            "epoch_size": epoch_size,
            "delta": delta,
        }
        self.engines: list[SampleEngine] = []
        try:
            for child in spawn(as_generator(seed), lanes):
                self.engines.append(
                    create_engine(
                        engine,
                        graph,
                        seed=child,
                        method=method,
                        include_endpoints=include_endpoints,
                        workers=workers,
                        kernel=kernel,
                        cache_sources=cache_sources,
                        epoch_size=epoch_size,
                        delta=delta,
                        telemetry=self.telemetry,
                        debug=debug,
                    )
                )
        except BaseException:
            # a later lane failing must not leak earlier lanes' worker
            # processes or shared-memory blocks
            for built in self.engines:
                built.close()
            raise
        self.stores: list[SampleStore] = [
            SampleStore(graph.n, debug=self.debug) for _ in range(lanes)
        ]
        #: Whether this session was thawed from a checkpoint.
        self.resumed = False
        #: Checkpoints written across the session's whole lineage
        #: (restored counts included).
        self.checkpoints_written = 0
        #: Samples drawn through *this* process's session object —
        #: excludes anything already present at attach/resume time.
        self.samples_drawn = 0
        #: Graph version of the session's current graph; bumped by
        #: every migrated update (:meth:`apply_update` / :meth:`migrate`).
        self.graph_version = 0

    # ------------------------------------------------------------------
    @property
    def lanes(self) -> int:
        """Number of ``(engine, store)`` pairs."""
        return len(self.engines)

    @property
    def total_samples(self) -> int:
        """Samples held across all lanes (reused + drawn)."""
        return sum(store.num_paths for store in self.stores)

    def store(self, lane: int = 0) -> SampleStore:
        """The sample store of one lane."""
        return self.stores[lane]

    def extend(self, upto: int, lane: int = 0) -> int:
        """Grow lane ``lane`` to hold ``upto`` samples; returns the
        number actually drawn (0 when the store already suffices —
        the monotone-reuse path of warm-started sweeps)."""
        store = self.stores[lane]
        before = store.num_paths
        self.engines[lane].extend(store, upto)
        drawn = store.num_paths - before
        if drawn:
            # record the size actually reached, not the request: epoch
            # engines round extends up to the next epoch boundary, and
            # warm-started sweeps must reuse what is really there
            store.record_extend(int(store.num_paths))
            self.samples_drawn += drawn
            self.telemetry.count("session.samples_drawn", drawn)
        self.telemetry.count("session.extend_calls", 1)
        return drawn

    def flush_coverage(self) -> None:
        """Fold any outstanding CSR-rebuild counters of the stores into
        their engines' stats (rebuilds triggered by greedy passes after
        the last extend would otherwise go unreported)."""
        for engine, store in zip(self.engines, self.stores):
            engine._flush_coverage(store)

    # ------------------------------------------------------------------
    # dynamic-graph updates
    # ------------------------------------------------------------------
    def apply_update(self, update, *, touch_radius: int = 1) -> dict:
        """Apply one :class:`~repro.graph.delta.GraphUpdate` to the
        session's graph and migrate every lane onto the compacted
        result; returns the :meth:`migrate` stats dict.

        The update runs through a fresh
        :class:`~repro.graph.delta.DeltaGraph` overlay (validated op by
        op, compacted immediately), so after this call the session is
        again backed by a contiguous CSR every engine can traverse.
        """
        from ..graph.delta import DeltaGraph  # local import avoids a cycle

        delta = DeltaGraph(
            self.graph, touch_radius=touch_radius, telemetry=self.telemetry
        )
        touched = delta.apply(update)
        return self.migrate(delta.compact(), touched)

    def migrate(self, new_graph: CSRGraph, touched_nodes) -> dict:
        """Move the session onto ``new_graph``, invalidating every
        stored path that traversed ``touched_nodes``.

        The node universe must be unchanged (the stores index into it
        by id).  Every lane's engine is rebuilt on the new graph from
        the recorded provenance with its RNG state carried over, so the
        surviving pool plus the continued stream stay bit-identically
        checkpointable.  Returns a stats dict with the new ``version``,
        the ``touched`` frontier size, the number of ``invalidated``
        paths, and the ``surviving`` pool size.
        """
        if new_graph.n != self.graph.n:
            raise ParameterError(
                f"cannot migrate a session across node universes "
                f"({self.graph.n} -> {new_graph.n}); graph updates mutate "
                "edges, never nodes"
            )
        # capture the stream positions first: mid-epoch engines refuse
        # to snapshot, and we must not have torn anything down yet
        rng_states = [engine.rng_state() for engine in self.engines]
        provenance = self.provenance
        new_engines: list[SampleEngine] = []
        try:
            for child_state in rng_states:
                engine = create_engine(
                    provenance["engine"],
                    new_graph,
                    seed=0,  # placeholder stream, overwritten below
                    method=provenance["method"],
                    include_endpoints=provenance["include_endpoints"],
                    workers=provenance["workers"],
                    kernel=provenance["kernel"],
                    cache_sources=provenance["cache_sources"],
                    epoch_size=provenance["epoch_size"],
                    delta=provenance["delta"],
                    telemetry=self.telemetry,
                    debug=self.debug,
                )
                engine.set_rng_state(child_state)
                new_engines.append(engine)
        except BaseException:
            for built in new_engines:
                built.close()
            raise
        for engine in self.engines:
            engine.close()
        self.engines = new_engines
        self.graph = new_graph
        self.graph_version += 1
        invalidated = 0
        for store in self.stores:
            invalidated += store.invalidate(touched_nodes)
            store.graph_version = self.graph_version
        touched = np.unique(np.asarray(touched_nodes, dtype=np.int64))
        if invalidated:
            self.telemetry.count("store.invalidated", invalidated)
        self.telemetry.event(
            "session.update",
            version=self.graph_version,
            touched=int(touched.size),
            invalidated=invalidated,
            surviving=self.total_samples,
        )
        return {
            "version": self.graph_version,
            "touched": int(touched.size),
            "invalidated": invalidated,
            "surviving": self.total_samples,
        }

    # ------------------------------------------------------------------
    def checkpoint(self, path: str, state: dict | None = None) -> str:
        """Freeze every lane (stores + RNG states) and ``state`` to
        ``path``; returns ``path``.  Atomic — an existing file is
        replaced only once the new snapshot is fully written."""
        self.flush_coverage()
        self.checkpoints_written += 1
        meta = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "lanes": self.lanes,
            "graph": _graph_fingerprint(self.graph),
            "provenance": dict(self.provenance),
            "rng_states": [engine.rng_state() for engine in self.engines],
            "num_paths": [store.num_paths for store in self.stores],
            "checkpoints": self.checkpoints_written,
            "graph_version": self.graph_version,
            "state": state,
        }
        arrays = {"meta": np.asarray(json.dumps(meta))}
        for lane, store in enumerate(self.stores):
            for key, value in store.export_arrays().items():
                arrays[f"lane{lane}_{key}"] = value
        with self.telemetry.span("checkpoint", path=path, lanes=self.lanes):
            _atomic_savez(path, **arrays)
        self.telemetry.count("session.checkpoints", 1)
        return path

    @staticmethod
    def peek(path: str) -> dict:
        """The JSON ``meta`` blob of a checkpoint, without the arrays.

        Lets callers (the CLI ``resume`` command) learn which
        algorithm, parameters, and graph produced a checkpoint before
        committing to loading it.
        """
        try:
            with np.load(path, allow_pickle=False) as payload:
                meta = json.loads(str(payload["meta"]))
        except (OSError, KeyError, ValueError) as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}")
        if meta.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(f"{path!r} is not a session checkpoint")
        if meta.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {meta.get('version')!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return meta

    @classmethod
    def resume(
        cls,
        path: str,
        graph: CSRGraph,
        *,
        telemetry=None,
        debug: bool = False,
    ) -> tuple["SamplingSession", dict | None]:
        """Thaw a checkpoint against ``graph``; returns
        ``(session, state)`` where ``state`` is the algorithm payload
        stored at checkpoint time.

        The graph must match the recorded fingerprint (node count,
        edge count, directedness) — the stores index into it by node
        id, so resuming on a different graph would silently corrupt
        results.  Engines are rebuilt from the recorded provenance and
        their RNG states restored, so the continued stream is
        bit-identical to the uninterrupted run's.
        """
        hub = as_telemetry(telemetry)
        with hub.span("restore", path=path):
            meta = cls.peek(path)
            fingerprint = _graph_fingerprint(graph)
            recorded = meta["graph"]
            # pre-"weighted" checkpoints recorded fewer keys; compare on
            # what the checkpoint knows so old files stay resumable
            if {k: v for k, v in fingerprint.items() if k in recorded} != recorded:
                raise CheckpointError(
                    f"graph fingerprint mismatch: checkpoint {path!r} was "
                    f"taken on {json.dumps(recorded, sort_keys=True)} but "
                    f"resume was attempted on "
                    f"{_describe_graph(graph, fingerprint)}; the stores "
                    "index nodes of the original graph, so resuming here "
                    "would corrupt results"
                )
            provenance = meta["provenance"]
            session = cls(
                graph,
                lanes=meta["lanes"],
                seed=0,  # placeholder streams, overwritten below
                engine=provenance["engine"],
                method=provenance["method"],
                include_endpoints=provenance["include_endpoints"],
                workers=provenance["workers"],
                kernel=provenance["kernel"],
                cache_sources=provenance["cache_sources"],
                # absent in pre-epoch / pre-delta checkpoints — defaults
                epoch_size=provenance.get("epoch_size"),
                delta=provenance.get("delta"),
                telemetry=hub,
                debug=debug,
            )
            try:
                with np.load(path, allow_pickle=False) as payload:
                    stores = [
                        SampleStore.from_arrays(
                            graph.n,
                            {
                                key: payload[f"lane{lane}_{key}"]
                                # versions/fingerprints are absent in
                                # pre-dynamic-graph checkpoints
                                for key in ("flat", "offsets", "degrees",
                                            "schedule", "versions",
                                            "fingerprints")
                                if f"lane{lane}_{key}" in payload.files
                            },
                            debug=debug,
                        )
                        for lane in range(meta["lanes"])
                    ]
            except (OSError, KeyError, ValueError) as exc:
                session.close()
                raise CheckpointError(
                    f"cannot load checkpoint {path!r}: {exc}"
                )
            for engine, store, rng_state, expected in zip(
                session.engines, stores, meta["rng_states"], meta["num_paths"]
            ):
                if store.num_paths != expected:
                    session.close()
                    raise CheckpointError(
                        "corrupt checkpoint: lane path-count mismatch"
                    )
                engine.set_rng_state(rng_state)
            session.stores = stores
            session.resumed = True
            session.checkpoints_written = int(meta.get("checkpoints", 0))
            session.graph_version = int(meta.get("graph_version", 0))
            for store in session.stores:
                store.graph_version = session.graph_version
        hub.count("session.restores", 1)
        return session, meta.get("state")

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release every lane's engine resources; idempotent."""
        for engine in self.engines:
            engine.close()

    def __enter__(self) -> "SamplingSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SamplingSession(lanes={self.lanes}, "
            f"engine={self.provenance['engine']!r}, "
            f"samples={self.total_samples}, resumed={self.resumed})"
        )
