"""The persistent half of a sampling session: :class:`SampleStore`.

A :class:`~repro.coverage.CoverageInstance` is the in-memory incidence
between sampled paths and nodes; a :class:`SampleStore` is the same
structure *promoted to first-class, persistable state*.  It remembers
the draw schedule that grew it (the sequence of ``extend`` targets) and
serializes to a single ``.npz`` snapshot that also carries the engine
RNG state and provenance needed to resume the stream bit-identically:

* the flat path arrays (``flat``, ``offsets``, ``degrees``) — the
  append-only sample pool itself;
* per-path dynamic-graph provenance: the ``versions`` array records
  which graph version each path was drawn under, and ``fingerprints``
  packs each path's node set into a 64-bit Bloom word
  (``OR of 1 << (node % 64)``) so :meth:`invalidate` can reject
  untouched paths without gathering their node segments;
* the ``schedule`` of extend targets served so far;
* a JSON ``meta`` blob: node-universe size, the engine's
  :meth:`~repro.engine.SampleEngine.rng_state`, and the engine
  provenance (engine/kernel/method/endpoint convention) the samples
  were drawn under.

The arrays are integers, so a save→load round trip is exact: coverage
queries, greedy runs, and continued draws on the loaded store behave
bit-identically to the original.  Snapshots are written atomically
(temp file + rename), so a crash mid-save never corrupts an existing
checkpoint.
"""

from __future__ import annotations

import json
import os
import tempfile

import numpy as np

from ..coverage.hypergraph import CoverageInstance, _grow
from ..exceptions import CheckpointError, ParameterError

__all__ = ["SampleStore", "STORE_FORMAT", "STORE_VERSION"]

STORE_FORMAT = "repro-sample-store"
STORE_VERSION = 1

_WORD = np.uint64(64)
_ONE = np.uint64(1)


def _atomic_savez(path: str, **arrays) -> None:
    """Write ``np.savez_compressed(path, **arrays)`` atomically."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(suffix=".npz.tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _node_fingerprints(flat: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """One packed 64-bit Bloom word per path segment of ``flat``."""
    count = int(lengths.size)
    fingerprints = np.zeros(count, dtype=np.uint64)
    if flat.size:
        bits = _ONE << (flat.astype(np.uint64) % _WORD)
        owner = np.repeat(np.arange(count, dtype=np.int64), lengths)
        np.bitwise_or.at(fingerprints, owner, bits)
    return fingerprints


def _checked_array(
    arrays: dict, key: str, dtype, *, length: int | None = None,
    required: bool = True
) -> np.ndarray | None:
    """Fetch ``arrays[key]`` validated as a 1-D integer array.

    Raises :class:`~repro.exceptions.CheckpointError` naming the
    offending field on a missing key, non-1-D shape, non-integer
    dtype, or (when ``length`` is given) a length mismatch — instead
    of letting a later numpy broadcast fail opaquely.  Exact-width
    integer inputs are cast to the canonical ``dtype``.
    """
    if key not in arrays:
        if not required:
            return None
        raise CheckpointError(f"store snapshot field {key!r}: missing")
    value = np.asarray(arrays[key])
    if value.ndim != 1:
        raise CheckpointError(
            f"store snapshot field {key!r}: expected a 1-D array, got "
            f"shape {value.shape}"
        )
    if not np.issubdtype(value.dtype, np.integer):
        raise CheckpointError(
            f"store snapshot field {key!r}: expected an integer dtype, "
            f"got {value.dtype}"
        )
    if length is not None and value.size != length:
        raise CheckpointError(
            f"store snapshot field {key!r}: expected length {length}, "
            f"got {value.size}"
        )
    return value.astype(dtype, copy=False)


class SampleStore(CoverageInstance):
    """An append-only, serializable pool of sampled paths.

    Everything a :class:`~repro.coverage.CoverageInstance` can do, plus
    the persistence layer described in the module docstring and
    dynamic-graph awareness: every appended path is stamped with the
    store's current :attr:`graph_version` and a packed node-set
    fingerprint, and :meth:`invalidate` drops exactly the paths whose
    node sets intersect a touched-nodes frontier.  The four sampling
    algorithms operate on stores through a
    :class:`~repro.session.SamplingSession`, which owns the pairing of
    each store with the engine whose stream filled it.
    """

    def __init__(self, num_nodes: int, *, debug: bool = False):
        super().__init__(num_nodes, debug=debug)
        #: Extend targets served so far, in order — the draw schedule
        #: provenance a snapshot carries.
        self.draw_schedule: list[int] = []
        #: Graph version newly appended paths are stamped with; the
        #: owning session bumps it after every migrated update.
        self.graph_version = 0
        # per-path provenance, parallel to the offsets segments
        self._versions = np.zeros(64, dtype=np.int64)
        self._fingerprints = np.zeros(64, dtype=np.uint64)

    # ------------------------------------------------------------------
    # appends stamp versions + fingerprints
    # ------------------------------------------------------------------
    def add_path(self, nodes) -> int:
        pid = super().add_path(nodes)
        segment = self._flat[self._offsets[pid] : self._offsets[pid + 1]]
        self._versions = _grow(self._versions, pid + 1)
        self._versions[pid] = self.graph_version
        self._fingerprints = _grow(self._fingerprints, pid + 1)
        if segment.size:
            bits = _ONE << (segment.astype(np.uint64) % _WORD)
            self._fingerprints[pid] = np.bitwise_or.reduce(bits)
        else:
            self._fingerprints[pid] = 0
        return pid

    def add_paths_packed(self, flat: np.ndarray, offsets: np.ndarray) -> None:
        before = self._num_paths
        super().add_paths_packed(flat, offsets)
        count = self._num_paths - before
        if count == 0:
            return
        self._versions = _grow(self._versions, self._num_paths)
        self._versions[before : self._num_paths] = self.graph_version
        lengths = np.diff(self._offsets[before : self._num_paths + 1])
        segment = self._flat[self._offsets[before] : self._flat_len]
        self._fingerprints = _grow(self._fingerprints, self._num_paths)
        self._fingerprints[before : self._num_paths] = _node_fingerprints(
            segment, lengths
        )

    def path_version(self, pid: int) -> int:
        """The graph version path ``pid`` was drawn under."""
        if not 0 <= pid < self._num_paths:
            raise IndexError(f"path id {pid} out of range")
        return int(self._versions[pid])

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def remove_paths(self, drop: np.ndarray) -> int:
        count = self._num_paths
        dropped = super().remove_paths(drop)
        if dropped:
            keep = ~np.asarray(drop, dtype=bool)
            versions = self._versions[:count][keep]
            fingerprints = self._fingerprints[:count][keep]
            self._versions = _grow(
                np.zeros(64, dtype=np.int64), versions.size
            )
            self._versions[: versions.size] = versions
            self._fingerprints = _grow(
                np.zeros(64, dtype=np.uint64), fingerprints.size
            )
            self._fingerprints[: fingerprints.size] = fingerprints
        return dropped

    def invalidate(self, touched_nodes) -> int:
        """Drop every stored path whose node set intersects
        ``touched_nodes``; returns the number of paths dropped.

        The test is exact: the packed fingerprints only pre-reject
        paths that cannot intersect the frontier (their Bloom words
        are disjoint), and the survivors of that filter are checked
        with one vectorized membership gather over the flat arrays.
        Untouched paths are never dropped.  The draw schedule is reset
        to the surviving pool size so later extends append monotone
        targets again.
        """
        touched = np.unique(np.asarray(touched_nodes, dtype=np.int64))
        if touched.size == 0 or self._num_paths == 0:
            return 0
        if touched[0] < 0 or touched[-1] >= self.num_nodes:
            bad = int(touched[0]) if touched[0] < 0 else int(touched[-1])
            raise ParameterError(
                f"touched node {bad} outside the 0..{self.num_nodes - 1} "
                "universe"
            )
        frontier_word = np.bitwise_or.reduce(
            _ONE << (touched.astype(np.uint64) % _WORD)
        )
        candidates = (
            self._fingerprints[: self._num_paths] & frontier_word
        ) != 0
        if not bool(candidates.any()):
            return 0
        mask = np.zeros(self.num_nodes, dtype=bool)
        mask[touched] = True
        lengths = np.diff(self._offsets[: self._num_paths + 1])
        owner = np.repeat(
            np.arange(self._num_paths, dtype=np.int64), lengths
        )
        hit = mask[self._flat[: self._flat_len]]
        drop = np.zeros(self._num_paths, dtype=bool)
        drop[owner[hit]] = True
        drop &= candidates  # the Bloom filter has no false negatives
        dropped = self.remove_paths(drop)
        if dropped:
            self.draw_schedule = (
                [int(self._num_paths)] if self._num_paths else []
            )
        return dropped

    # ------------------------------------------------------------------
    def record_extend(self, target: int) -> None:
        """Append one served extend target to the draw schedule."""
        self.draw_schedule.append(int(target))

    def export_arrays(self) -> dict[str, np.ndarray]:
        """The store's content as compact, copy-safe arrays.

        Under ``debug=True`` the exported arrays are additionally
        returned with ``writeable=False`` (they are private copies
        either way, but the read-only flag catches callers that treat a
        snapshot as scratch space and then feed it back to
        :meth:`from_arrays`).
        """
        arrays = {
            "flat": self._flat[: self._flat_len].copy(),
            "offsets": self._offsets[: self._num_paths + 1].copy(),
            "degrees": self._degrees.copy(),
            "schedule": np.asarray(self.draw_schedule, dtype=np.int64),
            "versions": self._versions[: self._num_paths].copy(),
            "fingerprints": self._fingerprints[: self._num_paths].copy(),
        }
        if self.debug:
            for array in arrays.values():
                array.setflags(write=False)
        return arrays

    @classmethod
    def from_arrays(
        cls, num_nodes: int, arrays: dict, *, debug: bool = False
    ) -> "SampleStore":
        """Rebuild a store from :meth:`export_arrays` output.

        Every field is validated against the expected dtype family,
        dimensionality, and length before any array is adopted; a
        mismatch raises :class:`~repro.exceptions.CheckpointError`
        naming the offending field.  ``versions`` and ``fingerprints``
        are optional for pre-dynamic-graph snapshots: absent versions
        default to 0 and fingerprints are recomputed from the flat
        arrays.
        """
        store = cls(int(num_nodes), debug=debug)
        flat = _checked_array(arrays, "flat", np.int64)
        offsets = _checked_array(arrays, "offsets", np.int64)
        if offsets.size < 1 or offsets[0] != 0 or offsets[-1] != flat.size:
            raise CheckpointError(
                "store snapshot field 'offsets': must start at 0 and end "
                f"at len(flat)={flat.size}"
            )
        if np.any(np.diff(offsets) < 0):
            raise CheckpointError(
                "store snapshot field 'offsets': must be non-decreasing"
            )
        num_paths = int(offsets.size - 1)
        degrees = _checked_array(
            arrays, "degrees", np.int64, length=store.num_nodes
        )
        schedule = _checked_array(arrays, "schedule", np.int64, required=False)
        versions = _checked_array(
            arrays, "versions", np.int64, length=num_paths, required=False
        )
        fingerprints = _checked_array(
            arrays, "fingerprints", np.uint64, length=num_paths,
            required=False,
        )
        capacity = max(64, int(flat.size))
        store._flat = np.empty(capacity, dtype=np.int64)
        store._flat[: flat.size] = flat
        store._flat_len = int(flat.size)
        store._offsets = np.zeros(max(64, offsets.size), dtype=np.int64)
        store._offsets[: offsets.size] = offsets
        store._num_paths = num_paths
        # copy: the input may be a read-only debug export, and sharing a
        # writable buffer with the caller would alias future appends
        store._degrees = degrees.copy()
        store.draw_schedule = (
            [int(t) for t in schedule] if schedule is not None else []
        )
        store._versions = np.zeros(max(64, num_paths), dtype=np.int64)
        if versions is not None:
            store._versions[:num_paths] = versions
        store._fingerprints = np.zeros(max(64, num_paths), dtype=np.uint64)
        if fingerprints is not None:
            store._fingerprints[:num_paths] = fingerprints
        else:
            store._fingerprints[:num_paths] = _node_fingerprints(
                flat, np.diff(offsets)
            )
        if versions is not None and num_paths:
            store.graph_version = int(store._versions[:num_paths].max())
        return store

    # ------------------------------------------------------------------
    def save(self, path: str, *, rng_state=None, provenance=None) -> None:
        """Snapshot the store (and its stream context) to ``path``.

        ``rng_state`` is the owning engine's
        :meth:`~repro.engine.SampleEngine.rng_state` at the moment of
        the snapshot; ``provenance`` records how the samples were drawn
        (engine name, kernel, method, endpoint convention, ...).  Both
        are optional for bare pools but required for bit-identical
        resumption of a live session.
        """
        meta = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "num_nodes": self.num_nodes,
            "num_paths": self.num_paths,
            "graph_version": self.graph_version,
            "rng_state": rng_state,
            "provenance": provenance,
        }
        _atomic_savez(
            path,
            meta=np.asarray(json.dumps(meta)),
            **self.export_arrays(),
        )

    @classmethod
    def load(cls, path: str) -> tuple["SampleStore", dict]:
        """Load a snapshot; returns ``(store, meta)``.

        ``meta`` carries the ``rng_state`` and ``provenance`` recorded
        at save time (both ``None`` for bare pools).
        """
        try:
            with np.load(path, allow_pickle=False) as payload:
                meta = json.loads(str(payload["meta"]))
                if meta.get("format") != STORE_FORMAT:
                    raise CheckpointError(
                        f"{path!r} is not a sample-store snapshot"
                    )
                if meta.get("version") != STORE_VERSION:
                    raise CheckpointError(
                        f"unsupported store snapshot version "
                        f"{meta.get('version')!r} (expected {STORE_VERSION})"
                    )
                arrays = {
                    key: payload[key]
                    for key in ("flat", "offsets", "degrees", "schedule",
                                "versions", "fingerprints")
                    if key in payload.files
                }
                store = cls.from_arrays(meta["num_nodes"], arrays)
        except CheckpointError:
            raise
        except (OSError, KeyError, ValueError) as exc:
            raise CheckpointError(f"cannot load store snapshot {path!r}: {exc}")
        if store.num_paths != meta["num_paths"]:
            raise CheckpointError(
                "corrupt store snapshot: path count mismatch "
                f"({store.num_paths} != {meta['num_paths']})"
            )
        store.graph_version = int(meta.get("graph_version", store.graph_version))
        return store, meta
