"""The persistent half of a sampling session: :class:`SampleStore`.

A :class:`~repro.coverage.CoverageInstance` is the in-memory incidence
between sampled paths and nodes; a :class:`SampleStore` is the same
structure *promoted to first-class, persistable state*.  It remembers
the draw schedule that grew it (the sequence of ``extend`` targets) and
serializes to a single ``.npz`` snapshot that also carries the engine
RNG state and provenance needed to resume the stream bit-identically:

* the flat path arrays (``flat``, ``offsets``, ``degrees``) — the
  append-only sample pool itself;
* the ``schedule`` of extend targets served so far;
* a JSON ``meta`` blob: node-universe size, the engine's
  :meth:`~repro.engine.SampleEngine.rng_state`, and the engine
  provenance (engine/kernel/method/endpoint convention) the samples
  were drawn under.

The arrays are integers, so a save→load round trip is exact: coverage
queries, greedy runs, and continued draws on the loaded store behave
bit-identically to the original.  Snapshots are written atomically
(temp file + rename), so a crash mid-save never corrupts an existing
checkpoint.
"""

from __future__ import annotations

import json
import os
import tempfile

import numpy as np

from ..coverage.hypergraph import CoverageInstance
from ..exceptions import CheckpointError

__all__ = ["SampleStore", "STORE_FORMAT", "STORE_VERSION"]

STORE_FORMAT = "repro-sample-store"
STORE_VERSION = 1


def _atomic_savez(path: str, **arrays) -> None:
    """Write ``np.savez_compressed(path, **arrays)`` atomically."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(suffix=".npz.tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class SampleStore(CoverageInstance):
    """An append-only, serializable pool of sampled paths.

    Everything a :class:`~repro.coverage.CoverageInstance` can do, plus
    the persistence layer described in the module docstring.  The four
    sampling algorithms operate on stores through a
    :class:`~repro.session.SamplingSession`, which owns the pairing of
    each store with the engine whose stream filled it.
    """

    def __init__(self, num_nodes: int, *, debug: bool = False):
        super().__init__(num_nodes, debug=debug)
        #: Extend targets served so far, in order — the draw schedule
        #: provenance a snapshot carries.
        self.draw_schedule: list[int] = []

    # ------------------------------------------------------------------
    def record_extend(self, target: int) -> None:
        """Append one served extend target to the draw schedule."""
        self.draw_schedule.append(int(target))

    def export_arrays(self) -> dict[str, np.ndarray]:
        """The store's content as compact, copy-safe arrays.

        Under ``debug=True`` the exported arrays are additionally
        returned with ``writeable=False`` (they are private copies
        either way, but the read-only flag catches callers that treat a
        snapshot as scratch space and then feed it back to
        :meth:`from_arrays`).
        """
        arrays = {
            "flat": self._flat[: self._flat_len].copy(),
            "offsets": self._offsets[: self._num_paths + 1].copy(),
            "degrees": self._degrees.copy(),
            "schedule": np.asarray(self.draw_schedule, dtype=np.int64),
        }
        if self.debug:
            for array in arrays.values():
                array.setflags(write=False)
        return arrays

    @classmethod
    def from_arrays(
        cls, num_nodes: int, arrays: dict, *, debug: bool = False
    ) -> "SampleStore":
        """Rebuild a store from :meth:`export_arrays` output."""
        store = cls(int(num_nodes), debug=debug)
        flat = np.asarray(arrays["flat"], dtype=np.int64)
        offsets = np.asarray(arrays["offsets"], dtype=np.int64)
        degrees = np.asarray(arrays["degrees"], dtype=np.int64)
        if offsets.size < 1 or offsets[0] != 0 or offsets[-1] != flat.size:
            raise CheckpointError("corrupt store snapshot: bad offsets")
        if degrees.size != store.num_nodes:
            raise CheckpointError(
                f"store snapshot is for a {degrees.size}-node universe, "
                f"not {store.num_nodes}"
            )
        capacity = max(64, int(flat.size))
        store._flat = np.empty(capacity, dtype=np.int64)
        store._flat[: flat.size] = flat
        store._flat_len = int(flat.size)
        store._offsets = np.zeros(max(64, offsets.size), dtype=np.int64)
        store._offsets[: offsets.size] = offsets
        store._num_paths = int(offsets.size - 1)
        # copy: the input may be a read-only debug export, and sharing a
        # writable buffer with the caller would alias future appends
        store._degrees = degrees.copy()
        store.draw_schedule = [
            int(t) for t in np.asarray(arrays.get("schedule", ()), dtype=np.int64)
        ]
        return store

    # ------------------------------------------------------------------
    def save(self, path: str, *, rng_state=None, provenance=None) -> None:
        """Snapshot the store (and its stream context) to ``path``.

        ``rng_state`` is the owning engine's
        :meth:`~repro.engine.SampleEngine.rng_state` at the moment of
        the snapshot; ``provenance`` records how the samples were drawn
        (engine name, kernel, method, endpoint convention, ...).  Both
        are optional for bare pools but required for bit-identical
        resumption of a live session.
        """
        meta = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "num_nodes": self.num_nodes,
            "num_paths": self.num_paths,
            "rng_state": rng_state,
            "provenance": provenance,
        }
        _atomic_savez(
            path,
            meta=np.asarray(json.dumps(meta)),
            **self.export_arrays(),
        )

    @classmethod
    def load(cls, path: str) -> tuple["SampleStore", dict]:
        """Load a snapshot; returns ``(store, meta)``.

        ``meta`` carries the ``rng_state`` and ``provenance`` recorded
        at save time (both ``None`` for bare pools).
        """
        try:
            with np.load(path, allow_pickle=False) as payload:
                meta = json.loads(str(payload["meta"]))
                if meta.get("format") != STORE_FORMAT:
                    raise CheckpointError(
                        f"{path!r} is not a sample-store snapshot"
                    )
                if meta.get("version") != STORE_VERSION:
                    raise CheckpointError(
                        f"unsupported store snapshot version "
                        f"{meta.get('version')!r} (expected {STORE_VERSION})"
                    )
                store = cls.from_arrays(
                    meta["num_nodes"],
                    {key: payload[key] for key in
                     ("flat", "offsets", "degrees", "schedule")},
                )
        except CheckpointError:
            raise
        except (OSError, KeyError, ValueError) as exc:
            raise CheckpointError(f"cannot load store snapshot {path!r}: {exc}")
        if store.num_paths != meta["num_paths"]:
            raise CheckpointError(
                "corrupt store snapshot: path count mismatch "
                f"({store.num_paths} != {meta['num_paths']})"
            )
        return store, meta
