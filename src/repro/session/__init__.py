"""Resumable sampling sessions (``repro.session``).

The layer between the execution engines and the sampling algorithms:
a :class:`SampleStore` is a serializable, append-only pool of sampled
paths (a :class:`~repro.coverage.CoverageInstance` promoted to
persistable state, snapshot format documented in
``docs/architecture.md``), and a :class:`SamplingSession` drives one
or more ``(engine, store)`` lanes, exposing ``extend`` /
``checkpoint`` / ``resume``.  The four sampling algorithms are
stopping-rule policies over a session; the experiments harness reuses
sessions across sweep cells (warm starts) and the CLI checkpoints and
resumes long runs through the same seam.
"""

from .session import CHECKPOINT_FORMAT, CHECKPOINT_VERSION, SamplingSession
from .store import STORE_FORMAT, STORE_VERSION, SampleStore

__all__ = [
    "SampleStore",
    "SamplingSession",
    "STORE_FORMAT",
    "STORE_VERSION",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
]
