"""Execution engines for shortest-path sampling.

All sampling algorithms draw their paths through a
:class:`~repro.engine.base.SampleEngine`, selected by name:

``serial``
    One traversal per sample (with the historical large-draw batch
    shortcut) — the default, matching seeded runs from before the
    engine layer existed.
``batch``
    Always route through the source-grouped amortized batch sampler.
``process``
    Fan chunks of samples out to a pool of worker processes; results
    are bit-identical across worker counts for a fixed seed.
"""

from __future__ import annotations

from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from .base import EngineStats, SampleEngine, coverage_nodes
from .pool import ProcessPoolEngine
from .serial import BatchEngine, SerialEngine

__all__ = [
    "EngineStats",
    "SampleEngine",
    "SerialEngine",
    "BatchEngine",
    "ProcessPoolEngine",
    "ENGINES",
    "create_engine",
    "coverage_nodes",
]

#: Name -> engine class registry used by ``create_engine`` and the CLI.
ENGINES: dict[str, type[SampleEngine]] = {
    SerialEngine.name: SerialEngine,
    BatchEngine.name: BatchEngine,
    ProcessPoolEngine.name: ProcessPoolEngine,
}


def create_engine(
    name: str,
    graph: CSRGraph,
    *,
    seed=None,
    method: str = "bidirectional",
    include_endpoints: bool = True,
    workers: int | None = None,
) -> SampleEngine:
    """Instantiate the engine registered under ``name``.

    ``workers`` only applies to the process engine; passing it with an
    in-process engine is accepted (and ignored) so callers can thread a
    single pair of knobs through unconditionally.
    """
    try:
        cls = ENGINES[name]
    except KeyError:
        known = ", ".join(sorted(ENGINES))
        raise ParameterError(f"unknown engine {name!r}; expected one of: {known}")
    kwargs = {
        "seed": seed,
        "method": method,
        "include_endpoints": include_endpoints,
    }
    if cls is ProcessPoolEngine:
        kwargs["workers"] = workers
    return cls(graph, **kwargs)
