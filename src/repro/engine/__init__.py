"""Execution engines for shortest-path sampling.

All sampling algorithms draw their paths through a
:class:`~repro.engine.base.SampleEngine`, selected by name:

``serial``
    One traversal per sample (with the historical large-draw batch
    shortcut) — the default, matching seeded runs from before the
    engine layer existed.
``batch``
    Serve every draw as one batch through the selected traversal
    kernel (wavefront cohorts by default).
``process``
    Fan chunks of samples out to a pool of worker processes over a
    shared-memory graph; results are bit-identical across worker
    counts for a fixed seed.
``epoch``
    Persistent worker loops sampling fixed-size epochs continuously
    (:class:`~repro.engine.epoch.EpochEngine`): one pickle per epoch,
    speculative lookahead, bulk coverage ingestion — bit-identical
    across worker counts for a fixed ``(seed, epoch_size)``.

The ``kernel`` knob (``wavefront`` / ``scalar`` / ``grouped``, see
:data:`~repro.engine.base.KERNELS`) selects how the batch, process,
and epoch engines traverse; ``cache_sources`` sizes the forward-BFS
tree cache.
"""

from __future__ import annotations

from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from ..obs import as_telemetry
from .base import (
    KERNELS,
    EngineStats,
    SampleEngine,
    cohort_kernel,
    coverage_nodes,
    resolve_kernel,
)
from .epoch import EpochEngine
from .pool import ProcessPoolEngine
from .serial import BatchEngine, SerialEngine
from .shm import SharedGraphBlocks, attach_graph
from .wire import PackedSamples, pack_samples, unpack_samples

__all__ = [
    "EngineStats",
    "SampleEngine",
    "SerialEngine",
    "BatchEngine",
    "ProcessPoolEngine",
    "EpochEngine",
    "PackedSamples",
    "pack_samples",
    "unpack_samples",
    "SharedGraphBlocks",
    "attach_graph",
    "ENGINES",
    "KERNELS",
    "create_engine",
    "coverage_nodes",
    "resolve_kernel",
    "cohort_kernel",
]

#: Name -> engine class registry used by ``create_engine`` and the CLI.
ENGINES: dict[str, type[SampleEngine]] = {
    SerialEngine.name: SerialEngine,
    BatchEngine.name: BatchEngine,
    ProcessPoolEngine.name: ProcessPoolEngine,
    EpochEngine.name: EpochEngine,
}


def create_engine(
    name: str,
    graph: CSRGraph,
    *,
    seed=None,
    method: str = "bidirectional",
    include_endpoints: bool = True,
    workers: int | None = None,
    kernel: str = "wavefront",
    cache_sources: int = 0,
    epoch_size: int | None = None,
    delta: int | None = None,
    telemetry=None,
    debug: bool = False,
) -> SampleEngine:
    """Instantiate the engine registered under ``name``.

    ``workers`` only applies to the process/epoch engines, ``kernel``
    and ``delta`` (the weighted delta-stepping bucket width,
    result-invariant) to the batch/process/epoch engines, and
    ``epoch_size`` to the epoch engine (``None`` keeps its default);
    passing them with other engines is accepted (and ignored) so
    callers can thread a single set of knobs through unconditionally.
    ``cache_sources`` applies everywhere.  ``telemetry`` attaches a
    :class:`~repro.obs.Telemetry` hub the engine reports draws to, and
    ``debug`` turns on the per-draw invariant validators
    (:mod:`repro.obs.invariants`).
    """
    try:
        cls = ENGINES[name]
    except KeyError:
        known = ", ".join(sorted(ENGINES))
        raise ParameterError(f"unknown engine {name!r}; expected one of: {known}")
    from ..graph.delta import DeltaGraph  # local import avoids a cycle

    if isinstance(graph, DeltaGraph):
        # traversal kernels need contiguous CSR arrays: engines run on
        # the last compacted snapshot, and as_graph() refuses to hand
        # out a stale one while uncompacted ops are pending
        graph = graph.as_graph()
    resolve_kernel(kernel, graph, method)  # reject unknown names early
    if epoch_size is not None and epoch_size < 1:
        raise ParameterError(f"epoch_size must be >= 1, got {epoch_size}")
    if delta is not None and delta < 1:
        raise ParameterError(f"delta must be >= 1, got {delta}")
    kwargs = {
        "seed": seed,
        "method": method,
        "include_endpoints": include_endpoints,
        "cache_sources": cache_sources,
    }
    if issubclass(cls, (BatchEngine, ProcessPoolEngine, EpochEngine)):
        kwargs["kernel"] = kernel
        kwargs["delta"] = delta
    if issubclass(cls, (ProcessPoolEngine, EpochEngine)):
        kwargs["workers"] = workers
    if issubclass(cls, EpochEngine) and epoch_size is not None:
        kwargs["epoch_size"] = epoch_size
    engine = cls(graph, **kwargs)
    engine.telemetry = as_telemetry(telemetry)
    engine.debug = bool(debug)
    return engine
