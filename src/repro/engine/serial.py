"""In-process engines: serial traversals, amortized and cohort batches.

:class:`SerialEngine` reproduces the historical behavior of the
algorithms' ``_extend`` plumbing bit-for-bit: small requests are served
one balanced traversal per sample, while requests of at least ``n``
samples switch to the source-grouped batch sampler (one full BFS per
distinct source).  :class:`BatchEngine` always batches, and carries the
``kernel`` knob: the default ``"wavefront"`` routes every draw through
a vectorized multi-query kernel — the level-synchronous bidirectional
BFS (:mod:`repro.paths.wavefront`) on unweighted graphs, the bucketed
delta-stepping cohort (:mod:`repro.paths.wavefront_weighted`) on
weighted ones — ``"scalar"`` runs the same cohort schedule one search
at a time (bit-identical samples), and ``"grouped"`` keeps the legacy
source-grouped amortization.
"""

from __future__ import annotations

from ..graph.csr import CSRGraph
from ..paths.sampler import PathSample, PathSampler
from .base import SampleEngine, cohort_kernel, resolve_kernel

__all__ = ["SerialEngine", "BatchEngine"]


class SerialEngine(SampleEngine):
    """One traversal per sample, with the historical large-draw shortcut.

    Draws of at least ``graph.n`` samples are served by the
    source-grouped amortized BFS (statistically identical, far fewer
    traversals) — exactly the heuristic the sampling algorithms used
    before the engine layer existed, so seeded runs are unchanged.
    """

    name = "serial"

    def __init__(
        self,
        graph: CSRGraph,
        seed=None,
        method: str = "bidirectional",
        include_endpoints: bool = True,
        cache_sources: int = 0,
    ):
        super().__init__(
            graph,
            seed=seed,
            method=method,
            include_endpoints=include_endpoints,
            cache_sources=cache_sources,
        )
        self._sampler = PathSampler(
            graph, seed=self._rng, method=method, cache_sources=cache_sources
        )

    def _use_batch(self, count: int) -> bool:
        return count >= self.graph.n

    def _draw_samples(self, count: int) -> list[PathSample]:
        if self._use_batch(count):
            self.stats.batches += 1
            return self._sampler.sample_batch(count)
        self.stats.batches += count
        return [self._sampler.sample() for _ in range(count)]

    def draw(self, count: int) -> list[PathSample]:
        self._check_count(count)
        sampler = self._sampler
        edges_before = sampler.total_edges_explored
        traversals_before = sampler.total_traversals
        hits_before = sampler.cache_hits
        misses_before = sampler.cache_misses
        cohorts_before = sampler.total_weighted_cohorts
        relaxations_before = sampler.total_bucket_relaxations
        samples = self._draw_samples(count)
        self.stats.samples += count
        self.stats.draw_calls += 1
        self.stats.traversals += sampler.total_traversals - traversals_before
        self.stats.edges_explored += sampler.total_edges_explored - edges_before
        self.stats.cache_hits += sampler.cache_hits - hits_before
        self.stats.cache_misses += sampler.cache_misses - misses_before
        self.stats.weighted_cohorts += (
            sampler.total_weighted_cohorts - cohorts_before
        )
        self.stats.bucket_relaxations += (
            sampler.total_bucket_relaxations - relaxations_before
        )
        return samples


class BatchEngine(SerialEngine):
    """Always batch; route draws through the selected traversal kernel.

    Parameters
    ----------
    kernel:
        ``"wavefront"`` (default) or ``"scalar"`` use the pair-first
        cohort schedule (bit-identical samples to each other) on both
        unweighted and weighted graphs; ``"grouped"`` keeps the legacy
        source-grouped amortized sampler.  Only the unweighted
        ``"forward"`` method still falls back to ``"grouped"`` (noted
        via the ``paths.kernel_fallbacks`` counter and a warning).
    cohort_size:
        Concurrent queries per wavefront cohort (``None`` = the
        kernel's default).
    delta:
        Bucket width of the weighted delta-stepping kernel
        (result-invariant; ``None`` auto-tunes from the mean edge
        weight).  Ignored on unweighted graphs.
    """

    name = "batch"

    def __init__(
        self,
        graph: CSRGraph,
        seed=None,
        method: str = "bidirectional",
        include_endpoints: bool = True,
        cache_sources: int = 0,
        kernel: str = "wavefront",
        cohort_size: int | None = None,
        delta: int | None = None,
    ):
        super().__init__(
            graph,
            seed=seed,
            method=method,
            include_endpoints=include_endpoints,
            cache_sources=cache_sources,
        )
        self.requested_kernel = kernel
        self.kernel = resolve_kernel(kernel, graph, method)
        self.cohort_size = cohort_size
        self.delta = delta

    def _use_batch(self, count: int) -> bool:
        return count > 0

    def _draw_samples(self, count: int) -> list[PathSample]:
        kernel = cohort_kernel(self.kernel, self.graph, self.method)
        if kernel is None or count == 0:
            if kernel is None and count and self.requested_kernel != "grouped":
                self._note_kernel_fallback(self.requested_kernel)
            return super()._draw_samples(count)
        self.stats.batches += 1
        return self._sampler.sample_cohort(
            count,
            kernel=kernel,
            cohort_size=self.cohort_size,
            delta=self.delta,
        )
