"""In-process engines: serial traversals and amortized batches.

:class:`SerialEngine` reproduces the historical behavior of the
algorithms' ``_extend`` plumbing bit-for-bit: small requests are served
one balanced traversal per sample, while requests of at least ``n``
samples switch to the source-grouped batch sampler (one full BFS per
distinct source).  :class:`BatchEngine` always takes the batch path —
the right default when every request is large (EXHAUST's fixed budget,
HEDGE's union-bound schedules).
"""

from __future__ import annotations

from ..graph.csr import CSRGraph
from ..paths.sampler import PathSample, PathSampler
from .base import SampleEngine

__all__ = ["SerialEngine", "BatchEngine"]


class SerialEngine(SampleEngine):
    """One traversal per sample, with the historical large-draw shortcut.

    Draws of at least ``graph.n`` samples are served by the
    source-grouped amortized BFS (statistically identical, far fewer
    traversals) — exactly the heuristic the sampling algorithms used
    before the engine layer existed, so seeded runs are unchanged.
    """

    name = "serial"

    def __init__(
        self,
        graph: CSRGraph,
        seed=None,
        method: str = "bidirectional",
        include_endpoints: bool = True,
    ):
        super().__init__(
            graph, seed=seed, method=method, include_endpoints=include_endpoints
        )
        self._sampler = PathSampler(graph, seed=self._rng, method=method)

    def _use_batch(self, count: int) -> bool:
        return count >= self.graph.n

    def draw(self, count: int) -> list[PathSample]:
        self._check_count(count)
        sampler = self._sampler
        edges_before = sampler.total_edges_explored
        traversals_before = sampler.total_traversals
        if self._use_batch(count):
            samples = sampler.sample_batch(count)
            self.stats.batches += 1
        else:
            samples = [sampler.sample() for _ in range(count)]
            self.stats.batches += count
        self.stats.samples += count
        self.stats.draw_calls += 1
        self.stats.traversals += sampler.total_traversals - traversals_before
        self.stats.edges_explored += sampler.total_edges_explored - edges_before
        return samples


class BatchEngine(SerialEngine):
    """Always amortize: every draw goes through the batch sampler."""

    name = "batch"

    def _use_batch(self, count: int) -> bool:
        return count > 0
