"""Zero-copy graph distribution via POSIX shared memory.

The process-pool engine used to pickle the CSR arrays into every
worker (once per worker under ``spawn``, copy-on-write under ``fork``).
This module replaces that with :mod:`multiprocessing.shared_memory`
blocks: the parent copies each immutable array into its own named
segment **once**, workers attach by name and wrap the buffers in numpy
arrays without copying — identical cost under ``fork`` and ``spawn``,
and independent of the worker count.

Lifecycle rules (see ``docs/performance.md``):

* the **parent** that created the blocks owns them — it must call
  :meth:`SharedGraphBlocks.close` (close + unlink) when the engine
  shuts down, including after a worker crash;
* **workers** only ever attach and close; they never unlink.  The
  attach path deliberately bypasses Python's ``resource_tracker``
  registration: the tracker would otherwise unlink segments it does
  not own when the first worker exits, yanking the graph out from
  under its siblings.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.weighted import WeightedCSRGraph

__all__ = ["SharedGraphBlocks", "attach_graph"]


class SharedGraphBlocks:
    """Owner-side handle on the shared-memory copy of a graph.

    Creating the object copies every array from
    :meth:`~repro.graph.csr.CSRGraph.export_arrays` into its own
    named segment.  :attr:`spec` is the small picklable description a
    worker needs to re-attach; :meth:`close` releases everything and
    is idempotent (safe to call from ``close()`` *and* ``__del__``).
    """

    def __init__(self, graph: CSRGraph):
        self._blocks: list[shared_memory.SharedMemory] = []
        arrays = {}
        try:
            for key, array in graph.export_arrays().items():
                block = shared_memory.SharedMemory(
                    create=True, size=max(array.nbytes, 1)
                )
                self._blocks.append(block)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
                view[...] = array
                arrays[key] = (block.name, array.shape, array.dtype.str)
        except BaseException:
            self.close()
            raise
        self.spec = {
            "arrays": arrays,
            "directed": graph.directed,
            "weighted": isinstance(graph, WeightedCSRGraph),
        }

    def block_names(self) -> list[str]:
        """Segment names currently held (for leak checks in tests)."""
        return [block.name for block in self._blocks]

    def close(self) -> None:
        """Close and unlink every segment; idempotent."""
        blocks, self._blocks = self._blocks, []
        for block in blocks:
            try:
                block.close()
                block.unlink()
            except FileNotFoundError:  # already unlinked elsewhere
                pass

    def __del__(self):  # pragma: no cover - belt-and-braces cleanup
        self.close()


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker registration.

    ``SharedMemory(name, create=False)`` registers the segment with the
    per-process ``resource_tracker``, which unlinks everything it knows
    about at interpreter exit — wrong for a worker that merely borrows
    the parent's segment.  The standard workaround is to suppress
    registration for the duration of the attach (the segment kind is
    ``"shared_memory"``; every other resource registers normally).
    """
    original = resource_tracker.register

    def _skip(resource_name, rtype):
        if rtype != "shared_memory":
            original(resource_name, rtype)

    resource_tracker.register = _skip
    try:
        return shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = original


def attach_graph(spec: dict) -> tuple[CSRGraph, list[shared_memory.SharedMemory]]:
    """Worker-side: rebuild the graph on top of shared buffers.

    Returns ``(graph, handles)``; the caller must keep ``handles``
    alive as long as the graph is in use (the numpy arrays are views
    into those buffers) and ``close()`` — never ``unlink()`` — them
    when done.
    """
    handles: list[shared_memory.SharedMemory] = []
    arrays: dict[str, np.ndarray] = {}
    try:
        for key, (name, shape, dtype) in spec["arrays"].items():
            block = _attach_block(name)
            handles.append(block)
            arrays[key] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)
    except BaseException:
        for block in handles:
            block.close()
        raise
    cls = WeightedCSRGraph if spec["weighted"] else CSRGraph
    return cls.from_arrays(arrays, directed=spec["directed"]), handles
