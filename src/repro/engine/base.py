"""The :class:`SampleEngine` protocol — the package's sampling substrate.

Every path-sampling algorithm (AdaAlg, HEDGE, CentRa, EXHAUST) needs
the same primitive: *draw ``count`` independent uniform shortest-path
samples and fold them into a coverage instance*.  The engine layer
isolates that primitive behind one interface so the execution strategy
— serial traversals, source-grouped batches, or a pool of worker
processes — is a runtime knob instead of per-algorithm code.

The contract every engine honors:

* ``draw(count)`` returns ``count`` i.i.d. samples from the paper's
  uniform shortest-path law (Sec. III-D) — engines differ in *how*
  the traversals are executed, never in the sampled distribution;
* a fixed construction seed makes the engine's sample sequence
  deterministic, and :class:`~repro.engine.pool.ProcessPoolEngine`
  is additionally deterministic *across worker counts* (see its
  docstring for the chunked sub-stream scheme);
* ``extend(instance, upto)`` applies the endpoint convention
  (``include_endpoints``) and appends to a
  :class:`~repro.coverage.CoverageInstance` — the plumbing that used
  to live on ``SamplingAlgorithm``;
* ``stats`` exposes the work counters (samples, traversals, batches,
  arcs, worker utilization) that algorithms surface in
  ``GBCResult.diagnostics``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from .._rng import as_generator
from ..coverage.hypergraph import CoverageInstance
from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from ..paths.sampler import PathSample

__all__ = ["EngineStats", "SampleEngine", "coverage_nodes"]


def coverage_nodes(sample: PathSample, include_endpoints: bool) -> np.ndarray:
    """Path nodes that count as covering, per the endpoint convention."""
    if sample.is_null or include_endpoints:
        return sample.nodes
    return sample.nodes[1:-1]


@dataclass
class EngineStats:
    """Work counters of one engine instance.

    Attributes
    ----------
    samples:
        Total path samples drawn.
    draw_calls:
        Number of ``draw`` invocations served.
    traversals:
        Graph traversals executed (a source-grouped batch serves many
        samples per traversal, so this can be far below ``samples``).
    batches:
        Work units dispatched: amortized-BFS batches for the batch
        path, chunks for the process pool, one per sample serially.
    edges_explored:
        Total arcs touched across all traversals.
    workers:
        Worker processes backing the engine (0 = in-process).
    worker_samples:
        Samples served per worker process id — the utilization
        breakdown for the parallel engine (empty when in-process).
    """

    samples: int = 0
    draw_calls: int = 0
    traversals: int = 0
    batches: int = 0
    edges_explored: int = 0
    workers: int = 0
    worker_samples: dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """A JSON-friendly copy for ``GBCResult.diagnostics``."""
        return {
            "samples": self.samples,
            "draw_calls": self.draw_calls,
            "traversals": self.traversals,
            "batches": self.batches,
            "edges_explored": self.edges_explored,
            "workers": self.workers,
            "worker_samples": dict(self.worker_samples),
        }


class SampleEngine(abc.ABC):
    """Abstract sampling engine: ``draw(count) -> list[PathSample]``.

    Parameters
    ----------
    graph:
        The network to sample from.
    seed:
        Anything accepted by :func:`repro._rng.as_generator`; the
        engine's whole sample sequence is a pure function of it.
    method:
        Traversal method forwarded to
        :class:`~repro.paths.sampler.PathSampler`.
    include_endpoints:
        Endpoint convention applied by :meth:`extend`.
    """

    #: Registry name, set by subclasses ("serial", "batch", "process").
    name: str = "abstract"

    def __init__(
        self,
        graph: CSRGraph,
        seed=None,
        method: str = "bidirectional",
        include_endpoints: bool = True,
    ):
        self.graph = graph
        self.method = method
        self.include_endpoints = include_endpoints
        self._rng = as_generator(seed)
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def draw(self, count: int) -> list[PathSample]:
        """Draw ``count`` independent uniform shortest-path samples."""

    def extend(self, instance: CoverageInstance, upto: int) -> None:
        """Grow ``instance`` to hold ``upto`` samples.

        Applies the engine's endpoint convention to every drawn path;
        a no-op when the instance already holds enough samples.
        """
        missing = upto - instance.num_paths
        if missing <= 0:
            return
        for sample in self.draw(missing):
            instance.add_path(coverage_nodes(sample, self.include_endpoints))

    def close(self) -> None:
        """Release engine resources (worker processes); idempotent."""

    # ------------------------------------------------------------------
    def __enter__(self) -> "SampleEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(graph={self.graph!r}, method={self.method!r})"

    # ------------------------------------------------------------------
    def _check_count(self, count: int) -> None:
        if count < 0:
            raise ParameterError("sample count must be non-negative")
