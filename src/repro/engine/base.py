"""The :class:`SampleEngine` protocol — the package's sampling substrate.

Every path-sampling algorithm (AdaAlg, HEDGE, CentRa, EXHAUST) needs
the same primitive: *draw ``count`` independent uniform shortest-path
samples and fold them into a coverage instance*.  The engine layer
isolates that primitive behind one interface so the execution strategy
— serial traversals, source-grouped batches, or a pool of worker
processes — is a runtime knob instead of per-algorithm code.

The contract every engine honors:

* ``draw(count)`` returns ``count`` i.i.d. samples from the paper's
  uniform shortest-path law (Sec. III-D) — engines differ in *how*
  the traversals are executed, never in the sampled distribution;
* a fixed construction seed makes the engine's sample sequence
  deterministic, and :class:`~repro.engine.pool.ProcessPoolEngine`
  is additionally deterministic *across worker counts* (see its
  docstring for the chunked sub-stream scheme);
* ``extend(instance, upto)`` applies the endpoint convention
  (``include_endpoints``) and appends to a
  :class:`~repro.coverage.CoverageInstance` — the plumbing that used
  to live on ``SamplingAlgorithm``;
* ``stats`` exposes the work counters (samples, traversals, batches,
  arcs, worker utilization) that algorithms surface in
  ``GBCResult.diagnostics``.
"""

from __future__ import annotations

import abc
import warnings
import weakref
from dataclasses import dataclass, field

import numpy as np

from .._rng import as_generator
from ..coverage.hypergraph import CoverageInstance
from ..exceptions import CheckpointError, ParameterError
from ..graph.csr import CSRGraph
from ..obs import NULL_TELEMETRY, check_instance, check_sample
from ..paths._dispatch import is_weighted
from ..paths.sampler import PathSample

__all__ = [
    "EngineStats",
    "SampleEngine",
    "coverage_nodes",
    "KERNELS",
    "resolve_kernel",
    "cohort_kernel",
]

#: Traversal kernels an engine can route batched draws through.
#:
#: ``"wavefront"``
#:     Vectorized multi-query cohort search — the level-synchronous
#:     bidirectional BFS (:mod:`repro.paths.wavefront`) on unweighted
#:     graphs, the bucketed delta-stepping kernel
#:     (:mod:`repro.paths.wavefront_weighted`) on weighted ones; many
#:     queries advanced per numpy call either way.
#: ``"scalar"``
#:     The same pair-first cohort schedule, one scalar search
#:     (:func:`~repro.paths.bidirectional.bidirectional_search` /
#:     :func:`~repro.paths.dijkstra.dijkstra_sigma`) per query.
#:     Bit-identical samples to ``"wavefront"``.
#: ``"grouped"``
#:     The legacy source-grouped amortized batch sampler
#:     (:meth:`~repro.paths.sampler.PathSampler.sample_batch`) — a
#:     *different* (equally valid) restructuring of the draw order, so
#:     its concrete samples differ from the cohort kernels.
KERNELS = ("wavefront", "scalar", "grouped")

#: (requested kernel, method) pairs already warned about in this
#: process.  The *warning* is process-wide — a daemon building many
#: engines must not repeat it per engine — while the stats field and
#: the ``paths.kernel_fallbacks`` counter still tick once per engine.
_FALLBACK_WARNED: set[tuple[str, str]] = set()


def _reset_fallback_warnings() -> None:
    """Forget which kernel fallbacks were warned about (test hook)."""
    _FALLBACK_WARNED.clear()


def resolve_kernel(kernel: str, graph: CSRGraph, method: str) -> str:
    """Validate ``kernel`` and apply the automatic fallbacks.

    Both graph classes run the cohort kernels now — weighted graphs
    route ``"wavefront"``/``"scalar"`` through the delta-stepping
    cohort path instead of silently degrading.  The only remaining
    fallback is the unweighted ``"forward"`` method, which has no
    cohort schedule and degrades to ``"grouped"`` (engines surface
    that via the ``paths.kernel_fallbacks`` counter and a warning).
    Unknown names raise :class:`~repro.exceptions.ParameterError`.
    """
    if kernel not in KERNELS:
        known = ", ".join(KERNELS)
        raise ParameterError(
            f"unknown traversal kernel {kernel!r}; expected one of: {known}"
        )
    if kernel == "grouped":
        return "grouped"
    if is_weighted(graph):
        return kernel
    if method != "bidirectional":
        return "grouped"
    return kernel


def cohort_kernel(kernel: str, graph: CSRGraph, method: str) -> str | None:
    """The :meth:`~repro.paths.sampler.PathSampler.sample_cohort`
    kernel to use, or ``None`` when the draw must take the legacy
    grouped path."""
    resolved = resolve_kernel(kernel, graph, method)
    return None if resolved == "grouped" else resolved


def coverage_nodes(sample: PathSample, include_endpoints: bool) -> np.ndarray:
    """Path nodes that count as covering, per the endpoint convention."""
    if sample.is_null or include_endpoints:
        return sample.nodes
    return sample.nodes[1:-1]


@dataclass
class EngineStats:
    """Work counters of one engine instance.

    Attributes
    ----------
    samples:
        Total path samples drawn.
    draw_calls:
        Number of ``draw`` invocations served.
    traversals:
        Graph traversals executed (a source-grouped batch serves many
        samples per traversal, so this can be far below ``samples``).
    batches:
        Work units dispatched: amortized-BFS batches for the batch
        path, chunks for the process pool, epochs for the epoch
        engine, one per sample serially.
    epochs:
        Fixed-size sample epochs *ingested* into the stream, in index
        order (epoch engine only; 0 elsewhere).
    dispatches:
        Epoch tasks handed to workers — or run in-process when no
        workers back the engine.  Exceeds :attr:`epochs` by whatever
        speculative lookahead was discarded at close.
    edges_explored:
        Total arcs touched across all traversals.
    workers:
        Worker processes backing the engine (0 = in-process).
    worker_samples:
        Samples served per worker process id — the utilization
        breakdown for the parallel engine (empty when in-process).
    pool_startups:
        Worker-pool launches — stays at 1 across many ``draw`` /
        ``extend`` calls when the executor is reused correctly.
    cache_hits, cache_misses:
        Forward-BFS tree cache activity (``cache_sources`` knob);
        both zero when the cache is disabled.
    weighted_cohorts:
        Weighted cohort draws executed
        (:meth:`~repro.paths.sampler.PathSampler.sample_cohort` on a
        weighted graph); 0 on unweighted inputs.
    bucket_relaxations:
        Per-query level relaxation rounds of the weighted
        delta-stepping kernel — its main work counter (0 for the
        scalar kernel, which has no buckets).
    kernel_fallbacks:
        Requested cohort kernels that degraded to ``"grouped"``
        (at most 1 per engine; also warned about once).
    coverage_rebuilds, coverage_rebuilt_elements:
        Node→path CSR rebuilds of the coverage instances this engine
        extends, and the total flat-array elements re-argsorted by
        those rebuilds.  Every append→query transition pays one full
        rebuild (:class:`~repro.coverage.CoverageInstance`), so a
        regression in query batching shows up here first.
    """

    samples: int = 0
    draw_calls: int = 0
    traversals: int = 0
    batches: int = 0
    epochs: int = 0
    dispatches: int = 0
    edges_explored: int = 0
    workers: int = 0
    worker_samples: dict[int, int] = field(default_factory=dict)
    pool_startups: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    weighted_cohorts: int = 0
    bucket_relaxations: int = 0
    kernel_fallbacks: int = 0
    coverage_rebuilds: int = 0
    coverage_rebuilt_elements: int = 0

    def as_dict(self) -> dict:
        """A JSON-friendly copy for ``GBCResult.diagnostics``."""
        return {
            "samples": self.samples,
            "draw_calls": self.draw_calls,
            "traversals": self.traversals,
            "batches": self.batches,
            "epochs": self.epochs,
            "dispatches": self.dispatches,
            "edges_explored": self.edges_explored,
            "workers": self.workers,
            "worker_samples": dict(self.worker_samples),
            "pool_startups": self.pool_startups,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "weighted_cohorts": self.weighted_cohorts,
            "bucket_relaxations": self.bucket_relaxations,
            "kernel_fallbacks": self.kernel_fallbacks,
            "coverage_rebuilds": self.coverage_rebuilds,
            "coverage_rebuilt_elements": self.coverage_rebuilt_elements,
        }


class SampleEngine(abc.ABC):
    """Abstract sampling engine: ``draw(count) -> list[PathSample]``.

    Parameters
    ----------
    graph:
        The network to sample from.
    seed:
        Anything accepted by :func:`repro._rng.as_generator`; the
        engine's whole sample sequence is a pure function of it.
    method:
        Traversal method forwarded to
        :class:`~repro.paths.sampler.PathSampler`.
    include_endpoints:
        Endpoint convention applied by :meth:`extend`.
    cache_sources:
        Size of the forward-BFS tree cache forwarded to the engine's
        :class:`~repro.paths.sampler.PathSampler` instances (``0``
        disables caching, the default).

    Attributes
    ----------
    telemetry:
        The :class:`~repro.obs.Telemetry` hub :meth:`extend` reports
        to (spans around ``draw``, :class:`EngineStats` deltas as
        ``engine.*`` counters).  Defaults to the shared disabled hub;
        assign a live one (or pass ``telemetry=`` to
        :func:`~repro.engine.create_engine`) to collect.
    debug:
        When ``True``, :meth:`extend` validates every drawn sample
        against the graph and the coverage bookkeeping against a
        recount (:mod:`repro.obs.invariants`) — slow, opt-in.
    """

    #: Registry name, set by subclasses ("serial", "batch", "process").
    name: str = "abstract"

    def __init__(
        self,
        graph: CSRGraph,
        seed=None,
        method: str = "bidirectional",
        include_endpoints: bool = True,
        cache_sources: int = 0,
    ):
        if cache_sources < 0:
            raise ParameterError(
                f"cache_sources must be non-negative, got {cache_sources}"
            )
        self.graph = graph
        self.method = method
        self.include_endpoints = include_endpoints
        self.cache_sources = int(cache_sources)
        self._rng = as_generator(seed)
        self.stats = EngineStats()
        self.telemetry = NULL_TELEMETRY
        self.debug = False
        # per-instance high-water marks of the coverage rebuild
        # counters, so extend() can report deltas without double
        # counting when several instances share one engine
        self._coverage_seen: weakref.WeakKeyDictionary = (
            weakref.WeakKeyDictionary()
        )
        self._fallback_noted = False

    # ------------------------------------------------------------------
    def _note_kernel_fallback(self, requested: str) -> None:
        """Record — once per engine, at draw time, after telemetry is
        attached — that the requested cohort kernel degraded to the
        legacy grouped path, so fallbacks are observable instead of
        silent.  The stats field and counter tick for every engine; the
        ``RuntimeWarning`` is emitted at most once per process per
        (kernel, method) pair so long-lived daemons don't spam stderr.
        """
        if self._fallback_noted:
            return
        self._fallback_noted = True
        self.stats.kernel_fallbacks += 1
        self.telemetry.count("paths.kernel_fallbacks", 1)
        key = (requested, self.method)
        if key in _FALLBACK_WARNED:
            return
        _FALLBACK_WARNED.add(key)
        warnings.warn(
            f"traversal kernel {requested!r} has no cohort schedule for "
            f"method={self.method!r}; falling back to the 'grouped' sampler",
            RuntimeWarning,
            stacklevel=4,
        )

    # ------------------------------------------------------------------
    def rng_state(self) -> dict:
        """The engine's random-stream state, as a JSON-serializable dict.

        Every engine's sample sequence is a pure function of this state
        (the pool engine derives its per-chunk child seeds from the same
        stream), so capturing it at a draw boundary and restoring it
        with :meth:`set_rng_state` continues the sequence bit-identically
        — the contract :class:`~repro.session.SamplingSession`
        checkpoints rely on.
        """
        return self._rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`rng_state`.

        The engine must be backed by the same bit-generator type the
        state was captured from (``default_rng`` seeds always yield
        ``PCG64``); a mismatch raises
        :class:`~repro.exceptions.CheckpointError`.
        """
        current = self._rng.bit_generator.state.get("bit_generator")
        wanted = state.get("bit_generator") if isinstance(state, dict) else None
        if wanted != current:
            raise CheckpointError(
                f"cannot restore RNG state of bit generator {wanted!r} "
                f"into {current!r}"
            )
        self._rng.bit_generator.state = state

    def _flush_coverage(self, instance: CoverageInstance) -> None:
        """Fold the instance's rebuild-counter growth since the last
        flush into :attr:`stats` and the ``coverage.*`` telemetry."""
        prev_rebuilds, prev_elements = self._coverage_seen.get(instance, (0, 0))
        delta_rebuilds = instance.rebuilds - prev_rebuilds
        delta_elements = instance.rebuilt_elements - prev_elements
        if delta_rebuilds or delta_elements:
            self.stats.coverage_rebuilds += delta_rebuilds
            self.stats.coverage_rebuilt_elements += delta_elements
            self.telemetry.count("coverage.rebuilds", delta_rebuilds)
            self.telemetry.count("coverage.rebuilt_elements", delta_elements)
        self._coverage_seen[instance] = (
            instance.rebuilds,
            instance.rebuilt_elements,
        )

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def draw(self, count: int) -> list[PathSample]:
        """Draw ``count`` independent uniform shortest-path samples."""

    def extend(self, instance: CoverageInstance, upto: int) -> None:
        """Grow ``instance`` to hold ``upto`` samples.

        Applies the engine's endpoint convention to every drawn path;
        a no-op when the instance already holds enough samples.  The
        draw is reported to :attr:`telemetry` (a ``draw`` span plus
        ``engine.*`` counter deltas), and :attr:`debug` mode validates
        the samples and the instance bookkeeping.
        """
        # pick up CSR rebuilds triggered by queries since the last draw
        # (greedy passes run between extends) before appending more
        self._flush_coverage(instance)
        missing = upto - instance.num_paths
        if missing <= 0:
            return
        telemetry = self.telemetry
        stats = self.stats
        before = (
            stats.samples,
            stats.traversals,
            stats.edges_explored,
            stats.weighted_cohorts,
            stats.bucket_relaxations,
        )
        with telemetry.span("draw", engine=self.name, count=missing):
            samples = self.draw(missing)
        telemetry.count("engine.samples", stats.samples - before[0])
        telemetry.count("engine.draw_calls", 1)
        telemetry.count("engine.traversals", stats.traversals - before[1])
        telemetry.count("engine.edges_explored", stats.edges_explored - before[2])
        if stats.weighted_cohorts != before[3]:
            telemetry.count(
                "paths.weighted_cohorts", stats.weighted_cohorts - before[3]
            )
        if stats.bucket_relaxations != before[4]:
            telemetry.count(
                "paths.bucket_relaxations", stats.bucket_relaxations - before[4]
            )
        if self.debug:
            for sample in samples:
                check_sample(self.graph, sample)
        for sample in samples:
            instance.add_path(coverage_nodes(sample, self.include_endpoints))
        if self.debug:
            check_instance(instance)
        self._flush_coverage(instance)

    def close(self) -> None:
        """Release engine resources (worker processes); idempotent."""

    # ------------------------------------------------------------------
    def __enter__(self) -> "SampleEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(graph={self.graph!r}, method={self.method!r})"

    # ------------------------------------------------------------------
    def _check_count(self, count: int) -> None:
        if count < 0:
            raise ParameterError("sample count must be non-negative")
