"""Process-parallel sampling over a shared CSR graph.

Path sampling is embarrassingly parallel — samples are i.i.d. — so the
only design problems are *determinism* and *graph distribution*:

* **Determinism.**  Each ``draw`` request is split into fixed-size
  chunks, and every chunk receives its own child seed from the
  engine's master stream (:func:`repro._rng.spawn_seeds`) *in chunk
  order*.  Workers may finish chunks in any order, but results are
  reassembled by chunk index, so the sample sequence is a pure
  function of ``(seed, chunk_size)`` — bit-identical for 1, 2, or 8
  workers, and identical to the engine's own in-process fallback.
  This is the "almost no synchronization" recipe of van der Grinten
  et al.: workers share nothing but the immutable graph and their
  pre-assigned sub-streams.
* **Graph distribution.**  The immutable CSR arrays are shipped to
  each worker once, at pool start-up (under the default ``fork`` start
  method they are inherited copy-on-write; under ``spawn`` they are
  pickled once per worker, not per chunk).  Workers rebuild the graph
  in an initializer and reuse it for every chunk.

Environments that forbid subprocesses (locked-down sandboxes) degrade
gracefully: the engine falls back to executing the same chunk schedule
in-process, preserving results exactly and reporting ``workers=0`` in
its statistics.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor

from .._rng import spawn_seeds
from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from ..graph.weighted import WeightedCSRGraph
from ..paths.sampler import PathSample, PathSampler
from .base import SampleEngine

__all__ = ["ProcessPoolEngine"]

_DEFAULT_CHUNK = 1024

# Per-worker state, set once by the pool initializer.
_WORKER_GRAPH: CSRGraph | None = None
_WORKER_METHOD: str = "bidirectional"


def _graph_payload(graph: CSRGraph) -> dict:
    """The minimal picklable description of an immutable graph."""
    payload = {
        "indptr": graph.indptr,
        "indices": graph.indices,
        "directed": graph.directed,
    }
    if graph.directed:
        payload["rev_indptr"] = graph.rev_indptr
        payload["rev_indices"] = graph.rev_indices
    if isinstance(graph, WeightedCSRGraph):
        payload["weights"] = graph.weights
        if graph.directed:
            payload["rev_weights"] = graph.rev_weights
    return payload


def _rebuild_graph(payload: dict) -> CSRGraph:
    """Reconstruct the graph a worker samples from."""
    if "weights" in payload:
        return WeightedCSRGraph(
            payload["indptr"],
            payload["indices"],
            payload["weights"],
            directed=payload["directed"],
            rev_indptr=payload.get("rev_indptr"),
            rev_indices=payload.get("rev_indices"),
            rev_weights=payload.get("rev_weights"),
        )
    return CSRGraph(
        payload["indptr"],
        payload["indices"],
        directed=payload["directed"],
        rev_indptr=payload.get("rev_indptr"),
        rev_indices=payload.get("rev_indices"),
    )


def _init_worker(payload: dict, method: str) -> None:
    global _WORKER_GRAPH, _WORKER_METHOD
    _WORKER_GRAPH = _rebuild_graph(payload)
    _WORKER_METHOD = method


def _draw_chunk(seed: int, count: int):
    """Executed in a worker: one chunk of samples from its own stream."""
    sampler = PathSampler(_WORKER_GRAPH, seed=seed, method=_WORKER_METHOD)
    samples = sampler.sample_batch(count)
    return (
        os.getpid(),
        samples,
        sampler.total_traversals,
        sampler.total_edges_explored,
    )


class ProcessPoolEngine(SampleEngine):
    """Fan sampling out to a pool of worker processes.

    Parameters
    ----------
    workers:
        Worker processes (default ``os.cpu_count()``).  Results are
        bit-identical across worker counts for a fixed seed.
    chunk_size:
        Samples per dispatched chunk.  Part of the determinism
        contract: changing it changes the sub-stream layout (and hence
        the concrete samples), while changing ``workers`` does not.
    """

    name = "process"

    def __init__(
        self,
        graph: CSRGraph,
        seed=None,
        method: str = "bidirectional",
        include_endpoints: bool = True,
        workers: int | None = None,
        chunk_size: int = _DEFAULT_CHUNK,
    ):
        super().__init__(
            graph, seed=seed, method=method, include_endpoints=include_endpoints
        )
        if workers is not None and workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self._pool: ProcessPoolExecutor | None = None
        self._pool_broken = False

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        """The executor, started lazily; ``None`` if unavailable."""
        if self._pool_broken:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(_graph_payload(self.graph), self.method),
                )
            except (OSError, PermissionError, ValueError):
                # sandboxes without subprocess support: run the same
                # chunk schedule in-process instead
                self._pool_broken = True
                return None
        return self._pool

    def _chunk_sizes(self, count: int) -> list[int]:
        full, rest = divmod(count, self.chunk_size)
        return [self.chunk_size] * full + ([rest] if rest else [])

    def draw(self, count: int) -> list[PathSample]:
        self._check_count(count)
        if count == 0:
            self.stats.draw_calls += 1
            return []
        sizes = self._chunk_sizes(count)
        seeds = spawn_seeds(self._rng, len(sizes))
        pool = self._ensure_pool()

        results = []
        if pool is not None:
            try:
                futures: list[Future] = [
                    pool.submit(_draw_chunk, seed, size)
                    for seed, size in zip(seeds, sizes)
                ]
                results = [future.result() for future in futures]
            except BrokenExecutor:
                self._pool_broken = True
                self.close()
                results = []
        if not results:
            # in-process fallback: identical chunk schedule and seeds
            _init_worker(_graph_payload(self.graph), self.method)
            results = [
                _draw_chunk(seed, size) for seed, size in zip(seeds, sizes)
            ]

        samples: list[PathSample] = []
        for pid, chunk, traversals, edges in results:
            samples.extend(chunk)
            self.stats.traversals += traversals
            self.stats.edges_explored += edges
            self.stats.worker_samples[pid] = (
                self.stats.worker_samples.get(pid, 0) + len(chunk)
            )
        self.stats.samples += count
        self.stats.draw_calls += 1
        self.stats.batches += len(sizes)
        self.stats.workers = 0 if self._pool_broken else self.workers
        return samples

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
