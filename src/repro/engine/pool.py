"""Process-parallel sampling over a shared CSR graph.

Path sampling is embarrassingly parallel — samples are i.i.d. — so the
only design problems are *determinism* and *graph distribution*:

* **Determinism.**  Each ``draw`` request is split into fixed-size
  chunks, and every chunk receives its own child seed from the
  engine's master stream (:func:`repro._rng.spawn_seeds`) *in chunk
  order*.  Workers may finish chunks in any order, but results are
  reassembled by chunk index, so the sample sequence is a pure
  function of ``(seed, chunk_size, kernel)`` — bit-identical for 0
  (in-process), 1, 2, or 8 workers.  This is the "almost no
  synchronization" recipe of van der Grinten et al.: workers share
  nothing but the immutable graph and their pre-assigned sub-streams.
* **Graph distribution.**  The immutable CSR arrays are copied once
  into named :mod:`multiprocessing.shared_memory` segments
  (:mod:`repro.engine.shm`); workers attach by name and wrap the
  buffers zero-copy — the same cost under ``fork`` and ``spawn``,
  and independent of the worker count.  The parent owns the segments
  and unlinks them on :meth:`ProcessPoolEngine.close`, including
  after a worker crash.  Environments whose ``/dev/shm`` is
  unavailable fall back to pickling the arrays into each worker.

The executor is started lazily on the first draw and **reused** across
every subsequent ``draw`` / ``extend`` call; ``stats.pool_startups``
counts the launches (it stays at 1 for a healthy engine).  Environments
that forbid subprocesses entirely degrade gracefully: the engine runs
the same chunk schedule in-process, preserving results exactly and
reporting ``workers=0``.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor, wait

from .._rng import spawn_seeds
from ..exceptions import EngineError, ParameterError
from ..graph.csr import CSRGraph
from ..graph.weighted import WeightedCSRGraph
from ..paths.sampler import PathSample, PathSampler
from .base import SampleEngine, cohort_kernel, resolve_kernel
from .shm import SharedGraphBlocks, attach_graph

__all__ = ["ProcessPoolEngine"]

_DEFAULT_CHUNK = 1024

#: Auto-sized chunks never split a draw into more than this many
#: dispatches: large draws get proportionally larger chunks, so the
#: per-dispatch overhead (one pickled result per chunk) stays a fixed
#: fraction of the draw instead of growing linearly with it.
_TARGET_DISPATCHES = 8

#: Per-worker state set once by the pool initializer: the rebuilt graph,
#: the shared-memory handles keeping its buffers alive, and the sampling
#: configuration every chunk reuses.
_WORKER_STATE: dict = {}


def _pickle_payload(graph: CSRGraph) -> dict:
    """Fallback graph description when shared memory is unavailable."""
    return {
        "arrays": {k: v for k, v in graph.export_arrays().items()},
        "directed": graph.directed,
        "weighted": isinstance(graph, WeightedCSRGraph),
    }


def _materialize_graph(transport: str, payload: dict):
    """Rebuild the worker's graph; returns ``(graph, shm_handles)``."""
    if transport == "shm":
        return attach_graph(payload)
    if transport == "mmap":
        from ..graph.mmap import load_mmap  # deferred: graph.mmap is cold-path

        return load_mmap(payload["path"]), []
    cls = WeightedCSRGraph if payload["weighted"] else CSRGraph
    return cls.from_arrays(payload["arrays"], directed=payload["directed"]), []


def _init_worker(
    transport: str,
    payload: dict,
    method: str,
    kernel: str,
    cohort_size: int | None,
    delta: int | None,
    cache_sources: int,
) -> None:
    graph, handles = _materialize_graph(transport, payload)
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        graph=graph,
        handles=handles,
        method=method,
        kernel=kernel,
        cohort_size=cohort_size,
        delta=delta,
        cache_sources=cache_sources,
    )


def _chunk_samples(
    graph: CSRGraph,
    method: str,
    kernel: str,
    cohort_size: int | None,
    delta: int | None,
    cache_sources: int,
    seed: int,
    count: int,
) -> tuple[list[PathSample], int, int, int, int, int, int]:
    """One chunk of samples from its own seeded stream.

    The single chunk body shared by pool workers, epoch workers, and
    the in-process fallback — the reason results are bit-identical
    across worker counts.  Returns ``(samples, traversals, edges,
    hits, misses, weighted_cohorts, bucket_relaxations)``.
    """
    sampler = PathSampler(
        graph, seed=seed, method=method, cache_sources=cache_sources
    )
    cohort = cohort_kernel(kernel, graph, method)
    if cohort is None:
        samples = sampler.sample_batch(count)
    else:
        samples = sampler.sample_cohort(
            count, kernel=cohort, cohort_size=cohort_size, delta=delta
        )
    return (
        samples,
        sampler.total_traversals,
        sampler.total_edges_explored,
        sampler.cache_hits,
        sampler.cache_misses,
        sampler.total_weighted_cohorts,
        sampler.total_bucket_relaxations,
    )


def _draw_chunk(seed: int, count: int):
    """Executed in a worker: run the shared chunk body on its graph."""
    state = _WORKER_STATE
    result = _chunk_samples(
        state["graph"],
        state["method"],
        state["kernel"],
        state["cohort_size"],
        state["delta"],
        state["cache_sources"],
        seed,
        count,
    )
    return (os.getpid(), *result)


class ProcessPoolEngine(SampleEngine):
    """Fan sampling out to a pool of worker processes.

    Parameters
    ----------
    workers:
        Worker processes (default ``os.cpu_count()``).  ``0`` forces
        the in-process fallback (no subprocesses, no shared memory);
        results are bit-identical across all worker counts for a
        fixed seed.
    chunk_size:
        Samples per dispatched chunk.  Part of the determinism
        contract: changing it changes the sub-stream layout (and hence
        the concrete samples), while changing ``workers`` does not.
        The default ``None`` auto-sizes chunks as a pure function of
        the draw *count* — ``max(1024, ceil(count / 8))`` — which keeps
        small draws in one dispatch (identical layout to the historical
        fixed 1024) while capping the dispatch overhead of large draws
        at 8 result pickles; still worker-count independent.
    kernel:
        Per-chunk traversal kernel: ``"wavefront"`` (default),
        ``"scalar"``, or the legacy ``"grouped"`` — see
        :data:`repro.engine.base.KERNELS`.  Weighted graphs run the
        delta-stepping cohort kernel; only the unweighted
        ``"forward"`` method still falls back to ``"grouped"``.
    cohort_size:
        Wavefront cohort width forwarded to each chunk.
    delta:
        Weighted delta-stepping bucket width forwarded to each chunk
        (result-invariant; ``None`` auto-tunes).
    cache_sources:
        Per-worker forward-BFS tree cache size (``"grouped"`` kernel
        only; caches are per-chunk, so this mainly helps large chunks).
    """

    name = "process"

    def __init__(
        self,
        graph: CSRGraph,
        seed=None,
        method: str = "bidirectional",
        include_endpoints: bool = True,
        cache_sources: int = 0,
        workers: int | None = None,
        chunk_size: int | None = None,
        kernel: str = "wavefront",
        cohort_size: int | None = None,
        delta: int | None = None,
    ):
        super().__init__(
            graph,
            seed=seed,
            method=method,
            include_endpoints=include_endpoints,
            cache_sources=cache_sources,
        )
        if workers is not None and workers < 0:
            raise ParameterError(f"workers must be >= 0, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.requested_kernel = kernel
        self.kernel = resolve_kernel(kernel, graph, method)
        self.cohort_size = cohort_size
        self.delta = delta
        self._pool: ProcessPoolExecutor | None = None
        self._pool_broken = False
        self._segments: SharedGraphBlocks | None = None

    # ------------------------------------------------------------------
    def _worker_payload(self) -> tuple[str, dict]:
        """Graph transport for worker initializers: re-open the on-disk
        file for memory-mapped graphs, shared memory when the platform
        provides it, pickled arrays otherwise."""
        if self.graph.mmap_source is not None:
            return "mmap", {"path": self.graph.mmap_source}
        if self._segments is None:
            try:
                self._segments = SharedGraphBlocks(self.graph)
            except OSError:
                return "pickle", _pickle_payload(self.graph)
        return "shm", self._segments.spec

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        """The executor, started lazily and reused across draws;
        ``None`` if unavailable."""
        if self._pool_broken or self.workers == 0:
            return None
        if self._pool is None:
            transport, payload = self._worker_payload()
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(
                        transport,
                        payload,
                        self.method,
                        self.kernel,
                        self.cohort_size,
                        self.delta,
                        self.cache_sources,
                    ),
                )
                self.stats.pool_startups += 1
            except (OSError, PermissionError, ValueError):
                # sandboxes without subprocess support: run the same
                # chunk schedule in-process instead
                self._pool_broken = True
                self._release_segments()
                return None
        return self._pool

    def _chunk_sizes(self, count: int) -> list[int]:
        # depends on the request count only, never on worker state —
        # the chunk layout is what makes results worker-count invariant
        size = self.chunk_size
        if size is None:
            size = max(_DEFAULT_CHUNK, -(-count // _TARGET_DISPATCHES))
        full, rest = divmod(count, size)
        return [size] * full + ([rest] if rest else [])

    def draw(self, count: int) -> list[PathSample]:
        self._check_count(count)
        if count == 0:
            self.stats.draw_calls += 1
            return []
        sizes = self._chunk_sizes(count)
        seeds = spawn_seeds(self._rng, len(sizes))
        if self.kernel == "grouped" and self.requested_kernel != "grouped":
            self._note_kernel_fallback(self.requested_kernel)
        pool = self._ensure_pool()

        results = []
        if pool is not None:
            futures: list[Future] = []
            index = 0
            try:
                futures = [
                    pool.submit(_draw_chunk, seed, size)
                    for seed, size in zip(seeds, sizes)
                ]
                results = []
                for index, future in enumerate(futures):
                    results.append(future.result())
            except BrokenExecutor:
                # a worker died: tear everything down (the pool AND the
                # shared segments it was attached to) before falling back
                self._pool_broken = True
                self.close()
                results = []
            except Exception as exc:
                # a chunk body raised inside a healthy worker: cancel what
                # has not started, wait out what has (no orphaned in-flight
                # work), account the failed call, and surface the chunk —
                # the pool itself is fine, so later draws keep using it
                for pending in futures:
                    pending.cancel()
                wait(futures)
                self.stats.draw_calls += 1
                raise EngineError(
                    f"worker chunk {index + 1}/{len(sizes)} "
                    f"(size={sizes[index]}, seed={seeds[index]}) failed: {exc}"
                ) from exc
        if not results:
            # in-process fallback: identical chunk schedule and seeds
            results = []
            for index, (seed, size) in enumerate(zip(seeds, sizes)):
                try:
                    chunk = _chunk_samples(
                        self.graph,
                        self.method,
                        self.kernel,
                        self.cohort_size,
                        self.delta,
                        self.cache_sources,
                        seed,
                        size,
                    )
                except Exception as exc:
                    self.stats.draw_calls += 1
                    raise EngineError(
                        f"chunk {index + 1}/{len(sizes)} "
                        f"(size={size}, seed={seed}) failed: {exc}"
                    ) from exc
                results.append((os.getpid(), *chunk))

        samples: list[PathSample] = []
        for result in results:
            pid, chunk, traversals, edges, hits, misses, cohorts, relaxations = result
            samples.extend(chunk)
            self.stats.traversals += traversals
            self.stats.edges_explored += edges
            self.stats.cache_hits += hits
            self.stats.cache_misses += misses
            self.stats.weighted_cohorts += cohorts
            self.stats.bucket_relaxations += relaxations
            self.stats.worker_samples[pid] = (
                self.stats.worker_samples.get(pid, 0) + len(chunk)
            )
        self.stats.samples += count
        self.stats.draw_calls += 1
        self.stats.batches += len(sizes)
        self.stats.workers = (
            0 if (self._pool_broken or self.workers == 0) else self.workers
        )
        return samples

    # ------------------------------------------------------------------
    def _release_segments(self) -> None:
        if self._segments is not None:
            self._segments.close()
            self._segments = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._release_segments()

    def __del__(self):  # pragma: no cover - belt-and-braces cleanup
        try:
            self.close()
        except Exception:
            pass
