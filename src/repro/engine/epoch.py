"""Epoch-based asynchronous sampling over persistent worker loops.

The process-pool engine answers each ``draw`` with a fresh fan-out:
chunk the request, submit one task per chunk, pickle one
``list[PathSample]`` back per chunk.  That request/response rhythm puts
the pool's dispatch overhead *inside* every stopping-rule evaluation —
the reason ``workers=1`` lost to the in-process batch engine on the
bench sweep.  This engine inverts the loop, following the low-sync
recipe of van der Grinten, Angriman & Meyerhenke ("Parallel Adaptive
Sampling with almost no Synchronization"):

* **Persistent workers.**  Each worker is one long-lived process
  running a task loop — attach the graph once (shared memory, or a
  re-opened memory map for out-of-core graphs), then consume
  ``(epoch_index, seed, size)`` tickets from a queue forever.  No
  executor round-trips, no per-draw initializer.
* **Fixed-size epochs.**  The unit of work is an *epoch* of
  ``epoch_size`` samples.  Epoch ``i`` is sampled from the child
  stream ``indexed_seed(entropy, i)`` (:mod:`repro._rng`), so the
  content of every epoch is a pure function of ``(seed, epoch_size)``
  — which worker ran it, and in which order epochs *finished*, is
  irrelevant.  The parent ingests epochs strictly in index order;
  that is the whole determinism argument, and it holds for 0 (in
  process), 1, or 8 workers.
* **Compact deltas.**  Workers return each epoch as one
  :class:`~repro.engine.wire.PackedSamples` — flat arrays, one pickle
  per epoch — with the coverage node sets pre-deduplicated, so the
  parent folds an epoch into the
  :class:`~repro.coverage.CoverageInstance` with a single vectorized
  append instead of ``epoch_size`` Python calls.
* **Speculative lookahead.**  While the stopping rule deliberates,
  workers keep sampling: the parent keeps ``lookahead`` epochs per
  worker in flight beyond current demand.  Epochs that were sampled
  but never needed are discarded at close (counted as
  ``engine.epoch.discarded``) — wasted samples, saved wall-clock, and
  zero effect on results because unused suffixes never enter the
  stream.

``extend`` rounds its target **up to an epoch boundary**: the stores
of a :class:`~repro.session.SamplingSession` then always sit on a
whole number of epochs, which is where checkpoints land and where
:meth:`rng_state` is well-defined.  The stopping-rule policies divide
by the store's actual ``num_paths``, so the overshoot changes sample
counts, never estimator validity.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from contextlib import contextmanager
from queue import Empty

from .._rng import indexed_seed, stream_entropy
from ..coverage.hypergraph import CoverageInstance
from ..exceptions import CheckpointError, EngineError, ParameterError
from ..graph.csr import CSRGraph
from ..obs import check_instance, check_sample
from ..paths.sampler import PathSample
from .base import SampleEngine, coverage_nodes, resolve_kernel
from .pool import _chunk_samples, _materialize_graph, _pickle_payload
from .shm import SharedGraphBlocks
from .wire import PackedSamples, pack_samples, unpack_samples

__all__ = ["EpochEngine"]

#: Default samples per epoch — small enough that stopping rules never
#: overshoot their targets by much, large enough that the one-pickle
#: per-epoch overhead is amortized over hundreds of paths.
_DEFAULT_EPOCH = 512

#: Tag identifying this engine's composite RNG state in checkpoints.
_STATE_TAG = "repro-epoch-stream"

#: Result-queue poll interval; only bounds how fast worker death is
#: noticed, never what is computed.
_POLL_SECONDS = 0.1

_JOIN_SECONDS = 5.0


def _epoch_worker(
    transport: str,
    payload: dict,
    method: str,
    kernel: str,
    cohort_size: int | None,
    delta: int | None,
    cache_sources: int,
    include_endpoints: bool,
    tasks,
    results,
) -> None:
    """One persistent worker loop: attach the graph once, then sample
    epochs until the ``None`` sentinel arrives.

    Each ticket is ``(epoch_index, seed, size)``; each answer is
    ``(epoch_index, pid, PackedSamples | None, info)`` where ``info``
    is the work-counter tuple on success and the formatted exception
    on failure (a failed epoch never kills the loop — the parent
    re-runs it in-process to surface the real traceback).
    """
    graph, handles = _materialize_graph(transport, payload)
    pid = os.getpid()
    try:
        while True:
            ticket = tasks.get()
            if ticket is None:
                break
            index, seed, size = ticket
            try:
                samples, *info = _chunk_samples(
                    graph,
                    method,
                    kernel,
                    cohort_size,
                    delta,
                    cache_sources,
                    seed,
                    size,
                )
            except Exception as exc:
                results.put((index, pid, None, repr(exc)))
                continue
            packed = pack_samples(samples, include_endpoints)
            results.put((index, pid, packed, tuple(info)))
    finally:
        del graph
        for handle in handles:
            handle.close()


class EpochEngine(SampleEngine):
    """Continuous epoch sampling with persistent worker processes.

    Parameters
    ----------
    workers:
        Worker processes (default ``os.cpu_count()``).  ``0`` runs the
        identical epoch schedule in-process; results are bit-identical
        across all worker counts for a fixed ``(seed, epoch_size)``.
    epoch_size:
        Samples per epoch — the determinism granule *and* the stopping
        rules' evaluation granule: ``extend`` targets round up to the
        next epoch boundary.  Changing it changes the concrete samples
        (like ``chunk_size`` on the pool engine); changing ``workers``
        does not.
    kernel, cohort_size:
        Traversal kernel each epoch runs through (see
        :data:`repro.engine.base.KERNELS`) and its cohort width; on
        weighted graphs the cohort kernels run the delta-stepping
        wavefront, whose results pack through the same
        :class:`~repro.engine.wire.PackedSamples` wire format.
    delta:
        Weighted delta-stepping bucket width forwarded to each epoch
        (result-invariant; ``None`` auto-tunes).
    lookahead:
        Speculative epochs kept in flight per worker beyond current
        demand.  ``0`` disables speculation (strict demand-driven
        dispatch); larger values hide more stopping-rule latency at
        the cost of more discarded work on the final iteration.
    cache_sources:
        Per-worker forward-BFS tree cache size (``"grouped"`` kernel
        only).
    """

    name = "epoch"

    def __init__(
        self,
        graph: CSRGraph,
        seed=None,
        method: str = "bidirectional",
        include_endpoints: bool = True,
        cache_sources: int = 0,
        workers: int | None = None,
        epoch_size: int = _DEFAULT_EPOCH,
        kernel: str = "wavefront",
        cohort_size: int | None = None,
        delta: int | None = None,
        lookahead: int = 2,
    ):
        super().__init__(
            graph,
            seed=seed,
            method=method,
            include_endpoints=include_endpoints,
            cache_sources=cache_sources,
        )
        if workers is not None and workers < 0:
            raise ParameterError(f"workers must be >= 0, got {workers}")
        if epoch_size < 1:
            raise ParameterError(f"epoch_size must be >= 1, got {epoch_size}")
        if lookahead < 0:
            raise ParameterError(f"lookahead must be >= 0, got {lookahead}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.epoch_size = int(epoch_size)
        self.requested_kernel = kernel
        self.kernel = resolve_kernel(kernel, graph, method)
        self.cohort_size = cohort_size
        self.delta = delta
        self.lookahead = int(lookahead)
        #: Entropy word keying the indexed family of epoch streams
        #: (:func:`repro._rng.indexed_seed`); drawn once from the
        #: master stream so the whole schedule is fixed up front.
        self._entropy = stream_entropy(self._rng)
        self._ingested = 0  # epochs folded into the stream, in order
        self._dispatched = 0  # epoch tickets currently issued
        self._arrived: dict[int, tuple] = {}  # finished, not yet ingested
        self._failed: set[int] = set()  # epochs a worker reported failed
        self._carry: list[PathSample] = []  # tail of a partially drawn epoch
        self._procs: list = []
        self._tasks = None
        self._results = None
        self._broken = False
        self._segments: SharedGraphBlocks | None = None

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _worker_payload(self) -> tuple[str, dict]:
        """Graph transport (mirrors the pool engine): memory-mapped
        graphs are re-opened from disk, others go through shm with a
        pickle fallback."""
        if self.graph.mmap_source is not None:
            return "mmap", {"path": self.graph.mmap_source}
        if self._segments is None:
            try:
                self._segments = SharedGraphBlocks(self.graph)
            except OSError:
                return "pickle", _pickle_payload(self.graph)
        return "shm", self._segments.spec

    def _ensure_workers(self) -> bool:
        """Start the persistent workers lazily; ``False`` means run
        in-process (``workers=0``, or subprocesses unavailable)."""
        if self._broken or self.workers == 0:
            return False
        if self._procs:
            return True
        transport, payload = self._worker_payload()
        context = mp.get_context()
        procs: list = []
        try:
            self._tasks = context.Queue()
            self._results = context.Queue()
            for _ in range(self.workers):
                proc = context.Process(
                    target=_epoch_worker,
                    args=(
                        transport,
                        payload,
                        self.method,
                        self.kernel,
                        self.cohort_size,
                        self.delta,
                        self.cache_sources,
                        self.include_endpoints,
                        self._tasks,
                        self._results,
                    ),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
        except (OSError, PermissionError, ValueError):
            # sandboxes without subprocess support: same epoch schedule,
            # in-process
            self._procs = procs
            self._shutdown_workers()
            self._broken = True
            self._release_segments()
            return False
        self._procs = procs
        self.stats.pool_startups += 1
        return True

    def _shutdown_workers(self) -> None:
        """Stop the worker loops, keeping any finished epochs that are
        still ahead of the stream position."""
        procs, self._procs = self._procs, []
        if procs and self._tasks is not None:
            # revoke unconsumed speculative tickets (racing workers may
            # still grab some — harmless, their results are discarded),
            # then send one exit sentinel per worker
            while True:
                try:
                    self._tasks.get_nowait()
                except Empty:
                    break
            for _ in procs:
                self._tasks.put(None)
            # drain results until every loop exits — their queue feeder
            # threads must flush before join can complete
            while any(proc.is_alive() for proc in procs):
                try:
                    self._store_arrival(self._results.get(timeout=_POLL_SECONDS))
                except Empty:
                    continue
            while True:
                try:
                    self._store_arrival(self._results.get_nowait())
                except Empty:
                    break
        for proc in procs:
            proc.join(timeout=_JOIN_SECONDS)
            if proc.is_alive():  # pragma: no cover - stuck-worker escape
                proc.terminate()
                proc.join(timeout=_JOIN_SECONDS)
        for channel in (self._tasks, self._results):
            if channel is not None:
                channel.close()
                channel.cancel_join_thread()
        self._tasks = None
        self._results = None
        # issued tickets died with the queues; nothing is in flight now
        self._dispatched = self._ingested

    def _store_arrival(self, arrival: tuple) -> None:
        index, pid, packed, info = arrival
        if packed is None:
            self._failed.add(index)
        elif index >= self._ingested:
            self._arrived[index] = (packed, info, pid)

    # ------------------------------------------------------------------
    # the epoch stream
    # ------------------------------------------------------------------
    def _seed_for(self, index: int) -> int:
        return indexed_seed(self._entropy, index)

    def _dispatch_through(self, last_index: int) -> None:
        """Issue tickets so every epoch up to ``last_index`` is in
        flight (never re-issues; tickets are consumed exactly once)."""
        while self._dispatched <= last_index:
            index = self._dispatched
            self._tasks.put((index, self._seed_for(index), self.epoch_size))
            self._dispatched += 1
            self.stats.dispatches += 1
            self.telemetry.count("engine.epoch.dispatches", 1)

    def _compute_epoch(self, index: int) -> tuple:
        """The in-process epoch body — identical samples to a worker's,
        because both run :func:`repro.engine.pool._chunk_samples` on
        the same ``(seed, size)``."""
        seed = self._seed_for(index)
        self.stats.dispatches += 1
        self.telemetry.count("engine.epoch.dispatches", 1)
        try:
            samples, *info = _chunk_samples(
                self.graph,
                self.method,
                self.kernel,
                self.cohort_size,
                self.delta,
                self.cache_sources,
                seed,
                self.epoch_size,
            )
        except Exception as exc:
            raise EngineError(
                f"epoch {index} (size={self.epoch_size}, seed={seed}) "
                f"failed: {exc}"
            ) from exc
        packed = pack_samples(samples, self.include_endpoints)
        return packed, tuple(info), os.getpid()

    def _await(self, index: int):
        """Block until epoch ``index`` arrives from the workers,
        degrading to in-process computation if the pool dies."""
        while index not in self._arrived:
            if index in self._failed:
                return self._compute_epoch(index)  # re-raise for real
            try:
                self._store_arrival(self._results.get(timeout=_POLL_SECONDS))
            except Empty:
                if any(not proc.is_alive() for proc in self._procs):
                    # a worker died without reporting: salvage finished
                    # epochs, then compute the rest of the stream here
                    self._shutdown_workers()
                    self._broken = True
                    self.stats.workers = 0
                    if index in self._arrived:
                        break
                    return self._compute_epoch(index)
        return self._arrived.pop(index)

    def _next_epoch(self) -> tuple:
        """The next epoch of the stream, in index order — from the
        buffer, the workers, or computed here; always deterministic."""
        if self.kernel == "grouped" and self.requested_kernel != "grouped":
            self._note_kernel_fallback(self.requested_kernel)
        index = self._ingested
        if index in self._arrived:
            entry = self._arrived.pop(index)
        elif index in self._failed:
            entry = self._compute_epoch(index)  # deterministic re-raise
        elif self._ensure_workers():
            self._dispatch_through(index + self.lookahead * len(self._procs))
            entry = self._await(index)
        else:
            entry = self._compute_epoch(index)
        self._ingested += 1
        self.stats.epochs += 1
        self.stats.batches += 1
        self.telemetry.count("engine.epoch.epochs", 1)
        self._fold_info(entry)
        return entry

    def _fold_info(self, entry: tuple) -> None:
        packed, info, pid = entry
        traversals, edges, hits, misses, cohorts, relaxations = info
        self.stats.traversals += traversals
        self.stats.edges_explored += edges
        self.stats.cache_hits += hits
        self.stats.cache_misses += misses
        self.stats.weighted_cohorts += cohorts
        self.stats.bucket_relaxations += relaxations
        self.stats.worker_samples[pid] = self.stats.worker_samples.get(
            pid, 0
        ) + len(packed)

    def _update_worker_stat(self) -> None:
        self.stats.workers = (
            0 if (self._broken or self.workers == 0) else self.workers
        )

    @contextmanager
    def _reap_on_error(self):
        """Stop the persistent workers when an exception escapes a
        ``draw``/``extend`` body.

        Without this, an error raised between ``_ensure_workers`` and
        ``close`` (a coverage append failing, an invariant check, a
        ``KeyboardInterrupt``) leaves daemon children sampling forever
        if the caller holds the engine in a reference cycle —
        ``__del__`` is belt-and-braces, not a guarantee.  The engine
        stays usable: the next draw lazily restarts the pool.
        """
        try:
            yield
        except BaseException:
            self._shutdown_workers()
            self._release_segments()
            raise

    # ------------------------------------------------------------------
    # SampleEngine interface
    # ------------------------------------------------------------------
    def draw(self, count: int) -> list[PathSample]:
        """Exactly ``count`` samples off the epoch stream.

        Whole epochs are ingested; the unconsumed tail is carried into
        the next ``draw`` so the stream position (and hence every
        sample) is independent of how requests slice it.
        """
        self._check_count(count)
        samples: list[PathSample] = []
        if count == 0:
            self.stats.draw_calls += 1
            return samples
        take = min(count, len(self._carry))
        if take:
            samples.extend(self._carry[:take])
            del self._carry[:take]
        with self._reap_on_error():
            while len(samples) < count:
                packed, _info, _pid = self._next_epoch()
                epoch_samples = unpack_samples(packed)
                need = count - len(samples)
                samples.extend(epoch_samples[:need])
                self._carry.extend(epoch_samples[need:])
        self.stats.samples += count
        self.stats.draw_calls += 1
        self._update_worker_stat()
        return samples

    def effective_target(self, upto: int, current: int) -> int:
        """Where an ``extend(instance, upto)`` will actually leave an
        instance currently holding ``current`` samples: any carried
        tail is flushed, then whole epochs until ``upto`` is reached."""
        missing = upto - current
        if missing <= 0:
            return current
        beyond_carry = max(0, missing - len(self._carry))
        epochs = -(-beyond_carry // self.epoch_size)
        return current + len(self._carry) + epochs * self.epoch_size

    def extend(self, instance: CoverageInstance, upto: int) -> None:
        """Grow ``instance`` to at least ``upto`` samples, landing on
        an epoch boundary.

        This is the aggregated-delta ingestion path: each epoch's
        pre-deduplicated coverage sets are appended in one vectorized
        call (:meth:`~repro.coverage.CoverageInstance.add_paths_packed`)
        instead of per-sample ``add_path`` loops.  Telemetry mirrors
        the base engine's ``engine.*`` deltas and adds one
        ``engine.epoch.barrier`` event per evaluation boundary.
        """
        self._flush_coverage(instance)
        if upto - instance.num_paths <= 0:
            return
        target = self.effective_target(upto, instance.num_paths)
        needed = target - instance.num_paths
        epochs_needed = (needed - len(self._carry)) // self.epoch_size
        telemetry = self.telemetry
        stats = self.stats
        before = (
            stats.traversals,
            stats.edges_explored,
            stats.weighted_cohorts,
            stats.bucket_relaxations,
        )
        appended = 0
        with telemetry.span("draw", engine=self.name, count=needed):
            with self._reap_on_error():
                if self._carry:
                    for sample in self._carry:
                        if self.debug:
                            check_sample(self.graph, sample)
                        instance.add_path(
                            coverage_nodes(sample, self.include_endpoints)
                        )
                    appended += len(self._carry)
                    self._carry.clear()
                for _ in range(epochs_needed):
                    packed, _info, _pid = self._next_epoch()
                    if self.debug:
                        for sample in unpack_samples(packed):
                            check_sample(self.graph, sample)
                    instance.add_paths_packed(
                        packed.cov_flat, packed.cov_offsets
                    )
                    appended += len(packed)
        stats.samples += appended
        stats.draw_calls += 1
        telemetry.count("engine.samples", appended)
        telemetry.count("engine.draw_calls", 1)
        telemetry.count("engine.traversals", stats.traversals - before[0])
        telemetry.count("engine.edges_explored", stats.edges_explored - before[1])
        if stats.weighted_cohorts != before[2]:
            telemetry.count(
                "paths.weighted_cohorts", stats.weighted_cohorts - before[2]
            )
        if stats.bucket_relaxations != before[3]:
            telemetry.count(
                "paths.bucket_relaxations",
                stats.bucket_relaxations - before[3],
            )
        telemetry.event(
            "engine.epoch.barrier",
            epochs=epochs_needed,
            samples=appended,
            requested=int(upto),
            reached=int(instance.num_paths),
        )
        if self.debug:
            check_instance(instance)
        self._flush_coverage(instance)
        self._update_worker_stat()

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def rng_state(self) -> dict:
        """The stream position as a composite, JSON-serializable state:
        the entropy word, the next epoch index, and the master
        generator's state.  Only defined at epoch boundaries."""
        if self._carry:
            raise CheckpointError(
                "cannot snapshot an epoch engine mid-epoch "
                f"({len(self._carry)} undelivered samples); snapshot at an "
                "epoch boundary — extend-driven sessions always sit on one"
            )
        return {
            "bit_generator": _STATE_TAG,
            "entropy": int(self._entropy),
            "next_epoch": int(self._ingested),
            "epoch_size": int(self.epoch_size),
            "master": super().rng_state(),
        }

    def set_rng_state(self, state: dict) -> None:
        """Reposition the stream at a state captured by
        :meth:`rng_state`; in-flight speculative work is discarded
        (it belongs to the old position)."""
        wanted = state.get("bit_generator") if isinstance(state, dict) else None
        if wanted != _STATE_TAG:
            raise CheckpointError(
                f"cannot restore RNG state of bit generator {wanted!r} "
                f"into {_STATE_TAG!r}"
            )
        recorded = int(state.get("epoch_size", self.epoch_size))
        if recorded != self.epoch_size:
            raise CheckpointError(
                f"checkpoint was taken with epoch_size={recorded}, cannot "
                f"resume with epoch_size={self.epoch_size} — the epoch size "
                "is part of the sample-stream identity"
            )
        super().set_rng_state(state["master"])
        self._discard_in_flight()
        self._entropy = int(state["entropy"])
        self._ingested = int(state["next_epoch"])
        self._dispatched = self._ingested

    def _discard_in_flight(self) -> None:
        discarded = self._dispatched - self._ingested
        self._shutdown_workers()
        self._arrived.clear()
        self._failed.clear()
        self._carry.clear()
        if discarded > 0:
            self.telemetry.count("engine.epoch.discarded", discarded)
        self._dispatched = self._ingested

    # ------------------------------------------------------------------
    def _release_segments(self) -> None:
        if self._segments is not None:
            self._segments.close()
            self._segments = None

    def close(self) -> None:
        """Stop the workers, discard speculative epochs, release the
        shared graph segments; idempotent — a later draw restarts."""
        self._discard_in_flight()
        self._release_segments()

    def __del__(self):  # pragma: no cover - belt-and-braces cleanup
        try:
            self.close()
        except Exception:
            pass
