"""Compact array wire format for shipping sample epochs between
processes.

The process-pool engine returns each draw as a pickled
``list[PathSample]`` — one Python object per path, whose (un)pickling
dominates the dispatch cost for the short paths typical of small-world
graphs.  The epoch engine instead ships each epoch as **seven numpy
arrays**: flattened path nodes with offsets, the per-sample scalars,
and the pre-deduplicated *coverage* node sets (endpoint convention
already applied by the worker).  One pickle per epoch, not per path —
and the parent can bulk-append the coverage sets into a
:class:`~repro.coverage.CoverageInstance` without re-running
``np.unique`` per sample.

``pack_samples`` / ``unpack_samples`` round-trip exactly:
``unpack_samples(pack_samples(samples, ...))`` reproduces every
:class:`~repro.paths.sampler.PathSample` field bit-for-bit, so callers
that need the object form (``draw()``) lose nothing.
"""

from __future__ import annotations

import numpy as np

from ..paths.sampler import PathSample
from .base import coverage_nodes

__all__ = ["PackedSamples", "pack_samples", "unpack_samples"]


class PackedSamples:
    """One epoch of samples in flat-array form.

    Attributes
    ----------
    sources, targets, distances, sigmas, edges:
        Per-sample scalar columns (``distances[i] == -1`` and an empty
        node segment mark a null sample).
    path_flat, path_offsets:
        Concatenated path node arrays; sample ``i``'s path is
        ``path_flat[path_offsets[i]:path_offsets[i + 1]]``.
    cov_flat, cov_offsets:
        Concatenated *coverage* node sets — sorted, deduplicated, and
        already sliced by the endpoint convention — in the layout
        :meth:`~repro.coverage.CoverageInstance.add_paths_packed`
        ingests directly.
    """

    __slots__ = (
        "sources",
        "targets",
        "distances",
        "sigmas",
        "edges",
        "path_flat",
        "path_offsets",
        "cov_flat",
        "cov_offsets",
    )

    def __init__(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        distances: np.ndarray,
        sigmas: np.ndarray,
        edges: np.ndarray,
        path_flat: np.ndarray,
        path_offsets: np.ndarray,
        cov_flat: np.ndarray,
        cov_offsets: np.ndarray,
    ):
        self.sources = sources
        self.targets = targets
        self.distances = distances
        self.sigmas = sigmas
        self.edges = edges
        self.path_flat = path_flat
        self.path_offsets = path_offsets
        self.cov_flat = cov_flat
        self.cov_offsets = cov_offsets

    def __len__(self) -> int:
        return self.sources.size

    # plain-tuple pickling keeps the wire payload free of per-object
    # dict overhead (PackedSamples has __slots__, but explicit state
    # also survives class renames in old worker snapshots)
    def __reduce__(self):
        return (
            PackedSamples,
            (
                self.sources,
                self.targets,
                self.distances,
                self.sigmas,
                self.edges,
                self.path_flat,
                self.path_offsets,
                self.cov_flat,
                self.cov_offsets,
            ),
        )


def pack_samples(
    samples: list[PathSample], include_endpoints: bool
) -> PackedSamples:
    """Flatten ``samples`` into one :class:`PackedSamples` epoch.

    The coverage sets are computed here — on the worker, off the
    parent's critical path — with the same
    ``np.unique(coverage_nodes(...))`` the per-sample append would run.
    """
    count = len(samples)
    sources = np.fromiter((s.source for s in samples), np.int64, count=count)
    targets = np.fromiter((s.target for s in samples), np.int64, count=count)
    distances = np.fromiter((s.distance for s in samples), np.int64, count=count)
    sigmas = np.fromiter((s.sigma_st for s in samples), np.float64, count=count)
    edges = np.fromiter(
        (s.edges_explored for s in samples), np.int64, count=count
    )
    path_offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(
        np.fromiter((s.nodes.size for s in samples), np.int64, count=count),
        out=path_offsets[1:],
    )
    path_flat = (
        np.concatenate([s.nodes for s in samples])
        if count
        else np.empty(0, dtype=np.int64)
    )
    covers = [
        np.unique(coverage_nodes(s, include_endpoints)) for s in samples
    ]
    cov_offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(
        np.fromiter((c.size for c in covers), np.int64, count=count),
        out=cov_offsets[1:],
    )
    cov_flat = (
        np.concatenate(covers) if count else np.empty(0, dtype=np.int64)
    )
    return PackedSamples(
        sources,
        targets,
        distances,
        sigmas,
        edges,
        np.ascontiguousarray(path_flat, dtype=np.int64),
        path_offsets,
        np.ascontiguousarray(cov_flat, dtype=np.int64),
        cov_offsets,
    )


def unpack_samples(packed: PackedSamples) -> list[PathSample]:
    """Materialize the :class:`~repro.paths.sampler.PathSample` objects
    of one packed epoch (the ``draw()`` compatibility path)."""
    offsets = packed.path_offsets
    return [
        PathSample(
            source=int(packed.sources[i]),
            target=int(packed.targets[i]),
            nodes=packed.path_flat[offsets[i] : offsets[i + 1]],
            distance=int(packed.distances[i]),
            sigma_st=float(packed.sigmas[i]),
            edges_explored=int(packed.edges[i]),
        )
        for i in range(len(packed))
    ]
