"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  Input-validation problems raise
:class:`GraphError` or :class:`ParameterError`; algorithm-level failures
(e.g. an adaptive loop that exhausted its iteration budget) raise
:class:`AlgorithmError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """A graph is malformed or an operation received an invalid graph."""


class ParameterError(ReproError, ValueError):
    """An algorithm or constructor received an out-of-range parameter."""


class AlgorithmError(ReproError):
    """An algorithm could not complete (e.g. iteration budget exhausted)."""


class EngineError(ReproError):
    """An execution engine failed to serve a draw (e.g. a worker chunk
    raised); the engine itself remains usable afterwards."""


class InvariantViolation(ReproError):
    """A ``debug=True`` invariant check found inconsistent state (a
    sampled path that is not a shortest path, or coverage bookkeeping
    that does not match a recount)."""


class DatasetError(ReproError):
    """A named dataset is unknown or could not be materialized."""


class CheckpointError(ReproError):
    """A sampling-session checkpoint could not be written, read, or
    applied (corrupt file, mismatched graph, incompatible provenance)."""


class ServeError(ReproError):
    """The query daemon rejected a request (malformed frame, unknown
    dataset or algorithm, out-of-range parameters) or could not start."""


class SessionInterrupted(ReproError):
    """A run stopped deliberately after writing a checkpoint
    (``stop_after_checkpoints``); resume from the reported path to
    continue bit-identically."""

    path: str
    checkpoints: int

    def __init__(self, path: str, checkpoints: int) -> None:
        super().__init__(
            f"run interrupted after {checkpoints} checkpoint(s); "
            f"resume from {path!r}"
        )
        self.path = path
        self.checkpoints = checkpoints
