"""Incidence structure between sampled paths and the nodes they visit.

Every sampling algorithm in the paper reduces top-K GBC to *maximum
coverage*: each sampled shortest path is a hyperedge over the nodes it
visits, and a group of K nodes should cover (intersect) as many
hyperedges as possible.  :class:`CoverageInstance` stores that
incidence incrementally — AdaAlg keeps growing the same sample set
across iterations, so paths are appended, never rebuilt.

Storage is flat-array CSR, not Python containers: path node sets live
in one concatenated int64 array addressed by an offsets array, and the
node→path incidence is a CSR built lazily from those arrays the first
time a query needs it after an append.  Appends invalidate the
incidence; the rebuild is a single stable argsort over the flat array,
so with the geometric growth schedules of the algorithms its amortized
cost stays linear in the final sample volume.  All coverage queries
(:meth:`covered_count`, :meth:`marginal_gain`, ...) are vectorized
gathers over these arrays — the kernels CELF consumes directly.

Null samples (empty node arrays, from disconnected pairs) are stored
too: they are covered by no node but count toward the sample size,
which the unbiased estimator divides by.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError

__all__ = ["CoverageInstance"]

_INITIAL_CAPACITY = 64


def _grow(array: np.ndarray, needed: int) -> np.ndarray:
    """Return ``array`` with capacity of at least ``needed`` (amortized
    doubling; contents up to the old size are preserved)."""
    capacity = array.size
    if needed <= capacity:
        return array
    while capacity < needed:
        capacity *= 2
    grown = np.empty(capacity, dtype=array.dtype)
    grown[: array.size] = array
    return grown


class CoverageInstance:
    """A growable set of node-subsets ("paths") supporting coverage queries.

    Attributes
    ----------
    num_nodes:
        Size of the node universe (paths may only mention ids below it).
    num_paths:
        Number of paths added so far, nulls included.
    """

    def __init__(self, num_nodes: int, *, debug: bool = False):
        if num_nodes < 0:
            raise ParameterError("num_nodes must be non-negative")
        self.num_nodes = num_nodes
        #: Runtime half of the static RPR202 rule: under ``debug=True``
        #: every array escaping this instance (:meth:`path`,
        #: :meth:`paths_through_array`, exported snapshots) is returned
        #: with ``writeable=False``, so an accidental in-place write by
        #: a caller raises instead of silently corrupting the pool.
        self.debug = bool(debug)
        self._flat = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._flat_len = 0
        self._offsets = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._num_paths = 0
        self._degrees = np.zeros(num_nodes, dtype=np.int64)
        # node -> path CSR incidence, rebuilt lazily after appends
        self._inc_indptr: np.ndarray | None = None
        self._inc_paths: np.ndarray | None = None
        # every append->query transition re-argsorts the whole flat
        # array; these counters make that hidden cost observable
        # (surfaced as EngineStats.coverage_* and telemetry coverage.*)
        self.rebuilds = 0
        self.rebuilt_elements = 0
        # sample-invalidation accounting (repro.graph.delta updates):
        # compaction passes executed and paths dropped across them
        self.removals = 0
        self.removed_paths = 0

    # ------------------------------------------------------------------
    def _escape(self, array: np.ndarray) -> np.ndarray:
        """Sanitize an array that is about to leave the instance.

        A no-op unless ``debug`` is on, in which case the caller gets a
        read-only view; the writable base stays private so appends and
        rebuilds are unaffected.
        """
        if self.debug:
            array = array.view()
            array.setflags(write=False)
        return array

    # ------------------------------------------------------------------
    @property
    def num_paths(self) -> int:
        """Number of stored paths (null samples included)."""
        return self._num_paths

    def add_path(self, nodes) -> int:
        """Append one path; returns its id.  ``nodes`` may be empty."""
        arr = np.unique(np.asarray(nodes, dtype=np.int64))
        if arr.size and (arr[0] < 0 or arr[-1] >= self.num_nodes):
            raise ParameterError("path mentions node ids outside the universe")
        pid = self._num_paths
        end = self._flat_len + arr.size
        self._flat = _grow(self._flat, end)
        self._flat[self._flat_len : end] = arr
        self._flat_len = end
        self._offsets = _grow(self._offsets, pid + 2)
        self._offsets[pid + 1] = end
        self._num_paths = pid + 1
        self._degrees[arr] += 1
        self._inc_indptr = None
        self._inc_paths = None
        return pid

    def add_paths(self, paths) -> None:
        """Append many paths (any iterable of node iterables)."""
        for nodes in paths:
            self.add_path(nodes)

    def add_paths_packed(self, flat: np.ndarray, offsets: np.ndarray) -> None:
        """Append many paths at once from a packed (flat, offsets) pair.

        ``flat`` concatenates the node sets, ``offsets`` delimits them
        (``offsets[0] == 0``, ``offsets[-1] == flat.size``); segment
        ``i`` is ``flat[offsets[i]:offsets[i+1]]``.  **Each segment
        must already be sorted and deduplicated** — the layout
        :func:`repro.engine.wire.pack_samples` produces — because the
        per-path ``np.unique`` is skipped here; that is the point: one
        vectorized append per epoch instead of one Python call per
        path.  Empty segments (null samples) are fine.
        """
        flat = np.ascontiguousarray(flat, dtype=np.int64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size == 0 or offsets[0] != 0:
            raise ParameterError("offsets must be 1-D and start at 0")
        if offsets[-1] != flat.size or np.any(np.diff(offsets) < 0):
            raise ParameterError(
                "offsets must be non-decreasing and end at flat.size"
            )
        if flat.size and (flat.min() < 0 or flat.max() >= self.num_nodes):
            raise ParameterError("path mentions node ids outside the universe")
        if self.debug and flat.size:
            # verify the sorted-unique precondition: within a segment
            # every step must strictly increase
            rising = flat[1:] > flat[:-1]
            # comparisons that straddle a segment boundary are exempt
            boundary = offsets[1:-1]
            boundary = boundary[(boundary > 0) & (boundary < flat.size)]
            rising[boundary - 1] = True
            if not bool(rising.all()):
                raise ParameterError(
                    "packed path segments must be sorted and deduplicated"
                )
        count = offsets.size - 1
        end = self._flat_len + flat.size
        self._flat = _grow(self._flat, end)
        self._flat[self._flat_len : end] = flat
        self._offsets = _grow(self._offsets, self._num_paths + count + 1)
        self._offsets[self._num_paths + 1 : self._num_paths + count + 1] = (
            offsets[1:] + self._flat_len
        )
        self._flat_len = end
        self._num_paths += count
        np.add.at(self._degrees, flat, 1)
        self._inc_indptr = None
        self._inc_paths = None

    def remove_paths(self, drop: np.ndarray) -> int:
        """Drop every path flagged in the boolean mask ``drop``.

        Surviving paths are compacted in place (ids shift down, order
        preserved) and the degrees are recounted from the compacted
        flat array; the node→path incidence is invalidated and rebuilt
        lazily like after an append.  Returns the number of paths
        dropped and bumps the ``removals`` / ``removed_paths``
        counters.
        """
        drop = np.asarray(drop, dtype=bool)
        if drop.shape != (self._num_paths,):
            raise ParameterError(
                f"drop mask must have shape ({self._num_paths},), got "
                f"{drop.shape}"
            )
        dropped = int(np.count_nonzero(drop))
        if dropped == 0:
            return 0
        lengths = np.diff(self._offsets[: self._num_paths + 1])
        keep = ~drop
        flat = self._flat[: self._flat_len][np.repeat(keep, lengths)]
        kept_lengths = lengths[keep]
        count = int(kept_lengths.size)
        self._flat = _grow(np.empty(_INITIAL_CAPACITY, dtype=np.int64), flat.size)
        self._flat[: flat.size] = flat
        self._flat_len = int(flat.size)
        self._offsets = np.zeros(
            max(_INITIAL_CAPACITY, count + 1), dtype=np.int64
        )
        np.cumsum(kept_lengths, out=self._offsets[1 : count + 1])
        self._num_paths = count
        self._degrees = np.bincount(
            flat, minlength=self.num_nodes
        ).astype(np.int64)
        self._inc_indptr = None
        self._inc_paths = None
        self.removals += 1
        self.removed_paths += dropped
        return dropped

    def path(self, pid: int) -> np.ndarray:
        """The (sorted, deduplicated) node array of path ``pid``."""
        if pid < 0:
            pid += self._num_paths
        if not 0 <= pid < self._num_paths:
            raise IndexError(f"path id {pid} out of range")
        return self._escape(
            self._flat[self._offsets[pid] : self._offsets[pid + 1]]
        )

    # ------------------------------------------------------------------
    def _incidence(self) -> tuple[np.ndarray, np.ndarray]:
        """The node→path CSR ``(indptr, path_ids)``, rebuilt if stale."""
        if self._inc_indptr is None:
            flat = self._flat[: self._flat_len]
            indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            np.cumsum(self._degrees, out=indptr[1:])
            lengths = np.diff(self._offsets[: self._num_paths + 1])
            path_ids = np.repeat(
                np.arange(self._num_paths, dtype=np.int64), lengths
            )
            order = np.argsort(flat, kind="stable")
            self._inc_indptr = indptr
            self._inc_paths = path_ids[order]
            self.rebuilds += 1
            self.rebuilt_elements += int(self._flat_len)
        return self._inc_indptr, self._inc_paths

    def paths_through_array(self, node: int) -> np.ndarray:
        """Ids of all paths visiting ``node`` as a read-only array view
        (ascending order — paths are appended with increasing ids)."""
        if not 0 <= node < self.num_nodes:
            return np.empty(0, dtype=np.int64)
        indptr, path_ids = self._incidence()
        return self._escape(path_ids[indptr[node] : indptr[node + 1]])

    def paths_through(self, node: int) -> list[int]:
        """Ids of all paths visiting ``node``."""
        return self.paths_through_array(int(node)).tolist()

    def degree(self, node: int) -> int:
        """Number of paths visiting ``node``."""
        node = int(node)
        if not 0 <= node < self.num_nodes:
            return 0
        return int(self._degrees[node])

    def degrees(self) -> np.ndarray:
        """Vector of all node degrees (a defensive copy)."""
        return self._degrees.copy()

    # ------------------------------------------------------------------
    def _member_array(self, group) -> np.ndarray:
        members = np.unique(np.asarray(list(group), dtype=np.int64))
        if members.size and (
            members[0] < 0 or members[-1] >= self.num_nodes
        ):
            raise ParameterError("group mentions node ids outside the universe")
        return members

    def covered_mask(self, group) -> np.ndarray:
        """Boolean mask over paths: which are hit by at least one member.

        One vectorized gather over the incidence CSR, shared by
        :meth:`covered_count` and the greedy/CELF kernels.
        """
        covered = np.zeros(self._num_paths, dtype=bool)
        members = self._member_array(group)
        if members.size == 0 or self._num_paths == 0:
            return covered
        indptr, path_ids = self._incidence()
        counts = indptr[members + 1] - indptr[members]
        total = int(counts.sum())
        if total == 0:
            return covered
        starts = np.repeat(indptr[members], counts)
        shifts = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        covered[path_ids[starts + shifts]] = True
        return covered

    def covered_count(self, group) -> int:
        """How many stored paths contain at least one node of ``group``.

        This is the quantity ``L'`` in the paper's estimators
        (Eqs. 4 and 8).
        """
        return int(self.covered_mask(group).sum())

    def coverage_fraction(self, group) -> float:
        """``covered_count / num_paths`` (0 on an empty instance)."""
        if self._num_paths == 0:
            return 0.0
        return self.covered_count(group) / self._num_paths

    # ------------------------------------------------------------------
    # marginal-gain kernels (consumed by greedy_max_cover / CELF)
    # ------------------------------------------------------------------
    def marginal_gain(self, node: int, covered: np.ndarray) -> int:
        """Paths through ``node`` not yet flagged in ``covered``."""
        pids = self.paths_through_array(int(node))
        if pids.size == 0:
            return 0
        return int(np.count_nonzero(~covered[pids]))

    def mark_covered(self, node: int, covered: np.ndarray) -> None:
        """Flag every path through ``node`` in the ``covered`` mask."""
        pids = self.paths_through_array(int(node))
        if pids.size:
            covered[pids] = True

    def marginal_gains(self, nodes, covered: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`marginal_gain` for a batch of candidates."""
        nodes = np.asarray(nodes, dtype=np.int64)
        gains = np.zeros(nodes.size, dtype=np.int64)
        if nodes.size == 0 or self._num_paths == 0:
            return gains
        if nodes.min() < 0 or nodes.max() >= self.num_nodes:
            raise ParameterError("candidates mention node ids outside the universe")
        indptr, path_ids = self._incidence()
        counts = indptr[nodes + 1] - indptr[nodes]
        total = int(counts.sum())
        if total == 0:
            return gains
        starts = np.repeat(indptr[nodes], counts)
        shifts = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        fresh = ~covered[path_ids[starts + shifts]]
        owner = np.repeat(np.arange(nodes.size), counts)
        np.add.at(gains, owner, fresh.astype(np.int64))
        return gains
