"""Incidence structure between sampled paths and the nodes they visit.

Every sampling algorithm in the paper reduces top-K GBC to *maximum
coverage*: each sampled shortest path is a hyperedge over the nodes it
visits, and a group of K nodes should cover (intersect) as many
hyperedges as possible.  :class:`CoverageInstance` stores that
incidence incrementally — AdaAlg keeps growing the same sample set
across iterations, so paths are appended, never rebuilt.

Null samples (empty node arrays, from disconnected pairs) are stored
too: they are covered by no node but count toward the sample size,
which the unbiased estimator divides by.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError

__all__ = ["CoverageInstance"]


class CoverageInstance:
    """A growable set of node-subsets ("paths") supporting coverage queries.

    Attributes
    ----------
    num_nodes:
        Size of the node universe (paths may only mention ids below it).
    num_paths:
        Number of paths added so far, nulls included.
    """

    def __init__(self, num_nodes: int):
        if num_nodes < 0:
            raise ParameterError("num_nodes must be non-negative")
        self.num_nodes = num_nodes
        self._paths: list[np.ndarray] = []
        self._node_to_paths: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    @property
    def num_paths(self) -> int:
        """Number of stored paths (null samples included)."""
        return len(self._paths)

    def add_path(self, nodes) -> int:
        """Append one path; returns its id.  ``nodes`` may be empty."""
        arr = np.unique(np.asarray(nodes, dtype=np.int64))
        if arr.size and (arr[0] < 0 or arr[-1] >= self.num_nodes):
            raise ParameterError("path mentions node ids outside the universe")
        pid = len(self._paths)
        self._paths.append(arr)
        for v in arr:
            self._node_to_paths.setdefault(int(v), []).append(pid)
        return pid

    def add_paths(self, paths) -> None:
        """Append many paths (any iterable of node iterables)."""
        for nodes in paths:
            self.add_path(nodes)

    def path(self, pid: int) -> np.ndarray:
        """The (sorted, deduplicated) node array of path ``pid``."""
        return self._paths[pid]

    def paths_through(self, node: int) -> list[int]:
        """Ids of all paths visiting ``node``."""
        return list(self._node_to_paths.get(int(node), ()))

    def degree(self, node: int) -> int:
        """Number of paths visiting ``node``."""
        return len(self._node_to_paths.get(int(node), ()))

    # ------------------------------------------------------------------
    def covered_count(self, group) -> int:
        """How many stored paths contain at least one node of ``group``.

        This is the quantity ``L'`` in the paper's estimators
        (Eqs. 4 and 8).
        """
        members = np.asarray(list(group), dtype=np.int64)
        if members.size == 0:
            return 0
        if members.min() < 0 or members.max() >= self.num_nodes:
            raise ParameterError("group mentions node ids outside the universe")
        covered = np.zeros(self.num_paths, dtype=bool)
        for v in np.unique(members):
            pids = self._node_to_paths.get(int(v))
            if pids:
                covered[pids] = True
        return int(covered.sum())

    def coverage_fraction(self, group) -> float:
        """``covered_count / num_paths`` (0 on an empty instance)."""
        if self.num_paths == 0:
            return 0.0
        return self.covered_count(group) / self.num_paths
