"""Lazy greedy (CELF) maximum coverage with batched re-evaluation.

The classic (1 - 1/e)-approximation for maximum coverage [Nemhauser et
al. 1978], accelerated with the CELF lazy-evaluation trick: marginal
gains of a monotone submodular function only shrink as the solution
grows, so a stale heap entry whose re-evaluated gain still tops the
heap is guaranteed optimal for this round.  On the path hypergraphs
produced by the samplers this typically evaluates a small fraction of
the candidate nodes per round.

Stale entries are re-evaluated in *batches*: instead of paying one
:meth:`~repro.coverage.hypergraph.CoverageInstance.marginal_gain` call
per popped candidate, up to ``batch`` consecutive stale pops are
collected and priced through one vectorized
:meth:`~repro.coverage.hypergraph.CoverageInstance.marginal_gains`
pass.  The selected groups (and their gains) are identical for every
batch size — batching only changes *when* exact gains are computed,
never which fresh entry wins a round — so ``batch`` is a pure
throughput knob.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..obs import as_telemetry
from .hypergraph import CoverageInstance

__all__ = ["DEFAULT_EVAL_BATCH", "GreedyCoverResult", "greedy_max_cover"]

#: Default number of stale heap entries re-priced per vectorized pass.
DEFAULT_EVAL_BATCH = 16


@dataclass(frozen=True)
class GreedyCoverResult:
    """Outcome of one greedy max-cover run.

    Attributes
    ----------
    group:
        The selected node ids, in pick order (padded nodes last).
    covered:
        Total number of paths covered by the group — the paper's ``L'``.
    gains:
        Marginal number of newly covered paths per pick (0 for padding).
    evaluations:
        How many gain evaluations the lazy greedy performed (a CELF
        efficiency diagnostic; plain greedy would use ``K * n``).
    eval_batches:
        How many vectorized :meth:`marginal_gains` passes those
        evaluations were amortized over (equals ``evaluations`` when
        ``batch=1``).
    """

    group: list[int]
    covered: int
    gains: list[int]
    evaluations: int
    eval_batches: int = 0


def greedy_max_cover(
    instance: CoverageInstance,
    k: int,
    pad: bool = True,
    batch: int = DEFAULT_EVAL_BATCH,
    telemetry=None,
) -> GreedyCoverResult:
    """Pick ``k`` nodes covering as many paths of ``instance`` as possible.

    Parameters
    ----------
    k:
        Group size.  Must not exceed the node universe.
    pad:
        When fewer than ``k`` nodes have positive marginal gain (small
        sample sets), fill the group with unused node ids so that it
        has exactly ``k`` members — the problem statement asks for a
        group of exactly ``K`` nodes and extra members never hurt.
    batch:
        Stale heap entries collected per vectorized re-evaluation pass.
        Result-invariant; ``1`` reproduces the entry-at-a-time CELF
        evaluation schedule exactly.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` hub; each vectorized
        pass reports its size on the ``coverage.batched_evals`` counter.
    """
    if k < 1:
        raise ParameterError("group size k must be >= 1")
    if k > instance.num_nodes:
        raise ParameterError(
            f"group size k={k} exceeds the node universe {instance.num_nodes}"
        )
    if batch < 1:
        raise ParameterError(f"evaluation batch size must be >= 1, got {batch}")
    hub = as_telemetry(telemetry)

    covered = np.zeros(instance.num_paths, dtype=bool)
    chosen: list[int] = []
    gains: list[int] = []
    evaluations = 0
    eval_batches = 0

    # heap of (-gain, node); gains recorded at push time may be stale.
    # The initial gains are exact degrees, read as one vector.
    degrees = instance.degrees()
    heap: list[tuple[int, int]] = [
        (-int(degrees[node]), int(node)) for node in np.flatnonzero(degrees > 0)
    ]
    heapq.heapify(heap)
    # node -> round when its gain was last computed.  The initial degree
    # entries are exact for round 0, so they are seeded as fresh — the
    # first pop of the run is accepted without a redundant re-evaluation
    # (gains only shrink, so the top exact entry is optimal as-is).
    fresh_for_round = {node: 0 for _neg_gain, node in heap}

    round_no = 0
    # stale candidates popped but not yet re-priced this round
    pending: list[int] = []

    def flush() -> None:
        """Price every pending candidate in one vectorized pass and
        push the still-useful ones back onto the heap."""
        nonlocal evaluations, eval_batches
        fresh_gains = instance.marginal_gains(
            np.asarray(pending, dtype=np.int64), covered
        )
        evaluations += len(pending)
        eval_batches += 1
        hub.count("coverage.batched_evals", len(pending))
        for node, gain in zip(pending, fresh_gains.tolist()):
            fresh_for_round[node] = round_no
            if gain > 0:
                heapq.heappush(heap, (-gain, node))
        pending.clear()

    while len(chosen) < k:
        if not heap:
            if pending:
                flush()
                continue
            break
        neg_gain, node = heapq.heappop(heap)
        if fresh_for_round.get(node) == round_no:
            if pending:
                # A fresh top may only be accepted once every collected
                # candidate has re-entered the contest with its exact
                # gain: push it back unchanged and settle the batch
                # first.  (Heap order is a pure function of contents —
                # ``(-gain, node)`` keys never tie — so deferring the
                # pop cannot change which entry wins the round.)
                heapq.heappush(heap, (neg_gain, node))
                flush()
                continue
            gain = -neg_gain
            if gain <= 0:
                break
            chosen.append(node)
            gains.append(gain)
            instance.mark_covered(node, covered)
            round_no += 1
            continue
        # stale entry: collect it for the next vectorized re-evaluation
        pending.append(node)
        if len(pending) >= batch:
            flush()

    if pad and len(chosen) < k:
        in_group = set(chosen)
        filler = (v for v in range(instance.num_nodes) if v not in in_group)
        while len(chosen) < k:
            chosen.append(next(filler))
            gains.append(0)

    return GreedyCoverResult(
        group=chosen,
        covered=int(covered.sum()),
        gains=gains,
        evaluations=evaluations,
        eval_batches=eval_batches,
    )
