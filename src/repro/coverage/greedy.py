"""Lazy greedy (CELF) maximum coverage.

The classic (1 - 1/e)-approximation for maximum coverage [Nemhauser et
al. 1978], accelerated with the CELF lazy-evaluation trick: marginal
gains of a monotone submodular function only shrink as the solution
grows, so a stale heap entry whose re-evaluated gain still tops the
heap is guaranteed optimal for this round.  On the path hypergraphs
produced by the samplers this typically evaluates a small fraction of
the candidate nodes per round.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from .hypergraph import CoverageInstance

__all__ = ["GreedyCoverResult", "greedy_max_cover"]


@dataclass(frozen=True)
class GreedyCoverResult:
    """Outcome of one greedy max-cover run.

    Attributes
    ----------
    group:
        The selected node ids, in pick order (padded nodes last).
    covered:
        Total number of paths covered by the group — the paper's ``L'``.
    gains:
        Marginal number of newly covered paths per pick (0 for padding).
    evaluations:
        How many gain evaluations the lazy greedy performed (a CELF
        efficiency diagnostic; plain greedy would use ``K * n``).
    """

    group: list[int]
    covered: int
    gains: list[int]
    evaluations: int


def greedy_max_cover(
    instance: CoverageInstance, k: int, pad: bool = True
) -> GreedyCoverResult:
    """Pick ``k`` nodes covering as many paths of ``instance`` as possible.

    Parameters
    ----------
    k:
        Group size.  Must not exceed the node universe.
    pad:
        When fewer than ``k`` nodes have positive marginal gain (small
        sample sets), fill the group with unused node ids so that it
        has exactly ``k`` members — the problem statement asks for a
        group of exactly ``K`` nodes and extra members never hurt.
    """
    if k < 1:
        raise ParameterError("group size k must be >= 1")
    if k > instance.num_nodes:
        raise ParameterError(
            f"group size k={k} exceeds the node universe {instance.num_nodes}"
        )

    covered = np.zeros(instance.num_paths, dtype=bool)
    chosen: list[int] = []
    gains: list[int] = []
    evaluations = 0

    # heap of (-gain, node); gains recorded at push time may be stale.
    # The initial gains are exact degrees, read as one vector.
    degrees = instance.degrees()
    heap: list[tuple[int, int]] = [
        (-int(degrees[node]), int(node)) for node in np.flatnonzero(degrees > 0)
    ]
    heapq.heapify(heap)
    # node -> round when its gain was last computed.  The initial degree
    # entries are exact for round 0, so they are seeded as fresh — the
    # first pop of the run is accepted without a redundant re-evaluation
    # (gains only shrink, so the top exact entry is optimal as-is).
    fresh_for_round = {node: 0 for _neg_gain, node in heap}

    round_no = 0
    while heap and len(chosen) < k:
        neg_gain, node = heapq.heappop(heap)
        if fresh_for_round.get(node) == round_no:
            gain = -neg_gain
            if gain <= 0:
                break
            chosen.append(node)
            gains.append(gain)
            instance.mark_covered(node, covered)
            round_no += 1
            continue
        # stale entry: re-evaluate against the current cover
        gain = instance.marginal_gain(node, covered)
        evaluations += 1
        fresh_for_round[node] = round_no
        if gain > 0:
            heapq.heappush(heap, (-gain, node))

    if pad and len(chosen) < k:
        in_group = set(chosen)
        filler = (v for v in range(instance.num_nodes) if v not in in_group)
        while len(chosen) < k:
            chosen.append(next(filler))
            gains.append(0)

    return GreedyCoverResult(
        group=chosen,
        covered=int(covered.sum()),
        gains=gains,
        evaluations=evaluations,
    )
