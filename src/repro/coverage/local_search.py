"""Swap local search — optional refinement of a greedy cover.

Greedy max coverage is (1 - 1/e)-optimal, but on concrete instances a
round of single-swap local search often recovers part of the remaining
gap: for each group member, check whether replacing it with the best
outside node increases the number of covered paths; repeat until no
swap improves.  The refined group never covers fewer paths than the
input group, so it can only improve the centrality estimate.

This is a "future work"-grade extension (the paper returns the greedy
group as-is); the ablation benchmark measures how much it buys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from .hypergraph import CoverageInstance

__all__ = ["LocalSearchResult", "swap_local_search"]


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of a swap local-search run.

    Attributes
    ----------
    group:
        The refined group (same size as the input).
    covered:
        Paths covered by the refined group.
    swaps:
        Number of improving swaps applied.
    rounds:
        Full passes over the group performed.
    """

    group: list[int]
    covered: int
    swaps: int
    rounds: int


def swap_local_search(
    instance: CoverageInstance, group, max_rounds: int = 10
) -> LocalSearchResult:
    """Improve ``group`` by single-node swaps until a local optimum.

    Each pass considers every member in turn: with that member removed,
    the node (inside or outside the group) covering the most
    currently-uncovered paths takes its slot.  Terminates after
    ``max_rounds`` passes or the first pass with no improving swap.
    """
    members = list(dict.fromkeys(int(v) for v in group))
    if len(members) != len(list(group)):
        raise ParameterError("group must not contain duplicate nodes")
    for v in members:
        if not 0 <= v < instance.num_nodes:
            raise ParameterError("group mentions node ids outside the universe")
    if max_rounds < 1:
        raise ParameterError("max_rounds must be >= 1")

    # per-path coverage multiplicity lets us remove a member in O(deg)
    multiplicity = np.zeros(instance.num_paths, dtype=np.int32)
    for v in members:
        multiplicity[instance.paths_through_array(v)] += 1

    swaps = 0
    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        improved = False
        for slot, current in enumerate(members):
            multiplicity[instance.paths_through_array(current)] -= 1
            uncovered = multiplicity == 0
            in_group = set(members) - {current}

            best_node, best_gain = current, int(
                np.count_nonzero(uncovered[instance.paths_through_array(current)])
            )
            for candidate in range(instance.num_nodes):
                if candidate in in_group or candidate == current:
                    continue
                pids = instance.paths_through_array(candidate)
                if pids.size == 0:
                    continue
                gain = int(np.count_nonzero(uncovered[pids]))
                if gain > best_gain:
                    best_node, best_gain = candidate, gain
            if best_node != current:
                members[slot] = best_node
                swaps += 1
                improved = True
            multiplicity[instance.paths_through_array(members[slot])] += 1
        if not improved:
            break

    covered = int(np.count_nonzero(multiplicity > 0))
    return LocalSearchResult(
        group=members, covered=covered, swaps=swaps, rounds=rounds
    )
