"""Maximum-coverage substrate: path/node incidence + lazy greedy."""

from .greedy import DEFAULT_EVAL_BATCH, GreedyCoverResult, greedy_max_cover
from .hypergraph import CoverageInstance
from .local_search import LocalSearchResult, swap_local_search

__all__ = [
    "CoverageInstance",
    "DEFAULT_EVAL_BATCH",
    "GreedyCoverResult",
    "greedy_max_cover",
    "LocalSearchResult",
    "swap_local_search",
]
