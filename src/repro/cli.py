"""Command-line interface: ``repro-gbc`` (or ``python -m repro``).

Subcommands
-----------
``run``
    Run one algorithm on a dataset (or an edge-list file) and print the
    found group, its estimated centrality, and the sample count.  With
    ``--checkpoint PATH`` the run snapshots its sampling session at
    iteration boundaries, so a killed run can be continued with
    ``resume`` — bit-identically to an uninterrupted run.
``resume``
    Continue a checkpointed ``run`` from its snapshot file.
``compare``
    Run several algorithms head-to-head on the same graph and print a
    comparison table (quality, samples, time).
``experiment``
    Regenerate one of the paper's tables/figures at a chosen preset,
    optionally exporting the rows (``--output result.csv|.json``).
``serve``
    Run the resident GBC-as-a-service daemon: load datasets once, keep
    warm sampling lanes, answer concurrent top-K queries over a
    line-delimited JSON TCP/Unix-socket API with result caching and
    request coalescing (see ``docs/serving.md``).
``mutate``
    Apply an edge-delta file (``+ u v [w]`` / ``- u v`` / ``= u v w``)
    to a run checkpoint, an mmap graph directory, or a dataset held by
    a running ``serve`` daemon — invalidating exactly the stored
    samples that traversed the mutated region and keeping the rest
    (see ``docs/dynamic-graphs.md``).
``datasets``
    List the Table I registry.
``check``
    Run the project's static-analysis pass (:mod:`repro.checks`) over
    source trees — determinism, RNG hygiene, cross-process safety,
    telemetry and exception discipline.  Exit 1 on any finding.

Exit codes: 0 success, 3 when ``--stop-after-checkpoints`` interrupted
the run on purpose (the checkpoint is ready to ``resume``).

Examples
--------
::

    repro-gbc run --algorithm adaalg --dataset GrQc -k 20 --eps 0.3
    repro-gbc run --algorithm hedge --edge-list my_graph.txt -k 10
    repro-gbc run --algorithm adaalg --dataset GrQc -k 20 \
        --engine epoch --workers 4 --epoch-size 4096 --mmap graph.mmap
    repro-gbc run --algorithm adaalg --dataset GrQc -k 20 \
        --checkpoint run.ckpt.npz --checkpoint-every 2
    repro-gbc resume run.ckpt.npz
    repro-gbc compare --dataset GrQc -k 20
    repro-gbc experiment fig4 --preset smoke --output fig4.csv
    repro-gbc datasets
    repro-gbc check src/repro --format json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

from .algorithms import (
    AdaAlg,
    BruteForce,
    CentRa,
    Exhaust,
    Hedge,
    PuzisGreedy,
    YoshidaSketch,
)
from .datasets import DATASETS, load
from .engine import ENGINES, KERNELS
from .exceptions import CheckpointError, SessionInterrupted
from .experiments import (
    BENCH,
    FULL,
    REDUCED,
    SMOKE,
    run_base_sweep,
    run_endpoint_ablation,
    run_eps_sweep,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_local_search_ablation,
    run_pair_vs_path,
    run_sampler_work,
    run_strategy_comparison,
    run_work_scaling,
    run_table1,
    run_validation_set_ablation,
    write_result,
)
from .experiments.report import format_table
from .graph import (
    giant_component,
    is_mmap_graph,
    load_mmap,
    read_edge_list,
    read_weighted_edge_list,
    save_mmap,
)
from .obs import CallbackSink, JsonlSink, Telemetry
from .paths import exact_gbc
from .serve.protocol import result_payload
from .session import SamplingSession

__all__ = ["main", "build_parser"]

#: Exit code of a run deliberately interrupted by --stop-after-checkpoints.
EXIT_INTERRUPTED = 3

_PRESETS = {"smoke": SMOKE, "bench": BENCH, "reduced": REDUCED, "full": FULL}
_EXPERIMENTS = {
    "table1": lambda cfg: run_table1(cfg),
    "fig1": lambda cfg: run_fig1(cfg),
    "fig2": lambda cfg: run_fig2(cfg),
    "fig3": lambda cfg: run_fig3(cfg),
    "fig4": lambda cfg: run_fig4(cfg),
    "fig5": lambda cfg: run_fig5(cfg),
    "sweep-warmstart": lambda cfg: run_eps_sweep(cfg),
    "ablation-base": lambda cfg: run_base_sweep(cfg),
    "ablation-work": lambda cfg: run_sampler_work(cfg),
    "ablation-endpoints": lambda cfg: run_endpoint_ablation(cfg),
    "ablation-strategies": lambda cfg: run_strategy_comparison(cfg),
    "ablation-pairs": lambda cfg: run_pair_vs_path(cfg),
    "ablation-validation": lambda cfg: run_validation_set_ablation(cfg),
    "ablation-localsearch": lambda cfg: run_local_search_ablation(cfg),
    "ablation-scaling": lambda cfg: run_work_scaling(cfg),
}

#: Checkpoint ``state["algorithm"]`` name → CLI algorithm key.
_ALGORITHM_KEYS = {
    "AdaAlg": "adaalg",
    "HEDGE": "hedge",
    "CentRa": "centra",
    "EXHAUST": "exhaust",
}

#: CLI algorithm keys that support --checkpoint / resume.
_CHECKPOINTABLE = frozenset(_ALGORITHM_KEYS.values())


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-gbc",
        description="Top-K group betweenness centrality (AdaAlg reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_source(parser_):
        source = parser_.add_mutually_exclusive_group(required=True)
        source.add_argument(
            "--dataset", help="registry dataset name (see `datasets`)"
        )
        source.add_argument("--edge-list", help="path to a SNAP-style edge list")
        parser_.add_argument(
            "--directed", action="store_true", help="edge list is directed"
        )
        parser_.add_argument(
            "--weighted",
            action="store_true",
            help="edge list has a third integer-weight column",
        )
        parser_.add_argument(
            "--whole-graph",
            action="store_true",
            help="do not restrict to the giant component",
        )
        parser_.add_argument("--seed", type=int, default=0, help="random seed")
        parser_.add_argument(
            "--engine",
            choices=sorted(ENGINES),
            default="serial",
            help="execution engine for path sampling (default serial)",
        )
        parser_.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker processes for --engine process/epoch "
            "(default: all cores)",
        )
        parser_.add_argument(
            "--epoch-size",
            type=int,
            default=None,
            metavar="N",
            help="samples per epoch for --engine epoch (default: engine "
            "default; results depend on (seed, epoch-size), never on "
            "--workers)",
        )
        parser_.add_argument(
            "--mmap",
            nargs="?",
            const="",
            default=None,
            metavar="DIR",
            help="sample out-of-core: spill the loaded graph to the "
            "on-disk memory-mapped format at DIR (a temporary "
            "directory when omitted) and reopen it via np.memmap; "
            "workers attach read-only without copying. An --edge-list "
            "pointing at an existing mmap directory is opened "
            "directly.",
        )
        parser_.add_argument(
            "--kernel",
            choices=list(KERNELS),
            default="wavefront",
            help="traversal kernel for the batch/process/epoch engines "
            "(default wavefront; results are identical across "
            "wavefront and scalar, on unweighted and weighted graphs "
            "alike — weighted inputs run the delta-stepping cohort)",
        )
        parser_.add_argument(
            "--delta",
            type=int,
            default=None,
            metavar="W",
            help="bucket width of the weighted delta-stepping kernel "
            "(default: auto-tuned from the mean edge weight; any value "
            ">= 1 yields identical results — the knob only shifts "
            "kernel work)",
        )
        parser_.add_argument(
            "--cache-sources",
            type=int,
            default=0,
            metavar="N",
            help="LRU-cache up to N forward-BFS trees in the sampler "
            "(default 0 = off)",
        )
        parser_.add_argument(
            "--log-json",
            metavar="PATH",
            default=None,
            help="write run telemetry (spans, per-iteration events, "
            "counters) as JSON lines to PATH",
        )
        parser_.add_argument(
            "--debug-invariants",
            action="store_true",
            help="validate every sampled path and the coverage "
            "bookkeeping while running (slow; for debugging)",
        )
        parser_.add_argument(
            "--progress",
            action="store_true",
            help="print per-iteration progress lines to stderr",
        )

    def add_checkpoint_flags(parser_, resuming: bool):
        parser_.add_argument(
            "--checkpoint",
            metavar="PATH",
            default=None,
            help="snapshot the sampling session to PATH at iteration "
            "boundaries (resume later with `resume PATH`)"
            + ("; defaults to the file being resumed" if resuming else ""),
        )
        parser_.add_argument(
            "--checkpoint-every",
            type=int,
            default=1,
            metavar="N",
            help="iterations between checkpoints (default 1)",
        )
        parser_.add_argument(
            "--stop-after-checkpoints",
            type=int,
            default=None,
            metavar="N",
            help="deliberately stop (exit code 3) once N checkpoints "
            "were written — for testing resume",
        )
        parser_.add_argument(
            "--json",
            metavar="PATH",
            default=None,
            help="also write the result (group, estimates, samples) as "
            "deterministic JSON to PATH",
        )

    run = sub.add_parser("run", help="run one algorithm on one graph")
    add_graph_source(run)
    run.add_argument(
        "--algorithm",
        choices=["adaalg", "hedge", "centra", "exhaust", "yoshida", "puzis", "brute"],
        default="adaalg",
    )
    run.add_argument("-k", type=int, default=20, help="group size (default 20)")
    run.add_argument("--eps", type=float, default=0.3, help="error ratio")
    run.add_argument("--gamma", type=float, default=0.01, help="error probability")
    add_checkpoint_flags(run, resuming=False)

    resume = sub.add_parser(
        "resume", help="continue a checkpointed run from its snapshot"
    )
    resume.add_argument(
        "checkpoint_file", metavar="PATH",
        help="checkpoint written by `run --checkpoint`",
    )
    add_checkpoint_flags(resume, resuming=True)
    resume.add_argument(
        "--log-json",
        metavar="PATH",
        default=None,
        help="write run telemetry as JSON lines to PATH",
    )
    resume.add_argument(
        "--progress",
        action="store_true",
        help="print per-iteration progress lines to stderr",
    )
    resume.add_argument(
        "--debug-invariants",
        action="store_true",
        help="validate every sampled path while running (slow)",
    )

    compare = sub.add_parser(
        "compare", help="run several algorithms head-to-head on one graph"
    )
    add_graph_source(compare)
    compare.add_argument("-k", type=int, default=20, help="group size (default 20)")
    compare.add_argument("--eps", type=float, default=0.3, help="error ratio")
    compare.add_argument("--gamma", type=float, default=0.01, help="error probability")
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["exhaust", "hedge", "centra", "adaalg"],
        choices=["adaalg", "hedge", "centra", "exhaust", "yoshida"],
        help="which algorithms to compare",
    )
    compare.add_argument(
        "--exact",
        action="store_true",
        help="grade each group with the exact GBC (slow on large graphs)",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument(
        "--preset", choices=sorted(_PRESETS), default="smoke", help="scale preset"
    )
    experiment.add_argument("--seed", type=int, default=None, help="override seed")
    experiment.add_argument(
        "--output", default=None, help="also write rows to a .csv or .json file"
    )
    experiment.add_argument(
        "--telemetry",
        action="store_true",
        help="collect in-memory run telemetry for every algorithm run "
        "(recorded in the result metadata)",
    )
    experiment.add_argument(
        "--reuse-sessions",
        action="store_true",
        help="warm-start the sweep: share one growing sample pool per "
        "(dataset, algorithm) across cells (samples_reused lands in "
        "the result metadata)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the resident query daemon (load graphs once, answer "
        "concurrent top-K queries over line-delimited JSON)",
    )
    serve.add_argument(
        "--dataset",
        action="append",
        required=True,
        metavar="NAME",
        help="registry dataset to hold resident (repeatable)",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=0,
        help="graph-materialization seed for synthetic datasets "
        "(default 0); queries whose seed matches answer bit-identically "
        "to `run --seed`",
    )
    serve.add_argument(
        "--whole-graph",
        action="store_true",
        help="do not restrict datasets to their giant component",
    )
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    serve.add_argument(
        "--port",
        type=int,
        default=7332,
        help="TCP port (0 = ephemeral; see --ready-file). Default 7332",
    )
    serve.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="serve on a Unix socket at PATH instead of TCP",
    )
    serve.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default="serial",
        help="execution engine every query samples through",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for --engine process/epoch",
    )
    serve.add_argument(
        "--kernel", choices=list(KERNELS), default="wavefront",
        help="traversal kernel (default wavefront)",
    )
    serve.add_argument(
        "--epoch-size", type=int, default=None, metavar="N",
        help="samples per epoch for --engine epoch",
    )
    serve.add_argument(
        "--delta", type=int, default=None, metavar="W",
        help="weighted delta-stepping bucket width",
    )
    serve.add_argument(
        "--cache-sources", type=int, default=0, metavar="N",
        help="forward-BFS tree cache size per sampler",
    )
    serve.add_argument(
        "--mmap",
        metavar="DIR",
        default=None,
        help="spill each loaded dataset to DIR/<name>/ and serve it "
        "memory-mapped (out-of-core tier)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=128,
        metavar="N",
        help="LRU result-cache capacity in queries (default 128; 0 off)",
    )
    serve.add_argument(
        "--warm-dir",
        metavar="DIR",
        default=None,
        help="checkpoint warm sampling lanes here on drain and thaw "
        "them at the next startup",
    )
    serve.add_argument(
        "--ready-file",
        metavar="PATH",
        default=None,
        help="write the bound endpoint as JSON to PATH once listening "
        "(how scripts learn an ephemeral --port 0)",
    )
    serve.add_argument(
        "--log-json",
        metavar="PATH",
        default=None,
        help="write serve telemetry (request events, counters) as "
        "JSON lines to PATH",
    )
    serve.add_argument(
        "--debug-invariants",
        action="store_true",
        help="validate every sampled path while serving (slow)",
    )

    mutate = sub.add_parser(
        "mutate",
        help="apply an edge-delta file to a checkpoint, an mmap graph "
        "directory, or a dataset held by a running serve daemon",
    )
    mutate.add_argument(
        "delta_file",
        metavar="DELTA",
        help="edge-delta file: one op per line — '+ u v [w]' insert, "
        "'- u v' delete, '= u v w' reweight; '#' starts a comment",
    )
    target = mutate.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="apply to a `run --checkpoint` snapshot: thaw the session, "
        "migrate it onto the mutated graph (dropping exactly the stale "
        "samples), save the compacted graph to --out, and rewrite the "
        "checkpoint so `resume` continues on the new graph",
    )
    target.add_argument(
        "--graph-dir",
        metavar="DIR",
        help="apply to a memory-mapped graph directory (written by "
        "--mmap or `mutate --out`); compacts in place unless --out "
        "names a different directory",
    )
    target.add_argument(
        "--dataset",
        metavar="NAME",
        help="apply to a dataset held by a running serve daemon "
        "(needs --port or --socket); the daemon migrates its warm "
        "lanes and evicts the superseded cache entries",
    )
    mutate.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="directory for the compacted graph in the mmap format "
        "(required with --checkpoint; defaults to in-place with "
        "--graph-dir)",
    )
    mutate.add_argument(
        "--checkpoint-out",
        metavar="PATH",
        default=None,
        help="write the migrated checkpoint here instead of replacing "
        "the input (only with --checkpoint)",
    )
    mutate.add_argument(
        "--touch-radius",
        type=int,
        default=1,
        metavar="R",
        help="hops to expand the touched-node frontier around each "
        "mutated edge when invalidating stored samples (default 1)",
    )
    mutate.add_argument("--host", default="127.0.0.1", help="daemon TCP host")
    mutate.add_argument(
        "--port", type=int, default=None, help="daemon TCP port"
    )
    mutate.add_argument(
        "--socket", metavar="PATH", default=None, help="daemon Unix socket"
    )

    sub.add_parser("datasets", help="list the Table I dataset registry")

    check = sub.add_parser(
        "check",
        help="run the static-analysis pass (determinism / RNG hygiene / "
        "cross-process safety rules)",
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        metavar="PATH",
        help="files or directories to check (default: src/repro)",
    )
    check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    check.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def _make_algorithm(
    name: str,
    eps: float,
    gamma: float,
    seed: int,
    engine: str = "serial",
    workers: int | None = None,
    kernel: str = "wavefront",
    cache_sources: int = 0,
    epoch_size: int | None = None,
    delta: int | None = None,
    telemetry=None,
    debug: bool = False,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 1,
    resume_from: str | None = None,
    stop_after_checkpoints: int | None = None,
):
    sampling = {
        "engine": engine,
        "workers": workers,
        "kernel": kernel,
        "cache_sources": cache_sources,
        "epoch_size": epoch_size,
        "delta": delta,
        "telemetry": telemetry,
        "debug": debug,
        "checkpoint_path": checkpoint_path,
        "checkpoint_every": checkpoint_every,
        "resume_from": resume_from,
        "stop_after_checkpoints": stop_after_checkpoints,
    }
    factories = {
        "adaalg": lambda: AdaAlg(eps=eps, gamma=gamma, seed=seed, **sampling),
        "hedge": lambda: Hedge(eps=eps, gamma=gamma, seed=seed, **sampling),
        "centra": lambda: CentRa(eps=eps, gamma=gamma, seed=seed, **sampling),
        "exhaust": lambda: Exhaust(seed=seed, **sampling),
        "yoshida": lambda: YoshidaSketch(eps=eps, gamma=gamma, seed=seed),
        "puzis": lambda: PuzisGreedy(),
        "brute": lambda: BruteForce(),
    }
    if name not in _CHECKPOINTABLE and (checkpoint_path or resume_from):
        raise SystemExit(
            f"error: --checkpoint / resume is only supported for "
            f"the sampling algorithms ({', '.join(sorted(_CHECKPOINTABLE))})"
        )
    return factories[name]()


def _progress_line(record: dict) -> str | None:
    """A human-readable stderr line for an ``iteration`` event."""
    if record.get("kind") != "event" or record.get("name") != "iteration":
        return None
    parts = [record.get("algorithm", "?")]
    for key in ("q", "guess", "samples", "estimate", "unbiased", "cnt"):
        value = record.get(key)
        if value is None:
            continue
        if isinstance(value, float):
            parts.append(f"{key}={value:.1f}")
        else:
            parts.append(f"{key}={value}")
    return "  ".join(parts)


def _build_telemetry(args):
    """A :class:`~repro.obs.Telemetry` hub for the CLI flags, or ``None``
    when neither ``--log-json`` nor ``--progress`` was given (the
    algorithms then run on the no-op hub)."""
    sinks = []
    if args.log_json:
        sinks.append(JsonlSink(args.log_json))
    if args.progress:

        def emit(record):
            line = _progress_line(record)
            if line is not None:
                print(line, file=sys.stderr)

        sinks.append(CallbackSink(emit))
    if not sinks and not args.debug_invariants:
        return None
    return Telemetry(sinks=sinks)


def _load_graph(args):
    if args.dataset:
        graph = load(args.dataset, seed=args.seed, giant_only=not args.whole_graph)
    elif is_mmap_graph(args.edge_list):
        # an mmap directory was saved post-preprocessing: open as-is
        # (restricting to the giant component would copy the arrays
        # into memory and defeat the out-of-core tier)
        graph = load_mmap(args.edge_list)
    else:
        if args.weighted:
            graph, _ = read_weighted_edge_list(
                args.edge_list, directed=args.directed
            )
        else:
            graph, _ = read_edge_list(args.edge_list, directed=args.directed)
        if not args.whole_graph:
            graph, _ = giant_component(graph)
    mmap_dir = getattr(args, "mmap", None)
    if mmap_dir is not None and graph.mmap_source is None:
        # spill the fully preprocessed graph and reopen it memory-mapped
        # so the run (and its sampling workers) operate out-of-core
        target = mmap_dir or tempfile.mkdtemp(prefix="repro-mmap-")
        save_mmap(graph, target)
        graph = load_mmap(target)
        print(f"mmap        : {graph.mmap_source}", file=sys.stderr)
    return graph


def _result_payload(result, k: int) -> dict:
    """The deterministic result contract written by ``--json``.

    Shared with the serve daemon (:mod:`repro.serve.protocol`), whose
    cold-lane responses must be byte-comparable to these files.
    """
    return result_payload(result, k)


def _print_result(result, graph, args, k: int) -> None:
    pairs = graph.num_ordered_pairs
    print(f"algorithm   : {result.algorithm}")
    print(f"engine      : {args.engine}"
          + (f" (workers={args.workers})" if args.workers else "")
          + f" kernel={args.kernel}"
          + (f" epoch_size={args.epoch_size}"
             if getattr(args, "epoch_size", None) else ""))
    print(f"graph       : n={graph.n} m={graph.num_edges} "
          f"({'directed' if graph.directed else 'undirected'})")
    print(f"group (K={k}): {sorted(result.group)}")
    print(f"estimate    : {result.estimate:.1f} "
          f"(normalized {result.estimate / pairs:.4f})")
    if result.estimate_unbiased is not None:
        print(f"unbiased    : {result.estimate_unbiased:.1f}")
    print(f"samples     : {result.num_samples}")
    print(f"iterations  : {result.iterations}")
    print(f"converged   : {result.converged}")
    if result.diagnostics.get("resumed"):
        print("resumed     : True")
    if result.diagnostics.get("checkpoints"):
        print(f"checkpoints : {result.diagnostics['checkpoints']}")
    print(f"elapsed     : {result.elapsed_seconds:.2f}s")
    if getattr(args, "log_json", None):
        print(f"telemetry   : {args.log_json}")


def _finish_run(algorithm, graph, args, k: int) -> int:
    """Run, print, optionally write ``--json``; maps a deliberate
    ``--stop-after-checkpoints`` interruption to exit code 3."""
    try:
        result = algorithm.run(graph, k)
    except SessionInterrupted as exc:
        print(f"interrupted : {exc}", file=sys.stderr)
        return EXIT_INTERRUPTED
    _print_result(result, graph, args, k)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(_result_payload(result, k), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"json        : {args.json}")
    return 0


def _cmd_run(args) -> int:
    graph = _load_graph(args)
    telemetry = _build_telemetry(args)
    algorithm = _make_algorithm(
        args.algorithm,
        args.eps,
        args.gamma,
        args.seed,
        args.engine,
        args.workers,
        args.kernel,
        args.cache_sources,
        epoch_size=args.epoch_size,
        delta=args.delta,
        telemetry=telemetry,
        debug=args.debug_invariants,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        stop_after_checkpoints=args.stop_after_checkpoints,
    )
    if args.checkpoint and hasattr(algorithm, "checkpoint_meta"):
        # graph + run provenance the `resume` command needs to rebuild
        # this exact invocation from the snapshot alone
        algorithm.checkpoint_meta = {
            "dataset": args.dataset,
            "edge_list": args.edge_list,
            "directed": args.directed,
            "weighted": args.weighted,
            "whole_graph": args.whole_graph,
            "seed": args.seed,
            "algorithm": args.algorithm,
            "engine": args.engine,
            "workers": args.workers,
            "kernel": args.kernel,
            "cache_sources": args.cache_sources,
            "epoch_size": args.epoch_size,
            "delta": args.delta,
            "mmap": args.mmap,
        }
    try:
        return _finish_run(algorithm, graph, args, args.k)
    finally:
        if telemetry is not None:
            telemetry.close()


def _cmd_resume(args) -> int:
    path = args.checkpoint_file
    meta = SamplingSession.peek(path)
    state = meta.get("state") or {}
    saved = state.get("meta") or {}
    if not saved or "algorithm" not in saved:
        raise CheckpointError(
            f"{path!r} does not carry CLI run provenance; it was written "
            "by the library API — resume it with "
            "SamplingAlgorithm(resume_from=...) instead"
        )
    params = state.get("params") or {}

    class _GraphArgs:
        dataset = saved.get("dataset")
        edge_list = saved.get("edge_list")
        directed = bool(saved.get("directed"))
        weighted = bool(saved.get("weighted"))
        whole_graph = bool(saved.get("whole_graph"))
        seed = saved.get("seed", 0)
        mmap = saved.get("mmap")

    graph = _load_graph(_GraphArgs)
    telemetry = _build_telemetry(args)
    algorithm = _make_algorithm(
        saved["algorithm"],
        params.get("eps", 0.3),
        params.get("gamma", 0.01),
        saved.get("seed", 0),
        saved.get("engine", "serial"),
        saved.get("workers"),
        saved.get("kernel", "wavefront"),
        saved.get("cache_sources", 0),
        epoch_size=saved.get("epoch_size"),
        delta=saved.get("delta"),
        telemetry=telemetry,
        debug=args.debug_invariants,
        checkpoint_path=args.checkpoint or path,
        checkpoint_every=args.checkpoint_every,
        resume_from=path,
        stop_after_checkpoints=args.stop_after_checkpoints,
    )
    args.engine = saved.get("engine", "serial")
    args.workers = saved.get("workers")
    args.kernel = saved.get("kernel", "wavefront")
    args.epoch_size = saved.get("epoch_size")
    args.delta = saved.get("delta")
    print(f"resuming    : {path} ({state['algorithm']}, "
          f"K={state['k']}, {sum(meta['num_paths'])} samples banked)")
    try:
        return _finish_run(algorithm, graph, args, int(state["k"]))
    finally:
        if telemetry is not None:
            telemetry.close()


def _cmd_compare(args) -> int:
    graph = _load_graph(args)
    pairs = graph.num_ordered_pairs
    telemetry = _build_telemetry(args)
    rows = []
    try:
        for name in args.algorithms:
            algorithm = _make_algorithm(
                name,
                args.eps,
                args.gamma,
                args.seed,
                args.engine,
                args.workers,
                args.kernel,
                args.cache_sources,
                epoch_size=args.epoch_size,
                delta=args.delta,
                telemetry=telemetry,
                debug=args.debug_invariants,
            )
            result = algorithm.run(graph, args.k)
            quality = (
                exact_gbc(graph, result.group) if args.exact else result.estimate
            )
            rows.append(
                [
                    result.algorithm,
                    quality / pairs if pairs else 0.0,
                    result.num_samples,
                    round(result.elapsed_seconds, 2),
                    result.converged,
                ]
            )
    finally:
        if telemetry is not None:
            telemetry.close()
    metric = "exact norm GBC" if args.exact else "estimated norm GBC"
    print(f"graph: n={graph.n} m={graph.num_edges}; "
          f"K={args.k} eps={args.eps} gamma={args.gamma}")
    print(format_table([
        "algorithm", metric, "samples", "seconds", "converged"
    ], rows))
    return 0


def _cmd_experiment(args) -> int:
    config = _PRESETS[args.preset]
    if args.seed is not None:
        config = config.with_overrides(seed=args.seed)
    if args.telemetry:
        config = config.with_overrides(telemetry=True)
    if args.reuse_sessions:
        config = config.with_overrides(reuse_sessions=True)
    result = _EXPERIMENTS[args.name](config)
    print(result.render())
    if args.output:
        write_result(result, args.output)
        print(f"rows written to {args.output}")
    return 0


def _cmd_serve(args) -> int:
    # imported lazily: the daemon pulls in asyncio machinery most CLI
    # invocations never need
    from .serve.daemon import ServerConfig, serve_main

    datasets = {}
    for name in args.dataset:
        graph = load(name, seed=args.seed, giant_only=not args.whole_graph)
        if args.mmap is not None:
            target = f"{args.mmap.rstrip('/')}/{name}"
            if not is_mmap_graph(target):
                save_mmap(graph, target)
            graph = load_mmap(target)
        datasets[name] = graph
        print(
            f"serve: loaded {name}: n={graph.n} m={graph.num_edges}"
            + (f" (mmap: {graph.mmap_source})" if graph.mmap_source else ""),
            file=sys.stderr,
        )
    config = ServerConfig(
        datasets=datasets,
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        engine=args.engine,
        workers=args.workers,
        kernel=args.kernel,
        cache_sources=args.cache_sources,
        epoch_size=args.epoch_size,
        delta=args.delta,
        cache_size=args.cache_size,
        warm_dir=args.warm_dir,
        log_json=args.log_json,
        ready_file=args.ready_file,
        debug=args.debug_invariants,
    )
    return serve_main(config)


def _mutate_daemon(args, update) -> int:
    """Forward the delta to a running serve daemon's ``mutate`` op."""
    from .serve.client import ServeClient

    if args.port is None and not args.socket:
        raise SystemExit(
            "error: mutate --dataset needs the daemon endpoint "
            "(--port or --socket)"
        )
    with ServeClient(
        host=args.host, port=args.port, socket_path=args.socket
    ) as client:
        answer = client.mutate(
            args.dataset,
            insert=update.inserts.tolist(),
            delete=update.deletes.tolist(),
            reweight=update.reweights.tolist(),
            touch_radius=args.touch_radius,
        )
    mutated = answer["mutated"]
    print(f"dataset     : {mutated['dataset']} (version {mutated['version']})")
    print(f"ops applied : {mutated['ops']}")
    print(f"touched     : {mutated['touched']} node(s)")
    print(f"lanes       : {mutated['lanes_updated']} migrated, "
          f"{mutated['invalidated']} sample(s) invalidated, "
          f"{mutated['surviving']} kept warm")
    print(f"cache       : {mutated['cache_evicted']} entries evicted")
    print(f"graph       : n={mutated['n']} m={mutated['m']}")
    return 0


def _mutate_graph_dir(args, update) -> int:
    """Compact the delta into an mmap graph directory."""
    from .graph.delta import DeltaGraph

    graph = load_mmap(args.graph_dir)
    delta = DeltaGraph(graph, touch_radius=args.touch_radius)
    touched = delta.apply(update)
    new_graph = delta.compact()
    target = args.out or args.graph_dir
    save_mmap(new_graph, target)
    print(f"ops applied : {update.num_ops}")
    print(f"touched     : {touched.size} node(s)")
    print(f"graph       : n={new_graph.n} m={new_graph.num_edges}")
    print(f"written     : {target}")
    return 0


def _mutate_checkpoint(args, update) -> int:
    """Migrate a run checkpoint onto the mutated graph."""
    if args.out is None:
        raise SystemExit(
            "error: mutate --checkpoint needs --out DIR to hold the "
            "compacted graph (the rewritten checkpoint resumes against it)"
        )
    path = args.checkpoint
    meta = SamplingSession.peek(path)
    state = meta.get("state") or {}
    saved = state.get("meta") or {}
    if not saved or "algorithm" not in saved:
        raise CheckpointError(
            f"{path!r} does not carry CLI run provenance; mutate "
            "library-API checkpoints through "
            "SamplingSession.resume(...).apply_update(...) instead"
        )

    class _GraphArgs:
        dataset = saved.get("dataset")
        edge_list = saved.get("edge_list")
        directed = bool(saved.get("directed"))
        weighted = bool(saved.get("weighted"))
        whole_graph = bool(saved.get("whole_graph"))
        seed = saved.get("seed", 0)
        mmap = saved.get("mmap")

    graph = _load_graph(_GraphArgs)
    session, state = SamplingSession.resume(path, graph)
    try:
        stats = session.apply_update(update, touch_radius=args.touch_radius)
        save_mmap(session.graph, args.out)
        # rewrite the checkpoint against the compacted graph: the CLI
        # provenance now points at the mmap directory (resume opens it
        # directly), and the loop state is cleared — the resumed
        # algorithm re-enters its stopping rule over the warm pool,
        # resampling only the invalidated shortfall
        new_state = dict(state or {})
        new_state["loop"] = None
        provenance = dict(new_state.get("meta") or {})
        provenance.update(
            dataset=None,
            edge_list=args.out,
            whole_graph=True,
            mmap=None,
        )
        new_state["meta"] = provenance
        out_path = args.checkpoint_out or path
        session.checkpoint(out_path, state=new_state)
    finally:
        session.close()
    print(f"ops applied : {update.num_ops}")
    print(f"touched     : {stats['touched']} node(s)")
    print(f"samples     : {stats['invalidated']} invalidated, "
          f"{stats['surviving']} kept")
    print(f"graph       : n={session.graph.n} m={session.graph.num_edges} "
          f"-> {args.out}")
    print(f"checkpoint  : {out_path}")
    return 0


def _cmd_mutate(args) -> int:
    from .graph.delta import read_delta_file

    update = read_delta_file(args.delta_file)
    if args.dataset:
        return _mutate_daemon(args, update)
    if args.graph_dir:
        return _mutate_graph_dir(args, update)
    return _mutate_checkpoint(args, update)


def _cmd_check(args) -> int:
    # imported lazily: the checker is pure stdlib + the obs registry,
    # but most CLI invocations never need it
    from .checks.cli import run_cli

    return run_cli(args)


def _cmd_datasets(_args) -> int:
    rows = [
        [
            spec.name,
            spec.paper_nodes,
            spec.paper_edges,
            "directed" if spec.directed else "undirected",
            spec.kind,
            spec.description,
        ]
        for spec in DATASETS.values()
    ]
    print(
        format_table(
            ["name", "paper_V", "paper_E", "type", "kind", "description"], rows
        )
    )
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "resume": _cmd_resume,
        "compare": _cmd_compare,
        "experiment": _cmd_experiment,
        "serve": _cmd_serve,
        "mutate": _cmd_mutate,
        "datasets": _cmd_datasets,
        "check": _cmd_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
