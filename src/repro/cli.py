"""Command-line interface: ``repro-gbc`` (or ``python -m repro``).

Subcommands
-----------
``run``
    Run one algorithm on a dataset (or an edge-list file) and print the
    found group, its estimated centrality, and the sample count.
``compare``
    Run several algorithms head-to-head on the same graph and print a
    comparison table (quality, samples, time).
``experiment``
    Regenerate one of the paper's tables/figures at a chosen preset,
    optionally exporting the rows (``--output result.csv|.json``).
``datasets``
    List the Table I registry.

Examples
--------
::

    repro-gbc run --algorithm adaalg --dataset GrQc -k 20 --eps 0.3
    repro-gbc run --algorithm hedge --edge-list my_graph.txt -k 10
    repro-gbc compare --dataset GrQc -k 20
    repro-gbc experiment fig4 --preset smoke --output fig4.csv
    repro-gbc datasets
"""

from __future__ import annotations

import argparse
import sys

from .algorithms import (
    AdaAlg,
    BruteForce,
    CentRa,
    Exhaust,
    Hedge,
    PuzisGreedy,
    YoshidaSketch,
)
from .datasets import DATASETS, load
from .engine import ENGINES, KERNELS
from .experiments import (
    BENCH,
    FULL,
    REDUCED,
    SMOKE,
    run_base_sweep,
    run_endpoint_ablation,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_local_search_ablation,
    run_pair_vs_path,
    run_sampler_work,
    run_strategy_comparison,
    run_work_scaling,
    run_table1,
    run_validation_set_ablation,
    write_result,
)
from .experiments.report import format_table
from .graph import giant_component, read_edge_list, read_weighted_edge_list
from .obs import CallbackSink, JsonlSink, Telemetry
from .paths import exact_gbc

__all__ = ["main", "build_parser"]

_PRESETS = {"smoke": SMOKE, "bench": BENCH, "reduced": REDUCED, "full": FULL}
_EXPERIMENTS = {
    "table1": lambda cfg: run_table1(cfg),
    "fig1": lambda cfg: run_fig1(cfg),
    "fig2": lambda cfg: run_fig2(cfg),
    "fig3": lambda cfg: run_fig3(cfg),
    "fig4": lambda cfg: run_fig4(cfg),
    "fig5": lambda cfg: run_fig5(cfg),
    "ablation-base": lambda cfg: run_base_sweep(cfg),
    "ablation-work": lambda cfg: run_sampler_work(cfg),
    "ablation-endpoints": lambda cfg: run_endpoint_ablation(cfg),
    "ablation-strategies": lambda cfg: run_strategy_comparison(cfg),
    "ablation-pairs": lambda cfg: run_pair_vs_path(cfg),
    "ablation-validation": lambda cfg: run_validation_set_ablation(cfg),
    "ablation-localsearch": lambda cfg: run_local_search_ablation(cfg),
    "ablation-scaling": lambda cfg: run_work_scaling(cfg),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-gbc",
        description="Top-K group betweenness centrality (AdaAlg reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_source(parser_):
        source = parser_.add_mutually_exclusive_group(required=True)
        source.add_argument(
            "--dataset", help="registry dataset name (see `datasets`)"
        )
        source.add_argument("--edge-list", help="path to a SNAP-style edge list")
        parser_.add_argument(
            "--directed", action="store_true", help="edge list is directed"
        )
        parser_.add_argument(
            "--weighted",
            action="store_true",
            help="edge list has a third integer-weight column",
        )
        parser_.add_argument(
            "--whole-graph",
            action="store_true",
            help="do not restrict to the giant component",
        )
        parser_.add_argument("--seed", type=int, default=0, help="random seed")
        parser_.add_argument(
            "--engine",
            choices=sorted(ENGINES),
            default="serial",
            help="execution engine for path sampling (default serial)",
        )
        parser_.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker processes for --engine process (default: all cores)",
        )
        parser_.add_argument(
            "--kernel",
            choices=list(KERNELS),
            default="wavefront",
            help="traversal kernel for the batch/process engines "
            "(default wavefront; results are identical across "
            "wavefront and scalar)",
        )
        parser_.add_argument(
            "--cache-sources",
            type=int,
            default=0,
            metavar="N",
            help="LRU-cache up to N forward-BFS trees in the sampler "
            "(default 0 = off)",
        )
        parser_.add_argument(
            "--log-json",
            metavar="PATH",
            default=None,
            help="write run telemetry (spans, per-iteration events, "
            "counters) as JSON lines to PATH",
        )
        parser_.add_argument(
            "--debug-invariants",
            action="store_true",
            help="validate every sampled path and the coverage "
            "bookkeeping while running (slow; for debugging)",
        )
        parser_.add_argument(
            "--progress",
            action="store_true",
            help="print per-iteration progress lines to stderr",
        )

    run = sub.add_parser("run", help="run one algorithm on one graph")
    add_graph_source(run)
    run.add_argument(
        "--algorithm",
        choices=["adaalg", "hedge", "centra", "exhaust", "yoshida", "puzis", "brute"],
        default="adaalg",
    )
    run.add_argument("-k", type=int, default=20, help="group size (default 20)")
    run.add_argument("--eps", type=float, default=0.3, help="error ratio")
    run.add_argument("--gamma", type=float, default=0.01, help="error probability")

    compare = sub.add_parser(
        "compare", help="run several algorithms head-to-head on one graph"
    )
    add_graph_source(compare)
    compare.add_argument("-k", type=int, default=20, help="group size (default 20)")
    compare.add_argument("--eps", type=float, default=0.3, help="error ratio")
    compare.add_argument("--gamma", type=float, default=0.01, help="error probability")
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["exhaust", "hedge", "centra", "adaalg"],
        choices=["adaalg", "hedge", "centra", "exhaust", "yoshida"],
        help="which algorithms to compare",
    )
    compare.add_argument(
        "--exact",
        action="store_true",
        help="grade each group with the exact GBC (slow on large graphs)",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument(
        "--preset", choices=sorted(_PRESETS), default="smoke", help="scale preset"
    )
    experiment.add_argument("--seed", type=int, default=None, help="override seed")
    experiment.add_argument(
        "--output", default=None, help="also write rows to a .csv or .json file"
    )
    experiment.add_argument(
        "--telemetry",
        action="store_true",
        help="collect in-memory run telemetry for every algorithm run "
        "(recorded in the result metadata)",
    )

    sub.add_parser("datasets", help="list the Table I dataset registry")
    return parser


def _make_algorithm(
    name: str,
    eps: float,
    gamma: float,
    seed: int,
    engine: str = "serial",
    workers: int | None = None,
    kernel: str = "wavefront",
    cache_sources: int = 0,
    telemetry=None,
    debug: bool = False,
):
    sampling = {
        "engine": engine,
        "workers": workers,
        "kernel": kernel,
        "cache_sources": cache_sources,
        "telemetry": telemetry,
        "debug": debug,
    }
    factories = {
        "adaalg": lambda: AdaAlg(eps=eps, gamma=gamma, seed=seed, **sampling),
        "hedge": lambda: Hedge(eps=eps, gamma=gamma, seed=seed, **sampling),
        "centra": lambda: CentRa(eps=eps, gamma=gamma, seed=seed, **sampling),
        "exhaust": lambda: Exhaust(seed=seed, **sampling),
        "yoshida": lambda: YoshidaSketch(eps=eps, gamma=gamma, seed=seed),
        "puzis": lambda: PuzisGreedy(),
        "brute": lambda: BruteForce(),
    }
    return factories[name]()


def _progress_line(record: dict) -> str | None:
    """A human-readable stderr line for an ``iteration`` event."""
    if record.get("kind") != "event" or record.get("name") != "iteration":
        return None
    parts = [record.get("algorithm", "?")]
    for key in ("q", "guess", "samples", "estimate", "unbiased", "cnt"):
        value = record.get(key)
        if value is None:
            continue
        if isinstance(value, float):
            parts.append(f"{key}={value:.1f}")
        else:
            parts.append(f"{key}={value}")
    return "  ".join(parts)


def _build_telemetry(args):
    """A :class:`~repro.obs.Telemetry` hub for the CLI flags, or ``None``
    when neither ``--log-json`` nor ``--progress`` was given (the
    algorithms then run on the no-op hub)."""
    sinks = []
    if args.log_json:
        sinks.append(JsonlSink(args.log_json))
    if args.progress:

        def emit(record):
            line = _progress_line(record)
            if line is not None:
                print(line, file=sys.stderr)

        sinks.append(CallbackSink(emit))
    if not sinks and not args.debug_invariants:
        return None
    return Telemetry(sinks=sinks)


def _load_graph(args):
    if args.dataset:
        return load(args.dataset, seed=args.seed, giant_only=not args.whole_graph)
    if args.weighted:
        graph, _ = read_weighted_edge_list(args.edge_list, directed=args.directed)
    else:
        graph, _ = read_edge_list(args.edge_list, directed=args.directed)
    if not args.whole_graph:
        graph, _ = giant_component(graph)
    return graph


def _cmd_run(args) -> int:
    graph = _load_graph(args)
    telemetry = _build_telemetry(args)
    algorithm = _make_algorithm(
        args.algorithm,
        args.eps,
        args.gamma,
        args.seed,
        args.engine,
        args.workers,
        args.kernel,
        args.cache_sources,
        telemetry=telemetry,
        debug=args.debug_invariants,
    )
    try:
        result = algorithm.run(graph, args.k)
    finally:
        if telemetry is not None:
            telemetry.close()
    pairs = graph.num_ordered_pairs
    print(f"algorithm   : {result.algorithm}")
    print(f"engine      : {args.engine}"
          + (f" (workers={args.workers})" if args.workers else "")
          + f" kernel={args.kernel}")
    print(f"graph       : n={graph.n} m={graph.num_edges} "
          f"({'directed' if graph.directed else 'undirected'})")
    print(f"group (K={args.k}): {sorted(result.group)}")
    print(f"estimate    : {result.estimate:.1f} "
          f"(normalized {result.estimate / pairs:.4f})")
    if result.estimate_unbiased is not None:
        print(f"unbiased    : {result.estimate_unbiased:.1f}")
    print(f"samples     : {result.num_samples}")
    print(f"iterations  : {result.iterations}")
    print(f"converged   : {result.converged}")
    print(f"elapsed     : {result.elapsed_seconds:.2f}s")
    if args.log_json:
        print(f"telemetry   : {args.log_json}")
    return 0


def _cmd_compare(args) -> int:
    graph = _load_graph(args)
    pairs = graph.num_ordered_pairs
    telemetry = _build_telemetry(args)
    rows = []
    try:
        for name in args.algorithms:
            algorithm = _make_algorithm(
                name,
                args.eps,
                args.gamma,
                args.seed,
                args.engine,
                args.workers,
                args.kernel,
                args.cache_sources,
                telemetry=telemetry,
                debug=args.debug_invariants,
            )
            result = algorithm.run(graph, args.k)
            quality = (
                exact_gbc(graph, result.group) if args.exact else result.estimate
            )
            rows.append(
                [
                    result.algorithm,
                    quality / pairs if pairs else 0.0,
                    result.num_samples,
                    round(result.elapsed_seconds, 2),
                    result.converged,
                ]
            )
    finally:
        if telemetry is not None:
            telemetry.close()
    metric = "exact norm GBC" if args.exact else "estimated norm GBC"
    print(f"graph: n={graph.n} m={graph.num_edges}; "
          f"K={args.k} eps={args.eps} gamma={args.gamma}")
    print(format_table([
        "algorithm", metric, "samples", "seconds", "converged"
    ], rows))
    return 0


def _cmd_experiment(args) -> int:
    config = _PRESETS[args.preset]
    if args.seed is not None:
        config = config.with_overrides(seed=args.seed)
    if args.telemetry:
        config = config.with_overrides(telemetry=True)
    result = _EXPERIMENTS[args.name](config)
    print(result.render())
    if args.output:
        write_result(result, args.output)
        print(f"rows written to {args.output}")
    return 0


def _cmd_datasets(_args) -> int:
    rows = [
        [
            spec.name,
            spec.paper_nodes,
            spec.paper_edges,
            "directed" if spec.directed else "undirected",
            spec.kind,
            spec.description,
        ]
        for spec in DATASETS.values()
    ]
    print(
        format_table(
            ["name", "paper_V", "paper_E", "type", "kind", "description"], rows
        )
    )
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "experiment": _cmd_experiment,
        "datasets": _cmd_datasets,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
