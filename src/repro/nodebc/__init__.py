"""Node betweenness centrality approximation (paper Sec. II lineage)."""

from .estimator import (
    BCEstimate,
    adaptive_betweenness,
    approx_betweenness,
    rk_sample_size,
    top_k_nodes,
    vertex_diameter_upper_bound,
)

__all__ = [
    "BCEstimate",
    "approx_betweenness",
    "adaptive_betweenness",
    "rk_sample_size",
    "top_k_nodes",
    "vertex_diameter_upper_bound",
]
