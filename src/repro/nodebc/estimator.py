"""Sampling-based approximation of *node* betweenness centrality.

The paper's related work (Sec. II) builds on a line of node-BC
approximation algorithms — Riondato–Kornaropoulos (RK), ABRA, KADABRA,
SILVAN — that share one estimator: sample L uniform shortest paths and
count, for every node, the fraction of paths it sits strictly inside:

    bc_hat(v) = |{l : v interior of path_l}| / L * n(n-1).

This module provides that estimator with two stopping rules:

* :func:`approx_betweenness` — **fixed** sample size from the
  RK bound: with ``L >= (c/eps^2)(floor(log2(VD - 2)) + 1 + ln(1/delta))``
  every node's estimate is within ``eps * n(n-1)`` of its true value
  with probability ``1 - delta``, where ``VD`` is the vertex diameter
  (an upper bound obtained by double-sweep BFS).
* :func:`adaptive_betweenness` — **progressive** sampling in the
  spirit of KADABRA: geometric batches, a per-node empirical-Bernstein
  confidence radius with a union bound over nodes, stopping when the
  widest radius certifies the requested absolute accuracy.

Both reuse the exact same :class:`~repro.paths.sampler.PathSampler`
substrate as the GBC algorithms, so a single sampling implementation
backs the entire package.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._rng import as_generator
from ..exceptions import ParameterError
from ..graph.csr import CSRGraph
from ..paths.bfs import bfs_distances
from ..paths.sampler import PathSampler

__all__ = [
    "BCEstimate",
    "vertex_diameter_upper_bound",
    "rk_sample_size",
    "approx_betweenness",
    "adaptive_betweenness",
    "top_k_nodes",
]

_RK_CONSTANT = 0.5  # the universal constant of the RK/VC bound


@dataclass
class BCEstimate:
    """Result of a node-BC approximation run.

    Attributes
    ----------
    values:
        Estimated betweenness per node, in the package's raw
        ordered-pair scale (divide by ``n(n-1)`` to normalize).
    num_samples:
        Shortest paths drawn.
    radius:
        Certified absolute accuracy: every ``values[v]`` is within
        ``radius`` of the true betweenness with probability
        ``1 - delta``.
    iterations:
        Sampling batches used (1 for the fixed-size estimator).
    """

    values: np.ndarray
    num_samples: int
    radius: float
    iterations: int

    def normalized(self, graph: CSRGraph) -> np.ndarray:
        """Estimates divided by ``n(n-1)``."""
        pairs = graph.num_ordered_pairs
        return self.values / pairs if pairs else self.values

    def top_k(self, k: int) -> list[int]:
        """The ``k`` nodes with the largest estimated betweenness."""
        order = np.argsort(self.values)[::-1]
        return order[:k].tolist()


def vertex_diameter_upper_bound(graph: CSRGraph, tries: int = 4, seed=None) -> int:
    """Upper bound on the number of nodes on any shortest path.

    Uses the double-sweep heuristic: BFS from a random node, then BFS
    from the farthest node found; the farthest distance seen, doubled
    (directed graphs need the slack), plus one, bounds the vertex
    diameter of the reachable structure.  Always at least 2.
    """
    if graph.n == 0:
        return 2
    rng = as_generator(seed)
    best = 1
    for _ in range(tries):
        start = int(rng.integers(graph.n))
        dist = bfs_distances(graph, start)
        if dist.max() <= 0:
            continue
        far = int(np.argmax(dist))
        second = bfs_distances(graph, far, reverse=graph.directed)
        best = max(best, int(dist.max()), int(second.max()))
    # hop diameter d => at most d + 1 nodes on a path; double-sweep can
    # underestimate the true diameter by up to 2x on directed graphs
    factor = 2 if graph.directed else 1
    return max(2, factor * best + 1)


def rk_sample_size(vertex_diameter: int, eps: float, delta: float) -> int:
    """The Riondato–Kornaropoulos sample size for accuracy ``eps``.

    ``eps`` is relative to the ``n(n-1)`` normalization (an absolute
    accuracy on the normalized centrality).
    """
    if vertex_diameter < 2:
        raise ParameterError("vertex diameter must be >= 2")
    if not 0.0 < eps < 1.0:
        raise ParameterError(f"eps must lie in (0, 1); got {eps}")
    if not 0.0 < delta < 1.0:
        raise ParameterError(f"delta must lie in (0, 1); got {delta}")
    vc_term = math.floor(math.log2(max(vertex_diameter - 2, 1))) + 1
    return math.ceil(
        (_RK_CONSTANT / (eps * eps)) * (vc_term + math.log(1.0 / delta))
    )


def _count_interior(
    graph: CSRGraph, sampler: PathSampler, counts: np.ndarray, draws: int
) -> None:
    """Draw ``draws`` paths, incrementing per-node interior-hit counts."""
    for _ in range(draws):
        sample = sampler.sample()
        if sample.nodes.size > 2:
            counts[sample.nodes[1:-1]] += 1


def approx_betweenness(
    graph: CSRGraph, eps: float = 0.01, delta: float = 0.1, seed=None
) -> BCEstimate:
    """Fixed-size RK approximation of every node's betweenness.

    Guarantees ``|bc_hat(v) - bc(v)| <= eps * n(n-1)`` for **all** nodes
    simultaneously with probability ``1 - delta``.
    """
    if graph.n < 2:
        raise ParameterError("betweenness needs at least two nodes")
    rng = as_generator(seed)
    diameter = vertex_diameter_upper_bound(graph, seed=rng)
    num_samples = rk_sample_size(diameter, eps, delta)
    sampler = PathSampler(graph, seed=rng)
    counts = np.zeros(graph.n, dtype=np.float64)
    _count_interior(graph, sampler, counts, num_samples)
    pairs = graph.num_ordered_pairs
    return BCEstimate(
        values=counts / num_samples * pairs,
        num_samples=num_samples,
        radius=eps * pairs,
        iterations=1,
    )


def adaptive_betweenness(
    graph: CSRGraph,
    eps: float = 0.01,
    delta: float = 0.1,
    batch: int = 1000,
    growth: float = 1.5,
    max_samples: int = 10_000_000,
    seed=None,
) -> BCEstimate:
    """Progressive (KADABRA-style) approximation.

    Samples in geometrically growing batches; after each batch the
    per-node empirical-Bernstein radius

        r(v) = sqrt(2 p_hat(v) (1 - p_hat(v)) ln(3 S / delta') / L)
               + 3 ln(3 S / delta') / L

    (with ``delta'`` split across a generous schedule bound ``S`` of
    stages and the ``n`` nodes) is evaluated, and the run stops once
    ``max_v r(v) <= eps``.

    Compared to the fixed RK count, the adaptive rule trades the
    vertex-diameter (VC) term for a ``ln n`` union bound plus a
    variance term: it wins on long-diameter / low-variance graphs
    (paths, grids, road-like networks) and certifies its achieved
    accuracy from the data either way, but on small dense graphs with
    a large maximum interior probability the RK count can be smaller.
    """
    if graph.n < 2:
        raise ParameterError("betweenness needs at least two nodes")
    if batch < 1 or growth <= 1.0:
        raise ParameterError("batch must be >= 1 and growth > 1")
    if not 0.0 < eps < 1.0 or not 0.0 < delta < 1.0:
        raise ParameterError("eps and delta must lie in (0, 1)")

    rng = as_generator(seed)
    sampler = PathSampler(graph, seed=rng)
    counts = np.zeros(graph.n, dtype=np.float64)
    pairs = graph.num_ordered_pairs

    stages_bound = 64  # generous upper bound on the number of batches
    log_term = math.log(3.0 * stages_bound * graph.n / delta)

    drawn = 0
    target = batch
    iterations = 0
    radius = float("inf")
    while drawn < max_samples:
        _count_interior(graph, sampler, counts, target - drawn)
        drawn = target
        iterations += 1
        p_hat = counts / drawn
        bernstein = (
            np.sqrt(2.0 * p_hat * (1.0 - p_hat) * log_term / drawn)
            + 3.0 * log_term / drawn
        )
        radius = float(bernstein.max())
        if radius <= eps or iterations >= stages_bound:
            break
        target = min(max_samples, math.ceil(target * growth))

    return BCEstimate(
        values=counts / drawn * pairs,
        num_samples=drawn,
        radius=radius * pairs,
        iterations=iterations,
    )


def top_k_nodes(
    graph: CSRGraph, k: int, eps: float = 0.005, delta: float = 0.1, seed=None
) -> list[int]:
    """Convenience: the ``k`` nodes with the largest (approximate)
    betweenness, via the adaptive estimator."""
    if not 1 <= k <= graph.n:
        raise ParameterError(f"need 1 <= k <= n={graph.n}, got {k}")
    estimate = adaptive_betweenness(graph, eps=eps, delta=delta, seed=seed)
    return estimate.top_k(k)
