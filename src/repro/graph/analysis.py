"""Descriptive graph statistics.

Utilities for characterizing a network before running centrality
experiments: degree statistics, an approximate effective diameter, a
sampled clustering coefficient, and a one-call :func:`graph_summary`
used by the examples and the dataset registry's documentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import as_generator
from ..exceptions import GraphError
from .components import weakly_connected_components
from .csr import CSRGraph

__all__ = [
    "GraphSummary",
    "graph_summary",
    "degree_statistics",
    "approximate_diameter",
    "sampled_clustering_coefficient",
]


@dataclass(frozen=True)
class GraphSummary:
    """One-stop description of a network.

    ``diameter`` is a double-sweep lower bound on the hop diameter of
    the giant component; ``clustering`` is a Monte-Carlo estimate of
    the average local clustering coefficient.
    """

    num_nodes: int
    num_edges: int
    directed: bool
    num_components: int
    giant_fraction: float
    mean_degree: float
    max_degree: int
    degree_p90: float
    diameter: int
    clustering: float


def degree_statistics(graph: CSRGraph) -> dict:
    """Mean / max / 90th-percentile of the (out-)degree distribution."""
    degrees = graph.out_degrees()
    if degrees.size == 0:
        return {"mean": 0.0, "max": 0, "p90": 0.0}
    return {
        "mean": float(degrees.mean()),
        "max": int(degrees.max()),
        "p90": float(np.percentile(degrees, 90)),
    }


def approximate_diameter(graph: CSRGraph, tries: int = 4, seed=None) -> int:
    """Double-sweep lower bound on the hop diameter.

    BFS from a random node, then BFS again from the farthest node
    found; the largest eccentricity observed over ``tries`` restarts.
    Exact on trees, a (usually tight) lower bound in general.
    """
    from ..paths.bfs import bfs_distances

    if graph.n == 0:
        return 0
    rng = as_generator(seed)
    best = 0
    for _ in range(tries):
        start = int(rng.integers(graph.n))
        dist = bfs_distances(graph, start)
        if dist.max() <= 0:
            continue
        far = int(np.argmax(dist))
        second = bfs_distances(graph, far)
        best = max(best, int(dist.max()), int(second.max()))
    return best


def sampled_clustering_coefficient(
    graph: CSRGraph, samples: int = 1000, seed=None
) -> float:
    """Monte-Carlo estimate of the average local clustering coefficient.

    Samples nodes with degree >= 2 and, for each, one random pair of
    neighbors, checking whether they are adjacent.  Directed graphs are
    treated through their out-adjacency.
    """
    if samples < 1:
        raise GraphError("samples must be >= 1")
    degrees = graph.out_degrees()
    eligible = np.flatnonzero(degrees >= 2)
    if eligible.size == 0:
        return 0.0
    rng = as_generator(seed)
    hits = 0
    for _ in range(samples):
        v = int(eligible[rng.integers(eligible.size)])
        nbrs = graph.neighbors(v)
        i, j = rng.choice(nbrs.size, size=2, replace=False)
        if graph.has_edge(int(nbrs[i]), int(nbrs[j])):
            hits += 1
    return hits / samples


def graph_summary(graph: CSRGraph, seed=None) -> GraphSummary:
    """Compute a :class:`GraphSummary` (cheap: a handful of BFS runs)."""
    labels = weakly_connected_components(graph)
    components = int(labels.max()) + 1 if graph.n else 0
    giant = int(np.bincount(labels).max()) if graph.n else 0
    stats = degree_statistics(graph)
    return GraphSummary(
        num_nodes=graph.n,
        num_edges=graph.num_edges,
        directed=graph.directed,
        num_components=components,
        giant_fraction=giant / graph.n if graph.n else 0.0,
        mean_degree=stats["mean"],
        max_degree=stats["max"],
        degree_p90=stats["p90"],
        diameter=approximate_diameter(graph, seed=seed),
        clustering=sampled_clustering_coefficient(graph, seed=seed),
    )
