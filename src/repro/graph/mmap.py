"""Out-of-core graphs: a memory-mapped on-disk CSR format.

Billion-edge betweenness runs (van der Grinten & Meyerhenke's
MPI-based adaptive sampling) never hold the graph in process memory —
each rank maps the immutable adjacency from disk and lets the OS page
cache share one physical copy across every process on the machine.
This module gives :class:`~repro.graph.csr.CSRGraph` the same tier:

* :func:`save_mmap` writes a graph as a *directory* of one ``.npy``
  file per CSR array plus a ``graph.json`` manifest (dtype/shape per
  array, directedness, weightedness, format version).  Plain ``.npy``
  — not a zipped ``.npz`` — because zip members cannot be mapped.
* :func:`load_mmap` opens that directory in O(1): every array comes
  back as a read-only ``np.memmap`` (``np.load(..., mmap_mode="r")``)
  and the CSR constructor runs with ``validate=False`` so no page is
  faulted in until a traversal touches it.  Graphs larger than RAM
  open instantly; the kernel evicts and re-reads pages as needed.
* A loaded graph remembers its directory in
  :attr:`~repro.graph.csr.CSRGraph.mmap_source`, which the engines use
  as a graph *transport*: worker processes re-open the same files
  read-only instead of copying the arrays into shared-memory segments
  — zero copies, and identical cost for 1 or 64 workers.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..exceptions import GraphError
from .csr import CSRGraph
from .weighted import WeightedCSRGraph

__all__ = ["MMAP_FORMAT", "MMAP_VERSION", "save_mmap", "load_mmap", "is_mmap_graph"]

MMAP_FORMAT = "repro-graph-mmap"
MMAP_VERSION = 1

#: Manifest filename inside a graph directory.
_MANIFEST = "graph.json"


def save_mmap(graph: CSRGraph, path: str) -> str:
    """Write ``graph`` to directory ``path`` in the memory-mappable
    format; returns ``path``.

    The directory is created if missing.  Arrays are streamed out with
    :func:`numpy.save` (plain ``.npy``, canonical dtypes), and the
    manifest is written last — a directory with a complete manifest is
    a complete graph, so a crash mid-save is detected by
    :func:`load_mmap` rather than silently truncating.
    """
    os.makedirs(path, exist_ok=True)
    arrays = graph.export_arrays()
    manifest: dict = {
        "format": MMAP_FORMAT,
        "version": MMAP_VERSION,
        "directed": bool(graph.directed),
        "weighted": isinstance(graph, WeightedCSRGraph),
        "n": int(graph.n),
        "m": int(graph.num_edges),
        "arrays": {},
    }
    for key, array in arrays.items():
        filename = f"{key}.npy"
        np.save(os.path.join(path, filename), array)
        manifest["arrays"][key] = {
            "file": filename,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
        }
    tmp = os.path.join(path, _MANIFEST + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, os.path.join(path, _MANIFEST))
    return path


def is_mmap_graph(path: str) -> bool:
    """Whether ``path`` looks like a directory written by
    :func:`save_mmap` (manifest present with the right format tag)."""
    manifest = os.path.join(path, _MANIFEST)
    if not os.path.isfile(manifest):
        return False
    try:
        with open(manifest) as handle:
            meta = json.load(handle)
    except (OSError, ValueError):
        return False
    return isinstance(meta, dict) and meta.get("format") == MMAP_FORMAT


def load_mmap(path: str, *, telemetry=None) -> CSRGraph:
    """Open a graph directory written by :func:`save_mmap` in O(1).

    Every CSR array is attached as a read-only memory map, so opening
    cost is independent of graph size and the working set is whatever
    the traversals actually touch.  The returned graph carries
    ``mmap_source=path`` so engines re-open it in workers instead of
    copying it into shared memory.

    Emits ``graph.mmap.opens`` / ``graph.mmap.bytes_mapped`` to
    ``telemetry`` when a hub is given.
    """
    manifest_path = os.path.join(path, _MANIFEST)
    try:
        with open(manifest_path) as handle:
            meta = json.load(handle)
    except (OSError, ValueError) as exc:
        raise GraphError(f"cannot read mmap-graph manifest {manifest_path!r}: {exc}")
    if not isinstance(meta, dict) or meta.get("format") != MMAP_FORMAT:
        raise GraphError(f"{path!r} is not a {MMAP_FORMAT} directory")
    if meta.get("version") != MMAP_VERSION:
        raise GraphError(
            f"unsupported mmap-graph version {meta.get('version')!r} "
            f"(expected {MMAP_VERSION})"
        )
    arrays: dict[str, np.ndarray] = {}
    bytes_mapped = 0
    for key in sorted(meta.get("arrays", {})):
        spec = meta["arrays"][key]
        file_path = os.path.join(path, spec["file"])
        try:
            array = np.load(file_path, mmap_mode="r", allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise GraphError(f"cannot map array {file_path!r}: {exc}")
        if array.dtype.str != spec["dtype"] or list(array.shape) != spec["shape"]:
            raise GraphError(
                f"array {key!r} of {path!r} does not match its manifest "
                f"(found {array.dtype.str}{list(array.shape)}, expected "
                f"{spec['dtype']}{spec['shape']})"
            )
        arrays[key] = array
        bytes_mapped += array.nbytes
    cls = WeightedCSRGraph if meta.get("weighted") else CSRGraph
    try:
        graph = cls.from_arrays(
            arrays, directed=bool(meta.get("directed")), validate=False
        )
    except (KeyError, GraphError) as exc:
        raise GraphError(f"corrupt mmap graph at {path!r}: {exc}")
    if graph.n != int(meta.get("n", graph.n)) or graph.num_edges != int(
        meta.get("m", graph.num_edges)
    ):
        raise GraphError(
            f"mmap graph at {path!r} disagrees with its manifest "
            f"(n={graph.n}, m={graph.num_edges} vs recorded "
            f"n={meta.get('n')}, m={meta.get('m')})"
        )
    graph.mmap_source = os.path.abspath(path)
    if telemetry is not None:
        from ..obs import as_telemetry  # local import avoids a cycle

        hub = as_telemetry(telemetry)
        hub.count("graph.mmap.opens", 1)
        hub.count("graph.mmap.bytes_mapped", bytes_mapped)
    return graph
