"""Connectivity analysis: weak/strong components, giant component.

Sampling-based GBC estimators behave best on (the giant component of)
a connected graph — pairs in different components produce null samples
that carry no information.  The experiment harness therefore extracts
the giant (weakly connected) component of every dataset, exactly as the
original SNAP preprocessing does.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "weakly_connected_components",
    "strongly_connected_components",
    "giant_component",
]


def weakly_connected_components(graph: CSRGraph) -> np.ndarray:
    """Label array: ``labels[v]`` is the weak-component id of ``v``.

    Component ids are contiguous, ordered by first-seen node.  Edge
    direction is ignored (for undirected graphs weak == strong).
    """
    labels = np.full(graph.n, -1, dtype=np.int64)
    current = 0
    for start in range(graph.n):
        if labels[start] != -1:
            continue
        labels[start] = current
        frontier = np.array([start], dtype=np.int64)
        while frontier.size:
            nbrs = _gather(graph.indptr, graph.indices, frontier)
            if graph.directed:
                nbrs = np.concatenate(
                    [nbrs, _gather(graph.rev_indptr, graph.rev_indices, frontier)]
                )
            nbrs = nbrs[labels[nbrs] == -1]
            if nbrs.size == 0:
                break
            nbrs = np.unique(nbrs)
            labels[nbrs] = current
            frontier = nbrs
        current += 1
    return labels


def strongly_connected_components(graph: CSRGraph) -> np.ndarray:
    """Label array of strongly connected components (iterative Tarjan).

    For undirected graphs this equals
    :func:`weakly_connected_components`.
    """
    if not graph.directed:
        return weakly_connected_components(graph)

    n = graph.n
    index = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    labels = np.full(n, -1, dtype=np.int64)
    stack: list[int] = []
    next_index = 0
    next_label = 0

    for root in range(n):
        if index[root] != -1:
            continue
        # iterative Tarjan: work items are (node, next-neighbor-offset)
        work = [(root, 0)]
        while work:
            v, ptr = work[-1]
            if ptr == 0:
                index[v] = low[v] = next_index
                next_index += 1
                stack.append(v)
                on_stack[v] = True
            nbrs = graph.neighbors(v)
            advanced = False
            while ptr < nbrs.size:
                w = int(nbrs[ptr])
                ptr += 1
                if index[w] == -1:
                    work[-1] = (v, ptr)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    labels[w] = next_label
                    if w == v:
                        break
                next_label += 1
    # relabel so component ids follow first-seen node order
    _, dense = np.unique(labels, return_inverse=True)
    first_seen: dict[int, int] = {}
    order = []
    for v in range(n):
        c = int(dense[v])
        if c not in first_seen:
            first_seen[c] = len(order)
            order.append(c)
    remap = np.zeros(len(order), dtype=np.int64)
    for c, rank in first_seen.items():
        remap[c] = rank
    return remap[dense]


def giant_component(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """Extract the largest weakly connected component.

    Returns ``(subgraph, nodes)`` where ``nodes[i]`` is the original id
    of subgraph node ``i``.
    """
    labels = weakly_connected_components(graph)
    if graph.n == 0:
        return graph, np.empty(0, dtype=np.int64)
    sizes = np.bincount(labels)
    big = int(np.argmax(sizes))
    nodes = np.flatnonzero(labels == big)
    return graph.subgraph(nodes), nodes


def _gather(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All neighbors (with multiplicity) of the frontier nodes."""
    counts = indptr[frontier + 1] - indptr[frontier]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    offsets = np.repeat(indptr[frontier], counts)
    shifts = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    return indices[offsets + shifts]
