"""Graph substrate: CSR structure, builders, generators, I/O, components."""

from .analysis import (
    GraphSummary,
    approximate_diameter,
    degree_statistics,
    graph_summary,
    sampled_clustering_coefficient,
)
from .build import empty_graph, from_adjacency, from_edges, from_networkx
from .components import (
    giant_component,
    strongly_connected_components,
    weakly_connected_components,
)
from .csr import CSRGraph
from .delta import DeltaGraph, GraphUpdate, read_delta_file
from .generators import (
    barabasi_albert,
    barbell_graph,
    binary_tree,
    community_chain,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    powerlaw_cluster,
    random_directed,
    star_graph,
    stochastic_block_model,
    watts_strogatz,
)
from .io import (
    read_edge_list,
    read_weighted_edge_list,
    write_edge_list,
    write_weighted_edge_list,
)
from .mmap import is_mmap_graph, load_mmap, save_mmap
from .weighted import WeightedCSRGraph, from_weighted_edges

__all__ = [
    "CSRGraph",
    "DeltaGraph",
    "GraphUpdate",
    "read_delta_file",
    "GraphSummary",
    "graph_summary",
    "degree_statistics",
    "approximate_diameter",
    "sampled_clustering_coefficient",
    "WeightedCSRGraph",
    "from_weighted_edges",
    "from_edges",
    "from_adjacency",
    "from_networkx",
    "empty_graph",
    "read_edge_list",
    "write_edge_list",
    "read_weighted_edge_list",
    "write_weighted_edge_list",
    "save_mmap",
    "load_mmap",
    "is_mmap_graph",
    "weakly_connected_components",
    "strongly_connected_components",
    "giant_component",
    "barabasi_albert",
    "watts_strogatz",
    "erdos_renyi",
    "powerlaw_cluster",
    "random_directed",
    "stochastic_block_model",
    "community_chain",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "barbell_graph",
    "binary_tree",
]
