"""Immutable CSR (compressed sparse row) graph — the package substrate.

Every algorithm in :mod:`repro` operates on :class:`CSRGraph`, a compact
numpy-backed adjacency structure supporting both directed and undirected
graphs.  Nodes are always the integers ``0 .. n-1``; callers with other
node labels relabel once at construction time (see
:func:`repro.graph.build.from_edges`).

The structure is deliberately immutable: sampling algorithms hold on to
a graph for many thousands of traversals, and immutability lets them
share it freely across components without defensive copies.  Mutating
operations (:meth:`CSRGraph.subgraph`, :meth:`CSRGraph.remove_nodes`,
:meth:`CSRGraph.reverse`) return new graphs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from ..exceptions import GraphError

__all__ = ["CSRGraph"]


class CSRGraph:
    """A graph in CSR form with O(1) access to neighbor slices.

    Parameters
    ----------
    indptr, indices:
        Out-adjacency in standard CSR layout: the out-neighbors of node
        ``v`` are ``indices[indptr[v]:indptr[v+1]]``.
    directed:
        Whether edges are one-way.  For undirected graphs each edge
        ``{u, v}`` must appear in both adjacency lists, and the reverse
        adjacency aliases the forward one.
    rev_indptr, rev_indices:
        In-adjacency (required iff ``directed``); for undirected graphs
        these are ignored and aliased to the forward arrays.
    validate:
        When ``False``, the O(n + m) structural scans (monotone
        ``indptr``, in-range ``indices``) are skipped so construction
        stays O(1) for *trusted* arrays — the out-of-core loader
        (:mod:`repro.graph.mmap`) opens multi-gigabyte graphs without
        faulting every page in.  Cheap O(1) shape checks always run.
        Only pass ``False`` for arrays this package itself wrote.

    Notes
    -----
    Use :func:`repro.graph.build.from_edges` rather than calling this
    constructor directly; it validates, deduplicates and symmetrizes
    edge lists.
    """

    __slots__ = (
        "n",
        "directed",
        "indptr",
        "indices",
        "rev_indptr",
        "rev_indices",
        "_num_edges",
        "mmap_source",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        directed: bool = False,
        rev_indptr: np.ndarray | None = None,
        rev_indices: np.ndarray | None = None,
        validate: bool = True,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int32)
        if indptr.ndim != 1 or indptr.size == 0:
            raise GraphError("indptr must be a non-empty 1-D array")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphError("indptr must start at 0 and end at len(indices)")
        if validate and np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        n = indptr.size - 1
        if validate and indices.size and (indices.min() < 0 or indices.max() >= n):
            raise GraphError("indices contain node ids outside [0, n)")

        self.n = n
        self.directed = bool(directed)
        self.indptr = indptr
        self.indices = indices
        #: Directory this graph was memory-mapped from
        #: (:func:`repro.graph.mmap.load_mmap` sets it), or ``None`` for
        #: in-memory graphs.  Engines use it to re-open the file in
        #: worker processes instead of copying the arrays into shm.
        self.mmap_source: str | None = None

        if self.directed:
            if rev_indptr is None or rev_indices is None:
                rev_indptr, rev_indices = _transpose(indptr, indices, n)
            rev_indptr = np.ascontiguousarray(rev_indptr, dtype=np.int64)
            rev_indices = np.ascontiguousarray(rev_indices, dtype=np.int32)
            if rev_indices.size != indices.size:
                raise GraphError("reverse adjacency must have the same edge count")
            self.rev_indptr = rev_indptr
            self.rev_indices = rev_indices
            self._num_edges = int(indices.size)
        else:
            self.rev_indptr = indptr
            self.rev_indices = indices
            if indices.size % 2:
                raise GraphError(
                    "undirected CSR must store each edge in both directions"
                )
            self._num_edges = int(indices.size) // 2

        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        self.rev_indptr.setflags(write=False)
        self.rev_indices.setflags(write=False)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self.n

    @property
    def num_edges(self) -> int:
        """Number of edges (undirected edges counted once)."""
        return self._num_edges

    @property
    def num_ordered_pairs(self) -> int:
        """``n * (n - 1)`` — the GBC normalization constant of the paper."""
        return self.n * (self.n - 1)

    def out_degree(self, v: int) -> int:
        """Out-degree of node ``v`` (plain degree if undirected)."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def in_degree(self, v: int) -> int:
        """In-degree of node ``v`` (plain degree if undirected)."""
        return int(self.rev_indptr[v + 1] - self.rev_indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Vector of all out-degrees."""
        return np.diff(self.indptr)

    def in_degrees(self) -> np.ndarray:
        """Vector of all in-degrees."""
        return np.diff(self.rev_indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of the out-neighbors of ``v``."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def predecessors(self, v: int) -> np.ndarray:
        """Read-only view of the in-neighbors of ``v``."""
        return self.rev_indices[self.rev_indptr[v] : self.rev_indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``u -> v`` exists (either direction counts
        as existing for undirected graphs)."""
        return bool(np.any(self.neighbors(u) == v))

    # ------------------------------------------------------------------
    # buffer export / attach (zero-copy process sharing)
    # ------------------------------------------------------------------
    def export_arrays(self) -> dict[str, np.ndarray]:
        """The immutable arrays that fully describe this graph.

        The keys match the keyword arguments of :meth:`from_arrays`, so
        ``type(g).from_arrays(g.export_arrays(), directed=g.directed)``
        reconstructs an equal graph.  Because the arrays are returned
        by reference, callers can copy them into any buffer (e.g.
        :mod:`multiprocessing.shared_memory` blocks) and re-attach
        without ever pickling the adjacency.  For undirected graphs the
        reverse adjacency aliases the forward one and is not exported.
        """
        arrays = {"indptr": self.indptr, "indices": self.indices}
        if self.directed:
            arrays["rev_indptr"] = self.rev_indptr
            arrays["rev_indices"] = self.rev_indices
        return arrays

    @classmethod
    def from_arrays(
        cls,
        arrays: dict[str, np.ndarray],
        directed: bool = False,
        validate: bool = True,
    ) -> "CSRGraph":
        """Attach a graph to arrays produced by :meth:`export_arrays`.

        Zero-copy: arrays already in canonical dtype and layout (which
        :meth:`export_arrays` guarantees) are adopted as-is, so the
        graph can live directly on a shared-memory buffer or a
        memory-mapped file owned by the caller — the caller must keep
        that buffer alive for the lifetime of the graph.
        ``validate=False`` skips the O(n + m) structural scans for
        trusted arrays (see :class:`CSRGraph`).
        """
        return cls(
            arrays["indptr"],
            arrays["indices"],
            directed=directed,
            rev_indptr=arrays.get("rev_indptr"),
            rev_indices=arrays.get("rev_indices"),
            validate=validate,
        )

    # ------------------------------------------------------------------
    # iteration / export
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield edges as ``(u, v)`` pairs.

        For undirected graphs each edge is yielded once with
        ``u <= v``; for directed graphs every arc is yielded.
        """
        for u in range(self.n):
            for v in self.neighbors(u):
                v = int(v)
                if self.directed or u <= v:
                    yield (u, v)

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` int array (same convention as
        :meth:`edges`)."""
        src = np.repeat(np.arange(self.n, dtype=np.int32), self.out_degrees())
        dst = self.indices
        if self.directed:
            return np.column_stack([src, dst])
        keep = src <= dst
        return np.column_stack([src[keep], dst[keep]])

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """The graph with every edge direction flipped.

        For undirected graphs this returns ``self`` (reversal is a
        no-op, and the structure is immutable so sharing is safe).
        """
        if not self.directed:
            return self
        return CSRGraph(
            self.rev_indptr,
            self.rev_indices,
            directed=True,
            rev_indptr=self.indptr,
            rev_indices=self.indices,
        )

    def to_undirected(self) -> "CSRGraph":
        """An undirected copy in which ``{u, v}`` exists iff ``u -> v``
        or ``v -> u`` existed."""
        if not self.directed:
            return self
        from .build import from_edges  # local import avoids a cycle

        return from_edges(self.edge_array(), n=self.n, directed=False)

    def subgraph(self, nodes: Iterable[int]) -> "CSRGraph":
        """The subgraph induced by ``nodes``, relabeled to ``0..k-1``.

        ``nodes`` is any integer iterable; the relabeling follows the
        sorted order of the unique node ids.
        """
        nodes = np.unique(np.asarray(list(nodes), dtype=np.int64))
        if nodes.size and (nodes[0] < 0 or nodes[-1] >= self.n):
            raise GraphError("subgraph nodes outside [0, n)")
        keep = np.zeros(self.n, dtype=bool)
        keep[nodes] = True
        relabel = np.full(self.n, -1, dtype=np.int64)
        relabel[nodes] = np.arange(nodes.size)

        src = np.repeat(np.arange(self.n, dtype=np.int64), self.out_degrees())
        dst = self.indices.astype(np.int64)
        mask = keep[src] & keep[dst]
        edges = np.column_stack([relabel[src[mask]], relabel[dst[mask]]])
        if not self.directed:
            edges = edges[edges[:, 0] <= edges[:, 1]]
        from .build import from_edges

        return from_edges(edges, n=int(nodes.size), directed=self.directed)

    def remove_nodes(self, nodes: Iterable[int]) -> "CSRGraph":
        """The graph with ``nodes`` (and incident edges) removed but
        **without relabeling**: removed nodes remain as isolated ids.

        Keeping ids stable is what the exact-GBC avoid-set counting
        needs (:mod:`repro.paths.exact_gbc`).
        """
        drop = np.zeros(self.n, dtype=bool)
        node_list = np.asarray(list(nodes), dtype=np.int64)
        if node_list.size and (node_list.min() < 0 or node_list.max() >= self.n):
            raise GraphError("remove_nodes ids outside [0, n)")
        drop[node_list] = True

        src = np.repeat(np.arange(self.n, dtype=np.int64), self.out_degrees())
        dst = self.indices.astype(np.int64)
        mask = ~(drop[src] | drop[dst])
        edges = np.column_stack([src[mask], dst[mask]])
        if not self.directed:
            edges = edges[edges[:, 0] <= edges[:, 1]]
        from .build import from_edges

        return from_edges(edges, n=self.n, directed=self.directed)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"CSRGraph(n={self.n}, m={self._num_edges}, {kind})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.n == other.n
            and self.directed == other.directed
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)


def _transpose(
    indptr: np.ndarray, indices: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Build the reverse CSR adjacency (transpose of the adjacency
    matrix) with a counting sort — O(n + m)."""
    counts = np.bincount(indices, minlength=n)
    rev_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=rev_indptr[1:])
    src = np.repeat(np.arange(n, dtype=np.int32), np.diff(indptr))
    order = np.argsort(indices, kind="stable")
    rev_indices = src[order]
    return rev_indptr, rev_indices
