"""Random and deterministic graph generators, implemented from scratch.

The paper evaluates on SNAP social/citation networks plus two synthetic
networks (Barabási–Albert and Watts–Strogatz, Table I).  This module
provides seeded generators for those families and several deterministic
topologies used heavily by the test suite (paths, stars, grids,
complete graphs) where betweenness values are known in closed form.

All generators return :class:`~repro.graph.csr.CSRGraph` and accept a
``seed`` in any of the forms understood by :func:`repro._rng.as_generator`.
"""

from __future__ import annotations

import numpy as np

from .._rng import as_generator
from ..exceptions import ParameterError
from .build import from_edges

__all__ = [
    "barabasi_albert",
    "watts_strogatz",
    "erdos_renyi",
    "powerlaw_cluster",
    "random_directed",
    "stochastic_block_model",
    "community_chain",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "barbell_graph",
    "binary_tree",
]


# ----------------------------------------------------------------------
# random families
# ----------------------------------------------------------------------
def barabasi_albert(n: int, m: int, seed=None):
    """Barabási–Albert preferential attachment graph.

    Starts from a star on ``m + 1`` nodes; each subsequent node attaches
    to ``m`` distinct existing nodes chosen proportionally to degree
    (implemented with the standard repeated-nodes urn).
    """
    if m < 1 or n <= m:
        raise ParameterError(f"barabasi_albert requires 1 <= m < n, got n={n} m={m}")
    rng = as_generator(seed)
    edges: list[tuple[int, int]] = []
    # urn of endpoints: each occurrence of a node = one unit of degree
    urn: list[int] = []
    for v in range(1, m + 1):
        edges.append((0, v))
        urn.extend((0, v))
    for v in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            # mix uniform picks in occasionally to guarantee progress on
            # pathological urns; BA standard is pure urn sampling
            targets.add(int(urn[rng.integers(len(urn))]))
        for t in targets:
            edges.append((v, t))
            urn.extend((v, t))
    return from_edges(edges, n=n, directed=False)


def watts_strogatz(n: int, k: int, p: float, seed=None):
    """Watts–Strogatz small-world graph.

    A ring lattice where every node connects to its ``k`` nearest
    neighbors (``k`` even), with each edge rewired to a uniform random
    endpoint with probability ``p``.
    """
    if k < 2 or k % 2 or k >= n:
        raise ParameterError(f"watts_strogatz requires even 2 <= k < n, got k={k}")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"rewire probability must be in [0, 1], got {p}")
    rng = as_generator(seed)
    existing: set[tuple[int, int]] = set()

    def _key(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    for u in range(n):
        for d in range(1, k // 2 + 1):
            existing.add(_key(u, (u + d) % n))
    edges = sorted(existing)
    rewired: set[tuple[int, int]] = set(edges)
    for u, v in edges:
        if rng.random() >= p:
            continue
        rewired.discard(_key(u, v))
        # rewire the (u, v) edge from u to a fresh endpoint
        for _ in range(8 * n):
            w = int(rng.integers(n))
            if w != u and _key(u, w) not in rewired:
                rewired.add(_key(u, w))
                break
        else:  # saturated neighborhood: keep the original edge
            rewired.add(_key(u, v))
    return from_edges(sorted(rewired), n=n, directed=False)


def erdos_renyi(n: int, p: float, seed=None, directed: bool = False):
    """G(n, p) Erdős–Rényi graph via geometric edge skipping (O(m))."""
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"edge probability must be in [0, 1], got {p}")
    rng = as_generator(seed)
    if p == 0.0 or n < 2:
        return from_edges(np.empty((0, 2)), n=n, directed=directed)

    total = n * n if directed else n * (n - 1) // 2
    edges = []
    idx = -1
    if p == 1.0:
        hits = np.arange(total)
    else:
        hits = []
        while True:
            # geometric gap between successive present edges
            idx += int(rng.geometric(p))
            if idx >= total:
                break
            hits.append(idx)
        hits = np.asarray(hits, dtype=np.int64)
    for h in hits:
        if directed:
            u, v = divmod(int(h), n)
            if u != v:
                edges.append((u, v))
        else:
            # enumerate upper-triangle pairs
            u = int((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * h)) // 2)
            v = int(h - u * (2 * n - u - 1) // 2 + u + 1)
            edges.append((u, v))
    return from_edges(edges, n=n, directed=directed)


def powerlaw_cluster(n: int, m: int, p: float, seed=None):
    """Holme–Kim power-law graph with tunable clustering.

    Like :func:`barabasi_albert`, but after each preferential
    attachment step a triangle is closed with probability ``p`` —
    producing the community-rich heavy-tailed structure typical of
    collaboration networks (our stand-in for GrQc/Coauthor/DBLP).
    """
    if m < 1 or n <= m:
        raise ParameterError(f"powerlaw_cluster requires 1 <= m < n, got n={n} m={m}")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"triad probability must be in [0, 1], got {p}")
    rng = as_generator(seed)
    edges: set[tuple[int, int]] = set()
    urn: list[int] = []

    def _add(u: int, v: int) -> bool:
        if u == v:
            return False
        key = (u, v) if u < v else (v, u)
        if key in edges:
            return False
        edges.add(key)
        urn.extend(key)
        return True

    for v in range(1, m + 1):
        _add(0, v)
    adjacency: dict[int, list[int]] = {}
    for u, v in edges:
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)

    for v in range(m + 1, n):
        added = 0
        last_target = None
        while added < m:
            if last_target is not None and rng.random() < p:
                # triad closure: attach to a neighbor of the last target
                nbrs = adjacency.get(last_target, [])
                candidate = int(nbrs[rng.integers(len(nbrs))]) if nbrs else None
            else:
                candidate = int(urn[rng.integers(len(urn))])
            if candidate is None or not _add(v, candidate):
                last_target = None
                continue
            adjacency.setdefault(v, []).append(candidate)
            adjacency.setdefault(candidate, []).append(v)
            last_target = candidate
            added += 1
    return from_edges(sorted(edges), n=n, directed=False)


def random_directed(n: int, m: int, seed=None, hub_exponent: float = 1.0):
    """A directed heavy-tailed graph with ``~m`` arcs.

    Endpoints are drawn from a Zipf-like distribution with exponent
    ``hub_exponent``, giving hub-and-spoke structure similar to
    Twitter/Epinions-style follow graphs (our directed stand-in).
    """
    if n < 2 or m < 1:
        raise ParameterError(f"random_directed requires n >= 2 and m >= 1")
    rng = as_generator(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-hub_exponent)
    weights /= weights.sum()
    # over-sample then dedup, so the arc count lands near m
    factor = 2
    arcs = np.empty((0, 2), dtype=np.int64)
    while arcs.shape[0] < m and factor <= 64:
        src = rng.choice(n, size=factor * m, p=weights)
        dst = rng.choice(n, size=factor * m, p=weights)
        cand = np.column_stack([src, dst])
        cand = cand[cand[:, 0] != cand[:, 1]]
        arcs = np.unique(cand, axis=0)
        factor *= 2
    if arcs.shape[0] > m:
        keep = rng.choice(arcs.shape[0], size=m, replace=False)
        arcs = arcs[keep]
    return from_edges(arcs, n=n, directed=True)


def stochastic_block_model(sizes, p_matrix, seed=None):
    """Stochastic block model: dense blocks, sparse cross-block edges.

    Parameters
    ----------
    sizes:
        Block sizes, e.g. ``[50, 50, 100]``.
    p_matrix:
        Symmetric matrix of edge probabilities; ``p_matrix[a][b]`` is
        the probability of an edge between a node of block ``a`` and a
        node of block ``b``.

    The community structure makes individually-central nodes redundant
    (they pile up on the same inter-block bottlenecks), which is the
    regime where *group* betweenness differs most from top-K individual
    betweenness — used by the misinformation example and the quality
    ablations.
    """
    sizes = [int(s) for s in sizes]
    blocks = len(sizes)
    matrix = np.asarray(p_matrix, dtype=np.float64)
    if matrix.shape != (blocks, blocks):
        raise ParameterError(
            f"p_matrix must be {blocks}x{blocks} to match {blocks} blocks"
        )
    if not np.allclose(matrix, matrix.T):
        raise ParameterError("p_matrix must be symmetric")
    if matrix.min() < 0.0 or matrix.max() > 1.0:
        raise ParameterError("p_matrix entries must lie in [0, 1]")
    if any(s < 1 for s in sizes):
        raise ParameterError("all block sizes must be positive")

    rng = as_generator(seed)
    starts = np.concatenate([[0], np.cumsum(sizes)])
    n = int(starts[-1])
    edges: list[tuple[int, int]] = []
    for a in range(blocks):
        for b in range(a, blocks):
            p = float(matrix[a, b])
            if p == 0.0:
                continue
            rows = np.arange(starts[a], starts[a + 1])
            cols = np.arange(starts[b], starts[b + 1])
            mask = rng.random((rows.size, cols.size)) < p
            if a == b:
                mask = np.triu(mask, k=1)
            src, dst = np.nonzero(mask)
            edges.extend(zip(rows[src].tolist(), cols[dst].tolist()))
    return from_edges(edges, n=n, directed=False)


def community_chain(
    num_communities: int = 4,
    size: int = 70,
    bridge: int = 3,
    p: float = 0.15,
    seed=None,
):
    """Dense ER communities chained together by short bridge paths.

    Community ``c``'s last anchor node connects to community ``c+1``'s
    first anchor through ``bridge`` fresh nodes.  All inter-community
    traffic funnels through those bridges, giving them extreme
    individual betweenness while a *group* needs only one node per
    bridge — the canonical separation between node and group
    centrality.
    """
    if num_communities < 2:
        raise ParameterError("need at least two communities")
    if size < 2 or bridge < 1:
        raise ParameterError("size must be >= 2 and bridge >= 1")
    if not 0.0 < p <= 1.0:
        raise ParameterError("intra-community p must lie in (0, 1]")
    rng = as_generator(seed)
    edges: list[tuple[int, int]] = []
    offset = 0
    anchors: list[tuple[int, int]] = []
    for _ in range(num_communities):
        nodes = range(offset, offset + size)
        for i in nodes:
            for j in range(i + 1, offset + size):
                if rng.random() < p:
                    edges.append((i, j))
        anchors.append((offset, offset + size - 1))
        offset += size
    for c in range(num_communities - 1):
        chain = (
            [anchors[c][1]]
            + list(range(offset, offset + bridge))
            + [anchors[c + 1][0]]
        )
        offset += bridge
        edges += list(zip(chain, chain[1:]))
    return from_edges(edges, n=offset, directed=False)


# ----------------------------------------------------------------------
# deterministic topologies (closed-form betweenness; heavily used in tests)
# ----------------------------------------------------------------------
def path_graph(n: int, directed: bool = False):
    """The path ``0 - 1 - ... - (n-1)``."""
    edges = [(i, i + 1) for i in range(n - 1)]
    return from_edges(edges, n=n, directed=directed)


def cycle_graph(n: int, directed: bool = False):
    """The cycle on ``n`` nodes."""
    if n < 3:
        raise ParameterError("cycle needs n >= 3")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return from_edges(edges, n=n, directed=directed)


def star_graph(n: int):
    """A star: node 0 is the hub, ``1..n-1`` are leaves."""
    if n < 2:
        raise ParameterError("star needs n >= 2")
    return from_edges([(0, i) for i in range(1, n)], n=n, directed=False)


def complete_graph(n: int, directed: bool = False):
    """The complete graph ``K_n``."""
    edges = [(u, v) for u in range(n) for v in range(n) if u != v]
    return from_edges(edges, n=n, directed=directed)


def grid_graph(rows: int, cols: int):
    """A ``rows x cols`` 4-neighbor lattice."""
    if rows < 1 or cols < 1:
        raise ParameterError("grid needs positive dimensions")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return from_edges(edges, n=rows * cols, directed=False)


def barbell_graph(clique: int, bridge: int):
    """Two ``K_clique`` cliques joined by a path of ``bridge`` nodes.

    The bridge nodes have the highest betweenness in the graph, which
    makes this topology ideal for sanity-checking top-K selection.
    """
    if clique < 3:
        raise ParameterError("barbell needs clique size >= 3")
    n = 2 * clique + bridge
    edges = []
    for u in range(clique):
        for v in range(u + 1, clique):
            edges.append((u, v))
    offset = clique + bridge
    for u in range(clique):
        for v in range(u + 1, clique):
            edges.append((offset + u, offset + v))
    chain = [clique - 1] + list(range(clique, clique + bridge)) + [offset]
    for a, b in zip(chain, chain[1:]):
        edges.append((a, b))
    return from_edges(edges, n=n, directed=False)


def binary_tree(depth: int):
    """A complete binary tree of the given depth (root = node 0)."""
    if depth < 0:
        raise ParameterError("depth must be >= 0")
    n = 2 ** (depth + 1) - 1
    edges = [(v, 2 * v + 1) for v in range(n) if 2 * v + 1 < n]
    edges += [(v, 2 * v + 2) for v in range(n) if 2 * v + 2 < n]
    return from_edges(edges, n=n, directed=False)
