"""Integer-weighted graphs — the substrate for the weighted extension.

The paper treats unweighted shortest paths (hop counts).  This module
extends the package to graphs with **positive integer edge lengths**, a
deliberate design restriction: integer distances compare exactly, so
every piece of shortest-path machinery (sigma counting, avoid-set
equality tests, uniform path sampling) carries over without the
floating-point-equality pitfalls of real-weighted Dijkstra.

:class:`WeightedCSRGraph` subclasses :class:`~repro.graph.csr.CSRGraph`
with a ``weights`` array aligned to ``indices`` (and ``rev_weights``
aligned to the reverse adjacency), so unweighted algorithms still run
on it (treating every edge as one hop) while
:mod:`repro.paths.dijkstra` and the weighted sampler use the lengths.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import GraphError
from .csr import CSRGraph

__all__ = ["WeightedCSRGraph", "from_weighted_edges"]


class WeightedCSRGraph(CSRGraph):
    """A CSR graph whose arcs carry positive integer lengths.

    ``weights[i]`` is the length of the arc ``indices[i]`` (same layout
    as the adjacency); ``rev_weights`` mirrors the reverse adjacency.
    Use :func:`from_weighted_edges` to construct.
    """

    __slots__ = ("weights", "rev_weights")

    def __init__(
        self,
        indptr,
        indices,
        weights,
        directed=False,
        rev_indptr=None,
        rev_indices=None,
        rev_weights=None,
        validate=True,
    ):
        super().__init__(
            indptr,
            indices,
            directed=directed,
            rev_indptr=rev_indptr,
            rev_indices=rev_indices,
            validate=validate,
        )
        weights = np.ascontiguousarray(weights, dtype=np.int64)
        if weights.shape != self.indices.shape:
            raise GraphError("weights must align with the adjacency indices")
        if validate and weights.size and weights.min() < 1:
            raise GraphError("edge weights must be positive integers")
        self.weights = weights
        if self.directed:
            if rev_weights is None:
                rev_weights = _transpose_weights(
                    self.indptr, self.indices, weights, self.n
                )
            rev_weights = np.ascontiguousarray(rev_weights, dtype=np.int64)
            if rev_weights.shape != self.rev_indices.shape:
                raise GraphError("rev_weights must align with the reverse adjacency")
            self.rev_weights = rev_weights
        else:
            self.rev_weights = self.weights
        self.weights.setflags(write=False)
        self.rev_weights.setflags(write=False)

    # ------------------------------------------------------------------
    # buffer export / attach (zero-copy process sharing)
    # ------------------------------------------------------------------
    def export_arrays(self) -> dict[str, np.ndarray]:
        arrays = super().export_arrays()
        arrays["weights"] = self.weights
        if self.directed:
            arrays["rev_weights"] = self.rev_weights
        return arrays

    @classmethod
    def from_arrays(
        cls,
        arrays: dict[str, np.ndarray],
        directed: bool = False,
        validate: bool = True,
    ) -> "WeightedCSRGraph":
        return cls(
            arrays["indptr"],
            arrays["indices"],
            arrays["weights"],
            directed=directed,
            rev_indptr=arrays.get("rev_indptr"),
            rev_indices=arrays.get("rev_indices"),
            rev_weights=arrays.get("rev_weights"),
            validate=validate,
        )

    # ------------------------------------------------------------------
    def neighbor_weights(self, v: int) -> np.ndarray:
        """Lengths of the out-arcs of ``v`` (aligned with ``neighbors``)."""
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def predecessor_weights(self, v: int) -> np.ndarray:
        """Lengths of the in-arcs of ``v`` (aligned with ``predecessors``)."""
        return self.rev_weights[self.rev_indptr[v] : self.rev_indptr[v + 1]]

    def weighted_edges(self):
        """Yield ``(u, v, w)`` triples (undirected edges once, u <= v)."""
        for u in range(self.n):
            start = self.indptr[u]
            for offset, v in enumerate(self.neighbors(u)):
                v = int(v)
                if self.directed or u <= v:
                    yield (u, v, int(self.weights[start + offset]))

    def to_unweighted(self) -> CSRGraph:
        """The same topology with the lengths dropped."""
        return CSRGraph(
            self.indptr,
            self.indices,
            directed=self.directed,
            rev_indptr=self.rev_indptr if self.directed else None,
            rev_indices=self.rev_indices if self.directed else None,
        )

    # derived graphs rebuild through the weighted constructor ------------
    def reverse(self) -> "WeightedCSRGraph":
        if not self.directed:
            return self
        return WeightedCSRGraph(
            self.rev_indptr,
            self.rev_indices,
            self.rev_weights,
            directed=True,
            rev_indptr=self.indptr,
            rev_indices=self.indices,
            rev_weights=self.weights,
        )

    def remove_nodes(self, nodes) -> "WeightedCSRGraph":
        drop = np.zeros(self.n, dtype=bool)
        node_list = np.asarray(list(nodes), dtype=np.int64)
        if node_list.size and (node_list.min() < 0 or node_list.max() >= self.n):
            raise GraphError("remove_nodes ids outside [0, n)")
        drop[node_list] = True
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.out_degrees())
        dst = self.indices.astype(np.int64)
        keep = ~(drop[src] | drop[dst])
        triples = np.column_stack([src[keep], dst[keep], self.weights[keep]])
        if not self.directed:
            triples = triples[triples[:, 0] <= triples[:, 1]]
        return from_weighted_edges(triples, n=self.n, directed=self.directed)

    def subgraph(self, nodes) -> "WeightedCSRGraph":
        nodes = np.unique(np.asarray(list(nodes), dtype=np.int64))
        if nodes.size and (nodes[0] < 0 or nodes[-1] >= self.n):
            raise GraphError("subgraph nodes outside [0, n)")
        keep = np.zeros(self.n, dtype=bool)
        keep[nodes] = True
        relabel = np.full(self.n, -1, dtype=np.int64)
        relabel[nodes] = np.arange(nodes.size)
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.out_degrees())
        dst = self.indices.astype(np.int64)
        mask = keep[src] & keep[dst]
        triples = np.column_stack(
            [relabel[src[mask]], relabel[dst[mask]], self.weights[mask]]
        )
        if not self.directed:
            triples = triples[triples[:, 0] <= triples[:, 1]]
        return from_weighted_edges(
            triples, n=int(nodes.size), directed=self.directed
        )

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"WeightedCSRGraph(n={self.n}, m={self.num_edges}, {kind})"

    def __eq__(self, other):
        base = super().__eq__(other)
        if base is NotImplemented or not base:
            return base
        if not isinstance(other, WeightedCSRGraph):
            return False
        return np.array_equal(self.weights, other.weights)

    def __hash__(self):  # pragma: no cover - identity hashing only
        return id(self)


def from_weighted_edges(
    triples, n: int | None = None, directed: bool = False
) -> WeightedCSRGraph:
    """Build a weighted graph from ``(u, v, weight)`` triples.

    Self-loops are dropped; duplicate edges keep the **smallest**
    weight (parallel edges cannot both lie on shortest paths).  For
    undirected graphs each triple may appear in either orientation.
    """
    arr = np.asarray(
        list(triples) if not isinstance(triples, np.ndarray) else triples
    )
    if arr.size == 0:
        arr = arr.reshape(0, 3)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise GraphError("weighted edges must be (m, 3) triples (u, v, w)")
    arr = arr.astype(np.int64, copy=False)
    if arr.size and arr[:, :2].min() < 0:
        raise GraphError("negative node ids are not allowed")
    if arr.size and arr[:, 2].min() < 1:
        raise GraphError("edge weights must be positive integers")

    if n is None:
        n = int(arr[:, :2].max()) + 1 if arr.size else 0
    elif arr.size and arr[:, :2].max() >= n:
        raise GraphError(f"edge endpoint {int(arr[:, :2].max())} >= n={n}")

    if arr.size:
        arr = arr[arr[:, 0] != arr[:, 1]]

    if not directed and arr.size:
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        arr = np.column_stack([lo, hi, arr[:, 2]])

    if arr.size:
        # sort by (u, v, w) then keep the first (smallest-w) per pair
        order = np.lexsort((arr[:, 2], arr[:, 1], arr[:, 0]))
        arr = arr[order]
        pair_change = np.ones(arr.shape[0], dtype=bool)
        pair_change[1:] = np.any(arr[1:, :2] != arr[:-1, :2], axis=1)
        arr = arr[pair_change]

    if not directed and arr.size:
        arr = np.vstack([arr, arr[:, [1, 0, 2]]])

    if arr.size:
        order = np.lexsort((arr[:, 1], arr[:, 0]))
        arr = arr[order]
        counts = np.bincount(arr[:, 0], minlength=n)
    else:
        counts = np.zeros(n, dtype=np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = arr[:, 1].astype(np.int32) if arr.size else np.empty(0, dtype=np.int32)
    weights = arr[:, 2] if arr.size else np.empty(0, dtype=np.int64)
    return WeightedCSRGraph(indptr, indices, weights, directed=directed)


def _transpose_weights(indptr, indices, weights, n):
    """Weights permuted to match the reverse adjacency built by
    :func:`repro.graph.csr._transpose` (stable sort by destination)."""
    order = np.argsort(indices, kind="stable")
    return weights[order]
