"""Construction of :class:`~repro.graph.csr.CSRGraph` from edge data.

:func:`from_edges` is the canonical entry point used throughout the
package: it accepts any ``(m, 2)``-shaped integer data (lists of pairs,
numpy arrays, generators), cleans it (self-loops, duplicates), and emits
a validated CSR graph.  :func:`from_adjacency` and
:func:`from_networkx` cover the two other common sources.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import GraphError
from .csr import CSRGraph

__all__ = ["from_edges", "from_adjacency", "from_networkx", "empty_graph"]


def from_edges(
    edges,
    n: int | None = None,
    directed: bool = False,
    dedup: bool = True,
    drop_self_loops: bool = True,
) -> CSRGraph:
    """Build a graph from an iterable of ``(u, v)`` pairs.

    Parameters
    ----------
    edges:
        Anything convertible to an ``(m, 2)`` integer array.  For
        undirected graphs each edge may appear in either or both
        orientations; it is symmetrized.
    n:
        Number of nodes.  Defaults to ``max node id + 1``.
    directed:
        Interpret pairs as arcs rather than undirected edges.
    dedup:
        Drop parallel edges (keeps the graph simple).
    drop_self_loops:
        Drop ``(v, v)`` pairs.  Self-loops never lie on a simple
        shortest path between distinct nodes, so they are noise for
        every algorithm in this package.
    """
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError("edges must be an (m, 2) array of node pairs")
    arr = arr.astype(np.int64, copy=False)
    if arr.size and arr.min() < 0:
        raise GraphError("negative node ids are not allowed")

    if n is None:
        n = int(arr.max()) + 1 if arr.size else 0
    elif arr.size and arr.max() >= n:
        raise GraphError(f"edge endpoint {int(arr.max())} >= n={n}")

    if drop_self_loops and arr.size:
        arr = arr[arr[:, 0] != arr[:, 1]]

    if not directed and arr.size:
        # store both orientations; canonicalize before dedup
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        arr = np.column_stack([lo, hi])

    if dedup and arr.size:
        arr = np.unique(arr, axis=0)

    if not directed and arr.size:
        arr = np.vstack([arr, arr[:, ::-1]])

    return _csr_from_arc_array(arr, n, directed)


def from_adjacency(
    adjacency: dict, directed: bool = False, n: int | None = None
) -> CSRGraph:
    """Build a graph from a ``{node: iterable_of_neighbors}`` mapping.

    Nodes absent from the mapping but referenced as neighbors are
    included automatically.
    """
    pairs = [(u, v) for u, nbrs in adjacency.items() for v in nbrs]
    if n is None:
        ids = list(adjacency.keys()) + [v for _, v in pairs]
        n = (max(ids) + 1) if ids else 0
    return from_edges(pairs, n=n, directed=directed)


def from_networkx(nx_graph) -> CSRGraph:
    """Convert a networkx (Di)Graph whose nodes are ``0..n-1`` integers.

    Only used by tests and examples for cross-validation; the core
    library has no networkx dependency.
    """
    directed = nx_graph.is_directed()
    n = nx_graph.number_of_nodes()
    nodes = sorted(nx_graph.nodes())
    if nodes != list(range(n)):
        raise GraphError("networkx graph must be labeled 0..n-1; relabel first")
    return from_edges(list(nx_graph.edges()), n=n, directed=directed)


def empty_graph(n: int, directed: bool = False) -> CSRGraph:
    """A graph with ``n`` nodes and no edges."""
    return from_edges(np.empty((0, 2), dtype=np.int64), n=n, directed=directed)


def _csr_from_arc_array(arcs: np.ndarray, n: int, directed: bool) -> CSRGraph:
    """Counting-sort an arc array into CSR form."""
    if arcs.size:
        order = np.lexsort((arcs[:, 1], arcs[:, 0]))
        arcs = arcs[order]
        counts = np.bincount(arcs[:, 0], minlength=n)
    else:
        counts = np.zeros(n, dtype=np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = arcs[:, 1].astype(np.int32) if arcs.size else np.empty(0, dtype=np.int32)
    return CSRGraph(indptr, indices, directed=directed)
