"""Edge-list I/O in the SNAP text format.

The paper's datasets are distributed as SNAP edge lists: one ``u v``
pair per line, ``#``-prefixed comment lines, arbitrary (sparse) node
ids.  :func:`read_edge_list` parses that format (optionally gzipped)
and returns both the graph and the id mapping;
:func:`write_edge_list` emits the same format, prefixed with a
``# nodes=N ...`` header line.

Round-trip caveats: files with *sparse* ids are relabeled densely (the
returned ``original_ids`` records the mapping), and an edge list alone
cannot mention isolated nodes.  The readers therefore honor the
``# nodes=N`` header the writers emit — when the file's ids already
lie in ``[0, N)``, the node count (and with it every isolated node) is
restored exactly, making ``write_edge_list`` → :func:`read_edge_list`
round-trips lossless.  Files whose ids fall outside ``[0, N)`` keep
the dense relabeling and the header only serves as documentation.
"""

from __future__ import annotations

import gzip
import re
from pathlib import Path

import numpy as np

from ..exceptions import GraphError
from .build import from_edges
from .csr import CSRGraph
from .weighted import WeightedCSRGraph, from_weighted_edges

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_weighted_edge_list",
    "write_weighted_edge_list",
]

#: The ``nodes=N`` token of the header line the writers emit.
_NODES_HEADER = re.compile(r"\bnodes=(\d+)\b")


def _header_node_count(line: str, current: int | None) -> int | None:
    """The node count declared by a comment line (first match wins)."""
    if current is not None:
        return current
    match = _NODES_HEADER.search(line)
    return int(match.group(1)) if match else None


def _ids_are_dense(ids: np.ndarray, n: int) -> bool:
    """Whether every referenced id already lies in ``[0, n)`` — the
    condition under which a ``nodes=n`` header can be honored exactly."""
    return ids.size == 0 or (int(ids[0]) >= 0 and int(ids[-1]) < n)


def read_edge_list(
    path, directed: bool = False, comments: str = "#"
) -> tuple[CSRGraph, np.ndarray]:
    """Read a SNAP-style edge list.

    Returns ``(graph, original_ids)`` where ``original_ids[i]`` is the
    label the file used for the node the graph calls ``i``.  Files
    ending in ``.gz`` are decompressed transparently.  A ``# nodes=N``
    header (as written by :func:`write_edge_list`) restores the exact
    node count — including isolated nodes — whenever the file's ids
    already lie in ``[0, N)``; otherwise ids are relabeled densely and
    only referenced nodes survive.
    """
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    pairs = []
    header_nodes: int | None = None
    with opener(path, "rt") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith(comments):
                header_nodes = _header_node_count(line, header_nodes)
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            try:
                pairs.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise GraphError(f"{path}:{lineno}: non-integer node id") from exc

    if not pairs:
        n = header_nodes or 0
        return from_edges(np.empty((0, 2)), n=n, directed=directed), np.arange(
            n, dtype=np.int64
        )
    arr = np.asarray(pairs, dtype=np.int64)
    original_ids, dense = np.unique(arr, return_inverse=True)
    if header_nodes is not None and header_nodes >= original_ids.size:
        if _ids_are_dense(original_ids, header_nodes):
            # header-declared count with in-range ids: keep the file's
            # own labels so isolated nodes come back at their positions
            graph = from_edges(arr, n=header_nodes, directed=directed)
            return graph, np.arange(header_nodes, dtype=np.int64)
    dense = dense.reshape(arr.shape)
    graph = from_edges(dense, n=original_ids.size, directed=directed)
    return graph, original_ids


def read_weighted_edge_list(
    path, directed: bool = False, comments: str = "#"
) -> tuple[WeightedCSRGraph, np.ndarray]:
    """Read a three-column ``u v weight`` edge list (integer weights).

    Same conventions as :func:`read_edge_list` (comments, gzip, dense
    relabeling); returns ``(graph, original_ids)``.
    """
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    triples = []
    header_nodes: int | None = None
    with opener(path, "rt") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith(comments):
                header_nodes = _header_node_count(line, header_nodes)
                continue
            parts = line.split()
            if len(parts) < 3:
                raise GraphError(f"{path}:{lineno}: expected 'u v w', got {line!r}")
            try:
                triples.append((int(parts[0]), int(parts[1]), int(parts[2])))
            except ValueError as exc:
                raise GraphError(f"{path}:{lineno}: non-integer field") from exc

    if not triples:
        n = header_nodes or 0
        return (
            from_weighted_edges(np.empty((0, 3)), n=n, directed=directed),
            np.arange(n, dtype=np.int64),
        )
    arr = np.asarray(triples, dtype=np.int64)
    original_ids, dense = np.unique(arr[:, :2], return_inverse=True)
    if header_nodes is not None and header_nodes >= original_ids.size:
        if _ids_are_dense(original_ids, header_nodes):
            graph = from_weighted_edges(arr, n=header_nodes, directed=directed)
            return graph, np.arange(header_nodes, dtype=np.int64)
    dense = dense.reshape(-1, 2)
    relabeled = np.column_stack([dense, arr[:, 2]])
    graph = from_weighted_edges(relabeled, n=original_ids.size, directed=directed)
    return graph, original_ids


def write_weighted_edge_list(
    graph: WeightedCSRGraph, path, header: str | None = None
) -> None:
    """Write a weighted graph as ``u v weight`` lines."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "wt") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        kind = "directed" if graph.directed else "undirected"
        handle.write(
            f"# nodes={graph.n} edges={graph.num_edges} type={kind} weighted\n"
        )
        for u, v, w in graph.weighted_edges():
            handle.write(f"{u} {v} {w}\n")


def write_edge_list(graph: CSRGraph, path, header: str | None = None) -> None:
    """Write ``graph`` as a SNAP-style edge list (one edge per line)."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "wt") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        kind = "directed" if graph.directed else "undirected"
        handle.write(f"# nodes={graph.n} edges={graph.num_edges} type={kind}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
