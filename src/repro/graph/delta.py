"""Dynamic graphs: a read-mostly delta overlay over the immutable CSR tier.

The package substrate (:class:`~repro.graph.csr.CSRGraph`) is
deliberately immutable — engines share it across processes, memory-map
it from disk, and traverse it millions of times.  Real serving
workloads mutate their graph continuously, though, and rebuilding the
CSR per edge insert would make every update O(n + m).  This module adds
the mutable tier in between:

* :class:`GraphUpdate` — one batch of edge inserts / deletes / weight
  changes, parseable from a text delta file (:func:`read_delta_file`).
* :class:`DeltaGraph` — a read-mostly overlay holding the pending ops
  in sorted side arrays next to an untouched base CSR.  ``neighbors()``
  answers by merging base row and overlay rows (sorted output,
  bit-identical to the row a from-scratch rebuild would produce);
  ``compact()`` materializes a fresh CSR and resets the overlay.

Each applied update bumps a monotonically increasing ``version`` and
records a *touched-nodes frontier*: the endpoints of every changed
edge expanded ``touch_radius`` hops through the union of the pre- and
post-update neighborhoods.  That frontier is what
:meth:`repro.session.SampleStore.invalidate` consumes to drop exactly
the stored paths that traversed the mutated region.

Traversal kernels (wavefront cohorts, the mmap worker transport) need
contiguous CSR arrays and cannot run on an overlay.  They operate on
the last compacted snapshot instead: :meth:`DeltaGraph.as_graph`
returns it — and **refuses** to hand out a stale one while uncompacted
ops are pending, so the engine dispatcher can never silently sample an
out-of-date graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import GraphError
from .csr import CSRGraph
from .weighted import WeightedCSRGraph, from_weighted_edges

__all__ = ["DeltaGraph", "GraphUpdate", "read_delta_file"]


def _edge_array(edges, width: int, what: str) -> np.ndarray:
    arr = np.asarray(
        list(edges) if not isinstance(edges, np.ndarray) else edges
    )
    if arr.size == 0:
        return np.empty((0, width), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != width:
        raise GraphError(
            f"{what} must be an (k, {width}) integer array, got shape "
            f"{arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        raise GraphError(f"{what} must hold integers, got dtype {arr.dtype}")
    return arr.astype(np.int64, copy=False)


@dataclass(frozen=True)
class GraphUpdate:
    """One batch of edge mutations applied atomically to a
    :class:`DeltaGraph`.

    Attributes
    ----------
    inserts:
        ``(k, 3)`` array of ``(u, v, w)`` rows; ``w`` is ignored on
        unweighted graphs (pass 1).
    deletes:
        ``(k, 2)`` array of ``(u, v)`` rows.
    reweights:
        ``(k, 3)`` array of ``(u, v, w)`` rows; weighted graphs only.
    """

    inserts: np.ndarray
    deletes: np.ndarray
    reweights: np.ndarray

    @classmethod
    def from_ops(cls, inserts=(), deletes=(), reweights=()) -> "GraphUpdate":
        """Build an update from any iterables of edge rows."""
        return cls(
            inserts=_edge_array(inserts, 3, "inserts"),
            deletes=_edge_array(deletes, 2, "deletes"),
            reweights=_edge_array(reweights, 3, "reweights"),
        )

    @property
    def num_ops(self) -> int:
        """Total number of edge mutations in the batch."""
        return (
            self.inserts.shape[0]
            + self.deletes.shape[0]
            + self.reweights.shape[0]
        )

    @property
    def is_empty(self) -> bool:
        return self.num_ops == 0

    def endpoints(self) -> np.ndarray:
        """Sorted unique node ids named by any op in the batch."""
        parts = [
            self.inserts[:, :2].ravel(),
            self.deletes.ravel(),
            self.reweights[:, :2].ravel(),
        ]
        return np.unique(np.concatenate(parts))


def read_delta_file(path: str) -> GraphUpdate:
    """Parse an edge-delta file into a :class:`GraphUpdate`.

    One op per line; ``#`` starts a comment, blank lines are skipped::

        + u v [w]   insert edge u-v (weight w, default 1)
        - u v       delete edge u-v
        = u v w     change the weight of edge u-v to w

    Raises :class:`~repro.exceptions.GraphError` on malformed lines,
    naming the line number.
    """
    inserts, deletes, reweights = [], [], []
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise GraphError(f"cannot read delta file {path!r}: {exc}")
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        op, args = fields[0], fields[1:]
        try:
            ids = [int(a) for a in args]
        except ValueError:
            raise GraphError(
                f"{path}:{lineno}: non-integer field in {line!r}"
            )
        if op == "+" and len(ids) in (2, 3):
            inserts.append((ids[0], ids[1], ids[2] if len(ids) == 3 else 1))
        elif op == "-" and len(ids) == 2:
            deletes.append((ids[0], ids[1]))
        elif op == "=" and len(ids) == 3:
            reweights.append(tuple(ids))
        else:
            raise GraphError(
                f"{path}:{lineno}: expected '+ u v [w]', '- u v' or "
                f"'= u v w', got {line!r}"
            )
    return GraphUpdate.from_ops(inserts, deletes, reweights)


def _arc_position(graph: CSRGraph, u: int, v: int) -> int:
    """Index of arc ``u -> v`` in ``graph.indices``, or -1."""
    row = graph.neighbors(u)
    pos = int(np.searchsorted(row, v))
    if pos < row.size and int(row[pos]) == v:
        return int(graph.indptr[u]) + pos
    return -1


class DeltaGraph:
    """A mutable overlay over an immutable CSR base graph.

    Parameters
    ----------
    base:
        The starting :class:`~repro.graph.csr.CSRGraph` or
        :class:`~repro.graph.weighted.WeightedCSRGraph` — kept as the
        last compacted snapshot.  The node universe is fixed; updates
        mutate edges only.
    touch_radius:
        How many hops to expand the touched-nodes frontier around the
        endpoints of each update (default 1).  Larger radii invalidate
        more stored samples per update — higher recall of truly stale
        paths at a higher resampling cost.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` hub; applied updates
        emit ``graph.delta.updates`` / ``graph.delta.edges_changed`` /
        ``graph.delta.touched_nodes``, compactions emit
        ``graph.delta.compactions``.
    """

    def __init__(self, base: CSRGraph, *, touch_radius: int = 1, telemetry=None):
        if isinstance(base, DeltaGraph):
            raise GraphError("cannot stack a DeltaGraph on a DeltaGraph")
        if not isinstance(base, CSRGraph):
            raise GraphError(
                f"DeltaGraph needs a CSRGraph base, got {type(base).__name__}"
            )
        if touch_radius < 0:
            raise GraphError(f"touch_radius must be >= 0, got {touch_radius}")
        self.base = base
        self.touch_radius = int(touch_radius)
        self._hub = None
        if telemetry is not None:
            from ..obs import as_telemetry  # local import avoids a cycle

            self._hub = as_telemetry(telemetry)
        #: Bumped once per applied update; never reset.
        self.version = 0
        #: The ``version`` the current :attr:`base` snapshot reflects.
        self.snapshot_version = 0
        # pending ops as arc dicts: both orientations are stored for
        # undirected graphs, mirroring the base CSR layout
        self._ins: dict[tuple[int, int], int] = {}
        self._del: set[tuple[int, int]] = set()
        # sorted side arrays, rebuilt after every apply (read-mostly)
        self._ins_indptr = np.zeros(base.n + 1, dtype=np.int64)
        self._ins_dst = np.empty(0, dtype=np.int64)
        self._ins_w = np.empty(0, dtype=np.int64)
        self._del_indptr = np.zeros(base.n + 1, dtype=np.int64)
        self._del_dst = np.empty(0, dtype=np.int64)
        # (version, touched-node array) per applied update
        self._touched_log: list[tuple[int, np.ndarray]] = []

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.base.n

    @property
    def directed(self) -> bool:
        return self.base.directed

    @property
    def weighted(self) -> bool:
        return isinstance(self.base, WeightedCSRGraph)

    @property
    def dirty(self) -> bool:
        """Whether uncompacted ops are pending."""
        return bool(self._ins) or bool(self._del)

    @property
    def num_edges(self) -> int:
        """Edge count of the effective graph (undirected edges once)."""
        arcs = len(self._ins) - len(self._del)
        delta = arcs if self.directed else arcs // 2
        return self.base.num_edges + delta

    # ------------------------------------------------------------------
    # effective-graph queries (base merged with overlay)
    # ------------------------------------------------------------------
    def _has_arc(self, u: int, v: int) -> bool:
        if (u, v) in self._ins:
            return True
        if (u, v) in self._del:
            return False
        return _arc_position(self.base, u, v) >= 0

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``u -> v`` exists in the effective graph."""
        return self._has_arc(int(u), int(v))

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted out-neighbors of ``v`` in the effective graph —
        bit-identical to the row :meth:`compact` would produce."""
        base_row = self.base.neighbors(v).astype(np.int64)
        dels = self._del_dst[self._del_indptr[v] : self._del_indptr[v + 1]]
        ins = self._ins_dst[self._ins_indptr[v] : self._ins_indptr[v + 1]]
        if dels.size == 0 and ins.size == 0:
            return base_row.astype(np.int32)
        if dels.size:
            base_row = base_row[~np.isin(base_row, dels, assume_unique=True)]
        # disjoint by construction: inserting an existing arc is an
        # error, and a re-inserted base arc stays masked by the delete
        return np.union1d(base_row, ins).astype(np.int32)

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors` (weighted base only)."""
        if not self.weighted:
            raise GraphError("neighbor_weights needs a weighted base graph")
        base_row = self.base.neighbors(v).astype(np.int64)
        base_w = self.base.neighbor_weights(v)
        dels = self._del_dst[self._del_indptr[v] : self._del_indptr[v + 1]]
        ins = self._ins_dst[self._ins_indptr[v] : self._ins_indptr[v + 1]]
        ins_w = self._ins_w[self._ins_indptr[v] : self._ins_indptr[v + 1]]
        if dels.size:
            keep = ~np.isin(base_row, dels, assume_unique=True)
            base_row, base_w = base_row[keep], base_w[keep]
        if ins.size == 0:
            return np.asarray(base_w, dtype=np.int64)
        dst = np.concatenate([base_row, ins])
        weights = np.concatenate([np.asarray(base_w, dtype=np.int64), ins_w])
        return weights[np.argsort(dst)]

    def out_degree(self, v: int) -> int:
        return int(self.neighbors(v).size)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def _validate_endpoint(self, u: int, v: int) -> None:
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise GraphError(
                f"update names edge ({u}, {v}) outside the 0..{self.n - 1} "
                "node universe — the overlay mutates edges, never nodes"
            )
        if u == v:
            raise GraphError(f"self-loop ({u}, {u}) is not a valid edge")

    def _orientations(self, u: int, v: int):
        if self.directed:
            return ((u, v),)
        return ((u, v), (v, u))

    def _apply_insert(self, u: int, v: int, w: int) -> None:
        self._validate_endpoint(u, v)
        if self._has_arc(u, v):
            raise GraphError(f"cannot insert edge ({u}, {v}): already present")
        if self.weighted and w < 1:
            raise GraphError(
                f"edge weights must be positive integers, got {w} "
                f"for ({u}, {v})"
            )
        for arc in self._orientations(u, v):
            self._ins[arc] = int(w)

    def _apply_delete(self, u: int, v: int) -> None:
        self._validate_endpoint(u, v)
        if not self._has_arc(u, v):
            raise GraphError(f"cannot delete edge ({u}, {v}): not present")
        for a, b in self._orientations(u, v):
            if (a, b) in self._ins:
                del self._ins[(a, b)]
            if _arc_position(self.base, a, b) >= 0:
                self._del.add((a, b))

    def _apply_reweight(self, u: int, v: int, w: int) -> None:
        self._validate_endpoint(u, v)
        if not self.weighted:
            raise GraphError(
                f"cannot reweight edge ({u}, {v}): the base graph is "
                "unweighted"
            )
        if w < 1:
            raise GraphError(
                f"edge weights must be positive integers, got {w} "
                f"for ({u}, {v})"
            )
        if not self._has_arc(u, v):
            raise GraphError(f"cannot reweight edge ({u}, {v}): not present")
        # internally a delete + insert of the same edge
        for a, b in self._orientations(u, v):
            if (a, b) not in self._ins and _arc_position(self.base, a, b) >= 0:
                self._del.add((a, b))
            self._ins[(a, b)] = int(w)

    def apply(self, update: GraphUpdate) -> np.ndarray:
        """Apply one update batch; returns the touched-node frontier.

        The batch is validated op by op (inserting an existing edge,
        deleting or reweighting a missing one, out-of-range ids and
        self-loops all raise :class:`~repro.exceptions.GraphError`)
        and bumps :attr:`version` by one.  The returned frontier is the
        sorted array of the batch's edge endpoints expanded
        ``touch_radius`` hops through the union of the pre- and
        post-update neighborhoods.
        """
        if update.is_empty:
            return np.empty(0, dtype=np.int64)
        endpoints = update.endpoints()
        if endpoints.size and (
            endpoints[0] < 0 or endpoints[-1] >= self.n
        ):
            bad = int(endpoints[0]) if endpoints[0] < 0 else int(endpoints[-1])
            raise GraphError(
                f"update names node {bad} outside the 0..{self.n - 1} "
                "node universe — the overlay mutates edges, never nodes"
            )
        # capture effective pre-update rows of the endpoints: only they
        # can differ between the pre- and post-update neighborhoods
        pre_rows = {
            int(e): self.neighbors(int(e)).astype(np.int64) for e in endpoints
        }
        for u, v, w in update.inserts:
            self._apply_insert(int(u), int(v), int(w))
        for u, v in update.deletes:
            self._apply_delete(int(u), int(v))
        for u, v, w in update.reweights:
            self._apply_reweight(int(u), int(v), int(w))
        self._rebuild_overlay()
        self.version += 1
        touched = self._expand_frontier(endpoints, pre_rows)
        self._touched_log.append((self.version, touched))
        if self._hub is not None:
            self._hub.count("graph.delta.updates", 1)
            self._hub.count("graph.delta.edges_changed", update.num_ops)
            self._hub.count("graph.delta.touched_nodes", int(touched.size))
        return touched

    def _rebuild_overlay(self) -> None:
        """Re-sort the pending ops into per-node CSR side arrays."""
        n = self.n
        if self._ins:
            arcs = np.array(sorted(self._ins), dtype=np.int64)
            self._ins_dst = arcs[:, 1].copy()
            self._ins_w = np.array(
                [self._ins[(int(u), int(v))] for u, v in arcs], dtype=np.int64
            )
            counts = np.bincount(arcs[:, 0], minlength=n)
        else:
            self._ins_dst = np.empty(0, dtype=np.int64)
            self._ins_w = np.empty(0, dtype=np.int64)
            counts = np.zeros(n, dtype=np.int64)
        self._ins_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._ins_indptr[1:])
        if self._del:
            arcs = np.array(sorted(self._del), dtype=np.int64)
            self._del_dst = arcs[:, 1].copy()
            counts = np.bincount(arcs[:, 0], minlength=n)
        else:
            self._del_dst = np.empty(0, dtype=np.int64)
            counts = np.zeros(n, dtype=np.int64)
        self._del_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._del_indptr[1:])

    def _expand_frontier(
        self, endpoints: np.ndarray, pre_rows: dict[int, np.ndarray]
    ) -> np.ndarray:
        touched = np.asarray(endpoints, dtype=np.int64)
        frontier = touched
        for _ in range(self.touch_radius):
            rows = []
            for v in frontier:
                v = int(v)
                rows.append(self.neighbors(v).astype(np.int64))
                if v in pre_rows:
                    rows.append(pre_rows[v])
            if not rows:
                break
            reached = np.unique(np.concatenate(rows))
            frontier = reached[~np.isin(reached, touched, assume_unique=True)]
            if frontier.size == 0:
                break
            touched = np.union1d(touched, frontier)
        return touched

    def touched_since(self, version: int) -> np.ndarray:
        """Union of the touched frontiers of every update newer than
        ``version`` (sorted unique node ids)."""
        parts = [
            nodes for ver, nodes in self._touched_log if ver > version
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def as_graph(self) -> CSRGraph:
        """The last compacted snapshot — refused while ops are pending.

        Traversal kernels need contiguous CSR arrays; handing them a
        snapshot that no longer reflects the effective graph would
        silently sample stale topology, so a dirty overlay raises
        :class:`~repro.exceptions.GraphError` until :meth:`compact`
        runs.
        """
        if self.dirty:
            pending = len(self._ins) + len(self._del)
            raise GraphError(
                f"the compacted snapshot is stale: {pending} uncompacted "
                f"arc op(s) pending since version {self.snapshot_version} "
                f"(now {self.version}); call compact() first"
            )
        return self.base

    def compact(self) -> CSRGraph:
        """Materialize the effective graph as a fresh CSR, clear the
        overlay, and return the new snapshot (also kept as
        :attr:`base`)."""
        if not self.dirty:
            self.snapshot_version = self.version
            return self.base
        base = self.base
        src = np.repeat(
            np.arange(base.n, dtype=np.int64), base.out_degrees()
        )
        dst = base.indices.astype(np.int64)
        if self._del:
            drop = np.zeros(dst.size, dtype=bool)
            for u, v in self._del:
                drop[_arc_position(base, u, v)] = True
            keep = ~drop
        else:
            keep = slice(None)
        if self.weighted:
            triples = [
                np.column_stack([src[keep], dst[keep], base.weights[keep]])
            ]
            if self._ins:
                arcs = np.array(
                    [(u, v, w) for (u, v), w in self._ins.items()],
                    dtype=np.int64,
                )
                triples.append(arcs)
            new = from_weighted_edges(
                np.vstack(triples), n=base.n, directed=base.directed
            )
        else:
            pairs = [np.column_stack([src[keep], dst[keep]])]
            if self._ins:
                pairs.append(np.array(sorted(self._ins), dtype=np.int64))
            from .build import from_edges  # local import avoids a cycle

            new = from_edges(
                np.vstack(pairs), n=base.n, directed=base.directed
            )
        self.base = new
        self._ins.clear()
        self._del.clear()
        self._rebuild_overlay()
        self.snapshot_version = self.version
        if self._hub is not None:
            self._hub.count("graph.delta.compactions", 1)
        return new

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected"
        return (
            f"DeltaGraph(n={self.n}, m={self.num_edges}, {kind}, "
            f"version={self.version}, dirty={self.dirty})"
        )
