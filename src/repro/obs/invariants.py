"""Debug-mode invariant validators for the sampling substrate.

The ``debug=True`` knob of the engines (and of the sampling
algorithms, which forward it) turns on two classes of checks that
would have caught the historical bookkeeping bugs immediately:

* :func:`check_sample` — every drawn :class:`~repro.paths.sampler.PathSample`
  is a *genuine* shortest path: it starts at the source, ends at the
  target, every consecutive hop is an existing arc, its hop count is
  ``dist(s, t) + 1`` nodes (weight sum equals the reported distance on
  weighted graphs), and the reported distance matches an independent
  re-computation.
* :func:`check_instance` / :func:`check_coverage` —
  :class:`~repro.coverage.CoverageInstance` bookkeeping stays
  consistent: degree counters match a recount of the stored paths, the
  lazy incidence CSR agrees with the flat arrays, and the vectorized
  ``covered_count`` matches a brute-force per-path recount.

All validators raise :class:`~repro.exceptions.InvariantViolation` on
the first inconsistency.  They re-run traversals and full recounts, so
the mode costs roughly one extra search per sample — see
``docs/observability.md`` for the cost discussion.
"""

from __future__ import annotations

import numpy as np

from ..coverage.hypergraph import CoverageInstance
from ..exceptions import InvariantViolation
from ..graph.csr import CSRGraph
from ..paths._dispatch import is_weighted
from ..paths.bidirectional import bidirectional_search
from ..paths.dijkstra import dijkstra_sigma
from ..paths.sampler import PathSample

__all__ = ["check_sample", "check_instance", "check_coverage"]


def _fail(message: str) -> None:
    raise InvariantViolation(message)


def _independent_distance(graph: CSRGraph, source: int, target: int) -> int:
    """Re-derive ``dist(source, target)`` with a fresh search
    (``-1`` when unreachable)."""
    if is_weighted(graph):
        dist, _, _ = dijkstra_sigma(graph, source, target=target)
        return int(dist[target])
    result, _ = bidirectional_search(graph, source, target)
    return -1 if result is None else int(result.distance)


def check_sample(graph: CSRGraph, sample: PathSample) -> None:
    """Validate that ``sample`` is a genuine shortest path of ``graph``."""
    s, t = int(sample.source), int(sample.target)
    if sample.is_null:
        if sample.distance != -1:
            _fail(
                f"null sample ({s}->{t}) carries distance "
                f"{sample.distance}, expected -1"
            )
        if _independent_distance(graph, s, t) != -1:
            _fail(f"null sample for reachable pair ({s}->{t})")
        return

    nodes = np.asarray(sample.nodes)
    if int(nodes[0]) != s or int(nodes[-1]) != t:
        _fail(
            f"path endpoints ({int(nodes[0])}, {int(nodes[-1])}) do not "
            f"match the sampled pair ({s}, {t})"
        )
    weight = 0
    for u, v in zip(nodes[:-1], nodes[1:]):
        u, v = int(u), int(v)
        if not graph.has_edge(u, v):
            _fail(f"path ({s}->{t}) uses a non-existent arc ({u}, {v})")
        if is_weighted(graph):
            hop = graph.neighbor_weights(u)[graph.neighbors(u) == v]
            weight += int(hop.min())
    if is_weighted(graph):
        if weight != sample.distance:
            _fail(
                f"path ({s}->{t}) weight {weight} does not match the "
                f"reported distance {sample.distance}"
            )
    elif nodes.size != sample.distance + 1:
        _fail(
            f"path ({s}->{t}) has {nodes.size} nodes but reports "
            f"distance {sample.distance} (expected dist+1 nodes)"
        )
    true_distance = _independent_distance(graph, s, t)
    if true_distance != sample.distance:
        _fail(
            f"path ({s}->{t}) reports distance {sample.distance} but an "
            f"independent search finds {true_distance} — not a shortest path"
        )


def check_instance(instance: CoverageInstance) -> None:
    """Validate the :class:`CoverageInstance` internal bookkeeping.

    Recounts node degrees from the stored paths and cross-checks the
    lazy node→path incidence CSR against both the recount and the flat
    path storage.
    """
    recount = np.zeros(instance.num_nodes, dtype=np.int64)
    for pid in range(instance.num_paths):
        nodes = instance.path(pid)
        if nodes.size:
            if nodes[0] < 0 or nodes[-1] >= instance.num_nodes:
                _fail(f"path {pid} mentions node ids outside the universe")
            if np.unique(nodes).size != nodes.size:
                _fail(f"path {pid} stores duplicate node ids")
        recount[nodes] += 1
    degrees = instance.degrees()
    if not np.array_equal(recount, degrees):
        bad = int(np.flatnonzero(recount != degrees)[0])
        _fail(
            f"degree counter of node {bad} is {int(degrees[bad])} but a "
            f"recount of the stored paths gives {int(recount[bad])}"
        )
    for node in np.flatnonzero(recount):
        pids = instance.paths_through_array(int(node))
        if pids.size != recount[node]:
            _fail(
                f"incidence CSR lists {pids.size} paths through node "
                f"{int(node)}, recount gives {int(recount[node])}"
            )


def check_coverage(instance: CoverageInstance, group) -> int:
    """Validate ``covered_count(group)`` against a brute-force recount;
    returns the (verified) count."""
    members = {int(v) for v in group}
    brute = 0
    for pid in range(instance.num_paths):
        if not members.isdisjoint(instance.path(pid).tolist()):
            brute += 1
    fast = instance.covered_count(group)
    if fast != brute:
        _fail(
            f"covered_count reports {fast} paths covered by {sorted(members)} "
            f"but a per-path recount gives {brute}"
        )
    return fast
