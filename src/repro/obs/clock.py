"""The package's single clock seam.

Determinism rule ``RPR101`` (:mod:`repro.checks.rules_determinism`)
forbids direct wall-clock reads (``time.time``, ``time.perf_counter``,
``datetime.now``, ...) everywhere outside :mod:`repro.obs`: a clock
read inside sampling or algorithm control flow is exactly the kind of
hidden input that breaks bit-identical replay across engines and
checkpoint/resume.  Code that legitimately needs elapsed-time
*reporting* (``GBCResult.elapsed_seconds``, experiment tables, the
telemetry hub's span timings) goes through this module instead, which
keeps every clock read greppable and auditable in one place.

Nothing here may ever feed back into control flow that affects which
samples are drawn — that is the invariant the checker enforces by
construction, by making this module the only one that can read a clock.
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "Stopwatch"]


def monotonic() -> float:
    """A monotonic high-resolution timestamp in seconds.

    The only sanctioned clock read outside :mod:`repro.obs.telemetry`;
    use it for elapsed-time *reporting*, never for control flow.
    """
    return time.perf_counter()


class Stopwatch:
    """Measure one elapsed interval: ``elapsed()`` seconds since start.

    A tiny convenience over two :func:`monotonic` reads, used by the
    algorithms to fill ``GBCResult.elapsed_seconds``.
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = monotonic()

    def elapsed(self) -> float:
        """Seconds since the stopwatch was created."""
        return monotonic() - self._start
