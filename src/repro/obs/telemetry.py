"""The run-telemetry hub: spans, counters, and per-iteration events.

A :class:`Telemetry` instance is the single collection point for one
run's observability data — the instrumentation KADABRA-style adaptive
samplers lean on to debug and tune their stopping rules:

* **Spans** — nestable timed sections (``with tel.span("greedy"):``).
  Durations aggregate per span *path* (``run/greedy``), so the
  wall-clock breakdown of a whole adaptive run is one dict.
* **Counters** — monotonic totals (``tel.count("engine.samples", 64)``),
  the home of the re-exported :class:`~repro.engine.base.EngineStats`.
* **Events** — structured per-iteration records
  (``tel.event("iteration", q=3, eps_sum=0.28)``), the machine-readable
  version of the trace each algorithm used to assemble by hand.

Every record flows to the attached sinks as a flat JSON-friendly dict
carrying at least ``ts`` (seconds since the hub was created), ``span``
(the active span path) and ``kind`` (``"span"`` / ``"event"`` /
``"counter"``).  :class:`JsonlSink` appends one JSON line per record
(the CLI's ``--log-json``); the hub itself keeps everything in memory
and :meth:`Telemetry.snapshot` renders it for
``GBCResult.diagnostics["telemetry"]``.

Instrumented code never checks whether telemetry is on: disabled
components hold the module-level :data:`NULL_TELEMETRY`, whose methods
are no-ops and whose ``span`` hands out one shared no-op context
manager — the disabled overhead is a few attribute lookups per call.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "as_telemetry",
    "JsonlSink",
    "MemorySink",
    "CallbackSink",
    "REQUIRED_FIELDS",
]

#: Fields every emitted record carries (the JSONL schema contract).
REQUIRED_FIELDS = ("ts", "span", "kind")


def _jsonable(value):
    """Coerce numpy scalars (and anything odd) into JSON-friendly types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    for caster in (int, float):
        try:
            return caster(value)
        except (TypeError, ValueError):
            continue
    return str(value)


class JsonlSink:
    """Append one JSON line per record to ``path`` (the ``--log-json`` sink)."""

    def __init__(self, path):
        self.path = Path(path)
        self._handle = open(self.path, "w", encoding="utf-8")

    def emit(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


class MemorySink:
    """Collect every record in a list (tests, programmatic consumers)."""

    def __init__(self):
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class CallbackSink:
    """Invoke ``fn(record)`` per record (the CLI's ``--progress`` line)."""

    def __init__(self, fn):
        self.fn = fn

    def emit(self, record: dict) -> None:
        self.fn(record)

    def close(self) -> None:
        pass


class Telemetry:
    """The telemetry hub one run writes to.

    Parameters
    ----------
    sinks:
        Zero or more sinks receiving every record as it is produced
        (the hub always keeps its own in-memory copy regardless).
    clock:
        Monotonic time source (overridable for tests).

    Attributes
    ----------
    counters:
        ``name -> int`` monotonic totals.
    events:
        Every ``kind="event"`` record, in emission order.
    spans:
        ``path -> {"seconds", "count"}`` aggregated section timings.
    """

    #: Distinguishes the live hub from :class:`NullTelemetry` without
    #: an isinstance check in hot paths.
    enabled = True

    def __init__(self, sinks=(), clock=time.perf_counter):
        self._sinks = list(sinks)
        self._clock = clock
        self._start = clock()
        self._stack: list[str] = []
        self.counters: dict[str, int] = {}
        self.events: list[dict] = []
        self.spans: dict[str, dict] = {}
        #: Total span/event/count invocations — the denominator of the
        #: disabled-overhead micro-benchmark.
        self.ops = 0

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self._clock() - self._start

    def _emit(self, record: dict) -> None:
        for sink in self._sinks:
            sink.emit(record)

    @property
    def span_path(self) -> str:
        """The currently active nested-span path (``""`` at top level)."""
        return "/".join(self._stack)

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs):
        """A timed, nestable section; emits one ``kind="span"`` record
        on exit and aggregates the duration under the span path."""
        self.ops += 1
        self._stack.append(name)
        path = "/".join(self._stack)
        begin = self._clock()
        try:
            yield self
        finally:
            seconds = self._clock() - begin
            self._stack.pop()
            agg = self.spans.setdefault(path, {"seconds": 0.0, "count": 0})
            agg["seconds"] += seconds
            agg["count"] += 1
            record = {
                "ts": self._now(),
                "span": path,
                "kind": "span",
                "name": name,
                "seconds": seconds,
            }
            record.update({k: _jsonable(v) for k, v in attrs.items()})
            self._emit(record)

    def event(self, name: str, **fields) -> dict:
        """Record one structured event (e.g. a per-iteration snapshot)."""
        self.ops += 1
        record = {
            "ts": self._now(),
            "span": self.span_path,
            "kind": "event",
            "name": name,
        }
        record.update({k: _jsonable(v) for k, v in fields.items()})
        self.events.append(record)
        self._emit(record)
        return record

    def count(self, name: str, value: int = 1) -> None:
        """Increment the monotonic counter ``name`` by ``value``.

        Counters aggregate silently; their totals are flushed to the
        sinks as ``kind="counter"`` records by :meth:`close`.
        """
        self.ops += 1
        self.counters[name] = self.counters.get(name, 0) + int(value)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The JSON-friendly collected state, for
        ``GBCResult.diagnostics["telemetry"]``."""
        return {
            "counters": dict(self.counters),
            "spans": {path: dict(agg) for path, agg in self.spans.items()},
            "events": [dict(event) for event in self.events],
        }

    def close(self) -> None:
        """Flush counter totals to the sinks and close them; idempotent."""
        for name in sorted(self.counters):
            self._emit(
                {
                    "ts": self._now(),
                    "span": self.span_path,
                    "kind": "counter",
                    "name": name,
                    "value": self.counters[name],
                }
            )
        sinks, self._sinks = self._sinks, []
        for sink in sinks:
            sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class _NullSpan:
    """The shared no-op context manager :class:`NullTelemetry` hands out."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *_exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled hub: every operation is a no-op.

    Instrumented code holds this by default, so the cost of telemetry
    when nobody asked for it is a method call returning a shared
    object — well under the 2% overhead budget (see
    ``tests/obs/test_overhead.py``).
    """

    enabled = False
    counters: dict = {}
    events: list = []
    spans: dict = {}

    def span(self, _name, **_attrs):
        return _NULL_SPAN

    def event(self, _name, **_fields) -> None:
        return None

    def count(self, _name, _value: int = 1) -> None:
        return None

    def snapshot(self) -> dict:
        return {}

    def close(self) -> None:
        return None


#: The shared disabled hub every component defaults to.
NULL_TELEMETRY = NullTelemetry()


def as_telemetry(telemetry) -> "Telemetry | NullTelemetry":
    """Normalize an optional telemetry argument (``None`` → disabled)."""
    return NULL_TELEMETRY if telemetry is None else telemetry
