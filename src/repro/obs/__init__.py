"""Run telemetry and debug invariants (``repro.obs``).

The observability layer of the package: :mod:`repro.obs.telemetry`
collects timed spans, monotonic counters, and per-iteration events
from the engines and sampling algorithms (JSONL via the CLI's
``--log-json``, in-memory via ``GBCResult.diagnostics["telemetry"]``),
and :mod:`repro.obs.invariants` holds the opt-in ``debug=True``
validators that re-verify sampled paths and coverage bookkeeping.
See ``docs/observability.md`` for the full model.
"""

from __future__ import annotations

from .clock import Stopwatch, monotonic
from .invariants import check_coverage, check_instance, check_sample
from .registry import COUNTERS, EVENTS, is_counter, is_event
from .telemetry import (
    NULL_TELEMETRY,
    REQUIRED_FIELDS,
    CallbackSink,
    JsonlSink,
    MemorySink,
    NullTelemetry,
    Telemetry,
    as_telemetry,
)

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "as_telemetry",
    "JsonlSink",
    "MemorySink",
    "CallbackSink",
    "REQUIRED_FIELDS",
    "check_sample",
    "check_instance",
    "check_coverage",
    "monotonic",
    "Stopwatch",
    "COUNTERS",
    "EVENTS",
    "is_counter",
    "is_event",
]
