"""The checked-in telemetry name registry.

Telemetry counters and events are the cross-engine contract of the
observability layer: the equality tests in ``tests/obs`` compare
``engine.*`` counter totals *by name* across serial/batch/process
engines, so a typo in one engine's counter name silently breaks the
comparison instead of failing it.  This module pins every name the
package is allowed to emit; the static-analysis rule ``RPR301``
(:mod:`repro.checks.rules_telemetry`) rejects any
``telemetry.count``/``telemetry.event`` call whose literal name is not
registered here.

Adding a new counter or event is a two-line change: emit it at the call
site and register it below (with a short comment saying what it
measures).  The checker keeps the two in lockstep; see
``docs/static-analysis.md`` for the workflow.
"""

from __future__ import annotations

__all__ = ["COUNTERS", "EVENTS", "is_counter", "is_event"]

#: Every monotonic counter name the package may pass to
#: :meth:`repro.obs.Telemetry.count`.
COUNTERS: frozenset[str] = frozenset(
    {
        # engine layer (SampleEngine.extend deltas)
        "engine.samples",  # path samples drawn
        "engine.draw_calls",  # draw() invocations served
        "engine.traversals",  # graph traversals executed
        "engine.edges_explored",  # arcs touched across traversals
        # epoch engine (continuous sampling over persistent workers)
        "engine.epoch.epochs",  # epochs ingested into the stream
        "engine.epoch.dispatches",  # epoch tickets issued (incl. in-process)
        "engine.epoch.discarded",  # speculative epochs dropped at close/reset
        # out-of-core graph tier (repro.graph.mmap)
        "graph.mmap.opens",  # memory-mapped graph directories opened
        "graph.mmap.bytes_mapped",  # bytes attached read-only via np.memmap
        # dynamic graph tier (repro.graph.delta)
        "graph.delta.updates",  # update batches applied to an overlay
        "graph.delta.edges_changed",  # edge inserts/deletes/reweights applied
        "graph.delta.touched_nodes",  # touched-frontier nodes reported
        "graph.delta.compactions",  # overlay-to-CSR compactions executed
        # weighted wavefront kernel (repro.paths.wavefront_weighted)
        "paths.weighted_cohorts",  # weighted cohort draws executed
        "paths.bucket_relaxations",  # delta-stepping level relaxation rounds
        "paths.kernel_fallbacks",  # cohort kernels degraded to 'grouped'
        # coverage layer (node->path CSR rebuild accounting)
        "coverage.rebuilds",  # incidence rebuilds paid
        "coverage.rebuilt_elements",  # flat elements re-argsorted
        "coverage.batched_evals",  # CELF marginal gains evaluated in batches
        # session layer (SamplingSession)
        "session.samples_drawn",  # samples drawn through extend()
        "session.extend_calls",  # extend() requests served
        "session.checkpoints",  # checkpoints written
        "session.restores",  # checkpoints thawed
        "store.invalidated",  # stored samples dropped by invalidation
        # serving layer (repro.serve daemon)
        "serve.connections",  # client connections accepted
        "serve.requests",  # frames received (queries + control)
        "serve.queries",  # well-formed top-K queries admitted
        "serve.cache_hits",  # answered from the LRU result cache
        "serve.cache_misses",  # missed the LRU result cache
        "serve.coalesced",  # followers attached to an in-flight leader
        "serve.computed",  # sampling computations actually executed
        "serve.batched",  # queries that reused a warm lane's samples
        "serve.samples_reused",  # warm-store samples inherited by queries
        "serve.mutations",  # graph-mutation ops applied by the daemon
        "serve.errors",  # requests rejected or failed
    }
)

#: Every structured-event name the package may pass to
#: :meth:`repro.obs.Telemetry.event`.
EVENTS: frozenset[str] = frozenset(
    {
        "iteration",  # one outer-loop iteration of a sampling algorithm
        "capped",  # a sample-budget cap preempted the stopping rule
        "engine.epoch.barrier",  # one epoch-boundary stopping-rule evaluation
        "serve.request",  # one served query (outcome + latency)
        "serve.drain",  # one graceful-drain pass (checkpoints written)
        "session.update",  # one graph update migrated through a session
        "serve.mutate",  # one daemon-applied graph mutation (outcome)
    }
)


def is_counter(name: str) -> bool:
    """Whether ``name`` is a registered counter name."""
    return name in COUNTERS


def is_event(name: str) -> bool:
    """Whether ``name`` is a registered event name."""
    return name in EVENTS
