#!/usr/bin/env python
"""End-to-end smoke test for the ``repro-gbc serve`` daemon (CI).

Drives the real thing — a daemon subprocess on an ephemeral TCP port —
through the whole serving contract:

1. start ``repro-gbc serve`` on a seeded synthetic dataset and wait
   for its ``--ready-file``;
2. fire N identical queries concurrently and require exactly ONE
   sampling pass: ``serve.computed == 1`` and
   ``serve.coalesced == N - 1`` (or cache hits for stragglers that
   arrived after the leader finished), with every response carrying
   identical result bits;
3. diff one served result against ``repro-gbc run --json`` with the
   same parameters — byte-identical by contract;
4. send SIGTERM and require a clean drain: exit code 0, warm-lane
   checkpoint written, and no orphaned child processes.

Exits non-zero with a diagnostic on the first violated check.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--dataset NAME]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.serve import ServeClient  # noqa: E402

QUERY = {"k": 5, "eps": 0.4, "gamma": 0.1, "seed": 7}
CLIENTS = 6


def fail(message: str) -> None:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_ready(proc: subprocess.Popen, ready: str, timeout: float) -> int:
    deadline = time.monotonic() + timeout
    while not os.path.exists(ready):
        if proc.poll() is not None:
            fail(f"daemon exited early with code {proc.returncode}")
        if time.monotonic() > deadline:
            fail("daemon never wrote its ready file")
        time.sleep(0.05)
    return json.loads(open(ready).read())["port"]


def find_orphans() -> list[str]:
    """Surviving processes of the daemon's tree (fork workers share its
    ``-m repro serve`` cmdline), found by scanning /proc."""
    orphans = []
    if not os.path.isdir("/proc"):  # non-Linux: skip the check
        return orphans
    for pid in os.listdir("/proc"):
        if not pid.isdigit() or int(pid) == os.getpid():
            continue
        try:
            with open(f"/proc/{pid}/cmdline", "rb") as handle:
                cmdline = handle.read().replace(b"\0", b" ").decode()
        except OSError:
            continue
        if "-m repro serve" in cmdline or "repro.serve" in cmdline:
            orphans.append(f"{pid}: {cmdline.strip()}")
    return orphans


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="SyntheticNetwork-BA")
    parser.add_argument("--clients", type=int, default=CLIENTS)
    args = parser.parse_args()

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    with tempfile.TemporaryDirectory(prefix="serve_smoke_") as tmp:
        ready = os.path.join(tmp, "ready.json")
        warm = os.path.join(tmp, "warm")
        # epoch engine with persistent workers: the drain check below
        # then actually exercises worker reaping, not just loop exit
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--dataset", args.dataset,
                # the graph-materialization seed must match the run
                # below: `run --seed` seeds BOTH the synthetic graph
                # and the algorithm, while serve queries only carry
                # the algorithm seed
                "--seed", str(QUERY["seed"]),
                "--port", "0",
                "--ready-file", ready,
                "--warm-dir", warm,
                "--engine", "epoch",
                "--workers", "2",
            ],
            env=env,
            stderr=subprocess.PIPE,
        )
        try:
            port = wait_for_ready(proc, ready, timeout=120)
            print(f"serve-smoke: daemon up on port {port}")

            # --- concurrent identical queries: one sampling pass ----
            def ask(_slot: int) -> dict:
                with ServeClient(port=port) as client:
                    return client.query(args.dataset, "adaalg", **QUERY)

            with concurrent.futures.ThreadPoolExecutor(args.clients) as pool:
                answers = list(pool.map(ask, range(args.clients)))
            reference = answers[0]["result"]
            if any(a["result"] != reference for a in answers):
                fail("concurrent identical queries returned different bits")
            sources = sorted(a["served"]["source"] for a in answers)
            with ServeClient(port=port) as client:
                counters = client.stats()["counters"]
            computed = counters.get("serve.computed", 0)
            coalesced = counters.get("serve.coalesced", 0)
            hits = counters.get("serve.cache_hits", 0)
            if computed != 1:
                fail(
                    f"expected exactly 1 sampling pass for "
                    f"{args.clients} identical queries, got "
                    f"computed={computed} (sources: {sources})"
                )
            if coalesced + hits != args.clients - 1:
                fail(
                    f"followers neither coalesced nor cache-served: "
                    f"coalesced={coalesced} hits={hits} "
                    f"(sources: {sources})"
                )
            print(
                f"serve-smoke: {args.clients} identical queries -> "
                f"1 computed, {coalesced} coalesced, {hits} cached"
            )

            # --- served result == single-shot run ------------------
            run_json = os.path.join(tmp, "run.json")
            subprocess.run(
                [
                    sys.executable, "-m", "repro", "run",
                    "--dataset", args.dataset,
                    "--algorithm", "adaalg",
                    "-k", str(QUERY["k"]),
                    "--eps", str(QUERY["eps"]),
                    "--gamma", str(QUERY["gamma"]),
                    "--seed", str(QUERY["seed"]),
                    # same engine config as the daemon: the epoch
                    # stream is part of the sample identity (it is
                    # worker-count invariant, but not serial-identical)
                    "--engine", "epoch",
                    "--workers", "2",
                    "--json", run_json,
                ],
                env=env,
                check=True,
            )
            direct = json.loads(open(run_json).read())
            if json.dumps(reference, sort_keys=True) != json.dumps(
                direct, sort_keys=True
            ):
                fail(
                    "served result differs from repro-gbc run --json:\n"
                    f"  served: {json.dumps(reference, sort_keys=True)}\n"
                    f"  direct: {json.dumps(direct, sort_keys=True)}"
                )
            print("serve-smoke: served result bit-identical to run --json")

            # --- graceful drain ------------------------------------
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=120)
            stderr = proc.stderr.read().decode()
            if code != 0:
                fail(f"daemon exited {code} on SIGTERM:\n{stderr}")
            if "drained" not in stderr:
                fail(f"daemon never reported draining:\n{stderr}")
            warm_files = os.listdir(warm) if os.path.isdir(warm) else []
            if not any(name.endswith(".warm.npz") for name in warm_files):
                fail(f"drain wrote no warm-lane checkpoint (saw {warm_files})")
            orphans = find_orphans()
            if orphans:
                fail(f"daemon left orphaned processes behind: {orphans}")
            print(
                f"serve-smoke: clean drain, no orphans, checkpoints: "
                f"{sorted(warm_files)}"
            )
        finally:
            if proc.poll() is None:
                # prefer a drain so worker processes are reaped even
                # on a failed check; SIGKILL only as a last resort
                # (it would orphan fork children)
                proc.send_signal(signal.SIGTERM)
                try:
                    proc.wait(timeout=60)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    print("serve-smoke: OK")


if __name__ == "__main__":
    main()
