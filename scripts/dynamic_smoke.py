#!/usr/bin/env python
"""End-to-end smoke test for the dynamic-graph path (CI).

Drives the real daemon through a mutate-then-requery cycle and checks
the equivalence contract from docs/dynamic-graphs.md:

1. start ``repro-gbc serve`` on a seeded synthetic dataset and wait
   for its ``--ready-file``;
2. run one query to establish a warm lane and a cache entry;
3. apply a ~1% edge delta through ``repro-gbc mutate --dataset``
   (the CLI front for the daemon's ``mutate`` op) and require the
   dataset version to bump;
4. re-issue the query: it must be recomputed (not cache-served), and
   its group must equal a cold ``repro-gbc run --json`` on the
   compacted post-delta graph;
5. SIGTERM the daemon and require a clean exit.

Exits non-zero with a diagnostic on the first violated check.

Usage::

    PYTHONPATH=src python scripts/dynamic_smoke.py [--dataset NAME]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

import numpy as np  # noqa: E402

from repro.datasets import load  # noqa: E402
from repro.graph import DeltaGraph, read_delta_file, save_mmap  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

# k=2 keeps the expected group unambiguous at this eps: the top two
# hubs win by a wide margin, so warm and cold pools agree on them.
QUERY = {"k": 2, "eps": 0.5, "gamma": 0.1, "seed": 7}
GRAPH_SEED = 7
DELTA_FRACTION = 0.01


def fail(message: str) -> None:
    print(f"dynamic-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_ready(proc: subprocess.Popen, ready: str, timeout: float) -> int:
    deadline = time.monotonic() + timeout
    while not os.path.exists(ready):
        if proc.poll() is not None:
            fail(f"daemon exited early with code {proc.returncode}")
        if time.monotonic() > deadline:
            fail("daemon never wrote its ready file")
        time.sleep(0.05)
    return json.loads(open(ready).read())["port"]


def write_delta(graph, path: str) -> int:
    """A deterministic ~1% delta: half deletes, half fresh inserts."""
    rng = np.random.default_rng(GRAPH_SEED)
    edges = []
    for u in range(graph.n):
        for v in graph.neighbors(u):
            if u < v:
                edges.append((u, int(v)))
    changes = max(1, int(len(edges) * DELTA_FRACTION / 2))
    picks = rng.choice(len(edges), size=changes, replace=False)
    present = set(edges)
    lines = [f"- {edges[i][0]} {edges[i][1]}" for i in picks]
    inserted = 0
    while inserted < changes:
        u, v = (int(x) for x in rng.integers(0, graph.n, size=2))
        key = (min(u, v), max(u, v))
        if u == v or key in present:
            continue
        present.add(key)
        lines.append(f"+ {key[0]} {key[1]}")
        inserted += 1
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# dynamic-smoke 1% delta\n")
        handle.write("\n".join(lines) + "\n")
    return len(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="SyntheticNetwork-BA")
    args = parser.parse_args()

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    # the daemon loads this dataset the same way (name + seed + giant
    # component); build the cold reference from an identical copy
    graph = load(args.dataset, seed=GRAPH_SEED, giant_only=True)

    with tempfile.TemporaryDirectory(prefix="dynamic_smoke_") as tmp:
        ready = os.path.join(tmp, "ready.json")
        delta_path = os.path.join(tmp, "delta.txt")
        ops = write_delta(graph, delta_path)

        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--dataset", args.dataset,
                "--seed", str(GRAPH_SEED),
                "--port", "0",
                "--ready-file", ready,
            ],
            env=env,
            stderr=subprocess.PIPE,
        )
        try:
            port = wait_for_ready(proc, ready, timeout=120)
            print(f"dynamic-smoke: daemon up on port {port}")

            with ServeClient(port=port) as client:
                before = client.query(args.dataset, "adaalg", **QUERY)
            print(
                f"dynamic-smoke: warm query group="
                f"{sorted(before['result']['group'])} "
                f"({before['result']['num_samples']} samples)"
            )

            # --- mutate through the CLI front ----------------------
            mutate = subprocess.run(
                [
                    sys.executable, "-m", "repro", "mutate", delta_path,
                    "--dataset", args.dataset,
                    "--port", str(port),
                    # conservative default radius: a 1% *random* delta
                    # touches most of a BA graph's hub neighbourhoods,
                    # so nearly the whole pool is (correctly) dropped —
                    # sample reuse on localized deltas is the
                    # benchmark's job (bench_dynamic.json), exact
                    # equivalence is this smoke's
                    "--touch-radius", "1",
                ],
                env=env,
                capture_output=True,
                text=True,
            )
            if mutate.returncode != 0:
                fail(f"mutate exited {mutate.returncode}:\n{mutate.stderr}")
            print(mutate.stdout.rstrip())
            if f"ops applied : {ops}" not in mutate.stdout:
                fail(
                    f"expected {ops} applied ops in mutate output:\n"
                    f"{mutate.stdout}"
                )

            with ServeClient(port=port) as client:
                stats = client.stats()
                after = client.query(args.dataset, "adaalg", **QUERY)
            version = stats["datasets"][args.dataset]["version"]
            if version != 1:
                fail(f"dataset version is {version}, expected 1")
            if after["served"]["source"] == "cache":
                fail("post-mutate query served from the stale cache")
            print(
                f"dynamic-smoke: requery source={after['served']['source']} "
                f"group={sorted(after['result']['group'])} "
                f"({after['result']['num_samples']} samples, "
                f"{after['served'].get('samples_reused', 0)} reused)"
            )

            # --- cold reference on the compacted graph -------------
            overlay = DeltaGraph(graph)
            overlay.apply(read_delta_file(delta_path))
            cold_dir = os.path.join(tmp, "cold-graph")
            save_mmap(overlay.compact(), cold_dir)
            run_json = os.path.join(tmp, "cold.json")
            subprocess.run(
                [
                    sys.executable, "-m", "repro", "run",
                    "--edge-list", cold_dir,
                    "--algorithm", "adaalg",
                    "-k", str(QUERY["k"]),
                    "--eps", str(QUERY["eps"]),
                    "--gamma", str(QUERY["gamma"]),
                    "--seed", str(QUERY["seed"]),
                    "--json", run_json,
                ],
                env=env,
                check=True,
            )
            cold = json.loads(open(run_json).read())
            warm_group = sorted(after["result"]["group"])
            cold_group = sorted(cold["group"])
            if warm_group != cold_group:
                fail(
                    "mutate+requery group differs from the cold run on "
                    f"the compacted graph: warm {warm_group} vs cold "
                    f"{cold_group}"
                )
            print(
                f"dynamic-smoke: warm group == cold group {cold_group} "
                f"(warm {after['result']['num_samples']} vs cold "
                f"{cold['num_samples']} samples)"
            )

            # --- clean shutdown ------------------------------------
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=120)
            if code != 0:
                stderr = proc.stderr.read().decode()
                fail(f"daemon exited {code} on SIGTERM:\n{stderr}")
            print("dynamic-smoke: PASS")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)


if __name__ == "__main__":
    main()
