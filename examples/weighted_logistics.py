"""Checkpoint placement on a weighted road network.

An extension beyond the paper's unweighted setting: edges carry
positive integer travel times, traffic follows minimum-time routes,
and K inspection checkpoints should see as many origin–destination
trips as possible.  The library's integer-weighted substrate
(:mod:`repro.graph.weighted`, Dijkstra-based sampling) makes the whole
AdaAlg pipeline work unchanged.

The network is a grid of city blocks with a fast highway cutting
across it.  With uniform travel times the best checkpoints sit at the
grid's center; once the highway is added, minimum-time routes bend
onto it and the optimal checkpoints move to the highway's on-ramps —
which this example demonstrates by solving both variants.

Run with::

    python examples/weighted_logistics.py
"""

from repro import AdaAlg
from repro.graph.weighted import from_weighted_edges
from repro.paths import exact_gbc


def city_grid(side=12, block_time=3, highway_time=1, with_highway=True):
    """A side x side street grid; optionally a diagonal highway."""
    def node(r, c):
        return r * side + c

    triples = []
    for r in range(side):
        for c in range(side):
            if c + 1 < side:
                triples.append((node(r, c), node(r, c + 1), block_time))
            if r + 1 < side:
                triples.append((node(r, c), node(r + 1, c), block_time))
    if with_highway:
        # highway along the diagonal: fast hops between successive
        # diagonal intersections
        for i in range(side - 1):
            triples.append((node(i, i), node(i + 1, i + 1), highway_time))
    return from_weighted_edges(triples, n=side * side)


def main() -> None:
    side, k = 12, 6
    print(f"city: {side}x{side} street grid, block travel time 3\n")

    plain = city_grid(side, with_highway=False)
    highway = city_grid(side, with_highway=True)

    print("running AdaAlg on both networks...")
    result_plain = AdaAlg(eps=0.3, gamma=0.01, seed=5).run(plain, k)
    result_highway = AdaAlg(eps=0.3, gamma=0.01, seed=5).run(highway, k)

    def describe(name, graph, result):
        coverage = exact_gbc(graph, result.group) / graph.num_ordered_pairs
        cells = sorted((v // side, v % side) for v in result.group)
        on_diagonal = sum(1 for r, c in cells if r == c)
        print(f"\n{name}:")
        print(f"  checkpoints (row, col): {cells}")
        print(f"  on the diagonal       : {on_diagonal}/{k}")
        print(f"  trips covered          : {coverage:.1%} "
              f"({result.num_samples} sampled routes)")
        return on_diagonal

    plain_diag = describe("uniform street grid", plain, result_plain)
    highway_diag = describe("grid + diagonal highway", highway, result_highway)

    print("\nthe highway pulls minimum-time routes onto the diagonal, so "
          "checkpoints migrate there:")
    print(f"  diagonal checkpoints: {plain_diag} (no highway) -> "
          f"{highway_diag} (with highway)")


if __name__ == "__main__":
    main()
