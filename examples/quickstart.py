"""Quickstart: find the top-K group betweenness centrality group.

Loads a scaled stand-in of the paper's GrQc collaboration network, runs
AdaAlg (the paper's adaptive sampling algorithm), and prints the found
group together with its per-iteration trace — showing the adaptive
stopping rule in action.

Run with::

    python examples/quickstart.py
"""

from repro import AdaAlg, datasets
from repro.paths import exact_gbc


def main() -> None:
    graph = datasets.load("GrQc", seed=7)
    print(f"network: {graph.n} nodes, {graph.num_edges} edges")

    algorithm = AdaAlg(eps=0.3, gamma=0.01, seed=7)
    result = algorithm.run(graph, k=20)

    print(f"\nAdaAlg found a group of {result.k} nodes using "
          f"{result.num_samples} sampled shortest paths "
          f"({result.iterations} iterations, "
          f"{result.elapsed_seconds:.2f}s):")
    print(f"  group: {sorted(result.group)}")
    print(f"  estimated centrality : {result.estimate:,.0f}")
    print(f"  unbiased estimate    : {result.estimate_unbiased:,.0f}")

    print("\nadaptive trace (guess g_q shrinks until the estimate certifies):")
    print("  q   samples      guess    biased B^  unbiased B~  cnt  eps_sum")
    for it in result.diagnostics["trace"]:
        eps_sum = f"{it.eps_sum:.3f}" if it.eps_sum is not None else "  -  "
        print(
            f"  {it.q:<3d} {it.samples:<11,d}{it.guess:>11,.0f}"
            f"{it.biased:>12,.0f}{it.unbiased:>13,.0f}  {it.cnt:<4d}{eps_sum}"
        )

    exact = exact_gbc(graph, result.group)
    pairs = graph.num_ordered_pairs
    print(f"\nexact B(C) = {exact:,.0f}  "
          f"(fraction of all {pairs:,} ordered pairs: {exact / pairs:.1%})")


if __name__ == "__main__":
    main()
