"""Head-to-head comparison of all four algorithms on one network.

Reproduces the core experimental story of the paper in miniature: on
the same graph and budget K, compare

* EXHAUST — the sampling yardstick (huge fixed budget),
* HEDGE   — union-bound sampling (Mahmoody et al., KDD'16),
* CentRa  — Rademacher-average sampling (Pellegrina, KDD'23),
* AdaAlg  — the paper's adaptive algorithm,

reporting solution quality (exact GBC), the number of sampled shortest
paths, and the wall-clock time.  AdaAlg should land within a few
percent of EXHAUST's quality while sampling several times fewer paths
than CentRa (the paper reports 2-18x).

Run with::

    python examples/algorithm_comparison.py
"""

from repro import AdaAlg, CentRa, Exhaust, Hedge, datasets
from repro.experiments.report import format_table
from repro.paths import exact_gbc


def main() -> None:
    k, eps, gamma = 20, 0.3, 0.01
    graph = datasets.load("Coauthor", seed=5)
    pairs = graph.num_ordered_pairs
    print(f"network: {graph.n} nodes, {graph.num_edges} edges; "
          f"K={k}, eps={eps}, gamma={gamma}\n")

    algorithms = [
        Exhaust(num_samples=60_000, seed=31),
        Hedge(eps=eps, gamma=gamma, seed=32),
        CentRa(eps=eps, gamma=gamma, seed=33),
        AdaAlg(eps=eps, gamma=gamma, seed=34),
    ]

    rows = []
    qualities = {}
    for algorithm in algorithms:
        result = algorithm.run(graph, k)
        quality = exact_gbc(graph, result.group)
        qualities[result.algorithm] = quality
        rows.append(
            [
                result.algorithm,
                quality / pairs,
                result.num_samples,
                round(result.elapsed_seconds, 2),
                result.converged,
            ]
        )

    print(format_table(
        ["algorithm", "normalized GBC", "samples", "seconds", "converged"], rows
    ))

    base = qualities["EXHAUST"]
    ada = qualities["AdaAlg"]
    print(f"\nAdaAlg quality vs EXHAUST : {ada / base:.1%}")
    hedge_samples = rows[1][2]
    centra_samples = rows[2][2]
    ada_samples = rows[3][2]
    print(f"samples: HEDGE/AdaAlg = {hedge_samples / ada_samples:.1f}x, "
          f"CentRa/AdaAlg = {centra_samples / ada_samples:.1f}x")


if __name__ == "__main__":
    main()
