"""Misinformation blocking: where should K fact-checking monitors sit?

The paper's introduction motivates top-K GBC with misinformation
filtering in social networks: information spreads along (near-)shortest
paths, so a group of K nodes maximizing *group* betweenness intercepts
the largest fraction of point-to-point information flows.

This example builds a social network with pronounced community
structure — four dense communities connected in a chain by short
bridges of "broker" accounts — and compares three monitor-placement
strategies:

* top-K *degree* (the naive heuristic: watch the loudest accounts),
* top-K *individual betweenness* (watch the K most central accounts —
  but central accounts pile up on the same bridges, so the monitors
  are redundant),
* the *group* betweenness group found by AdaAlg (jointly optimized, so
  one monitor per bridge suffices and the rest spread out).

The group-optimized placement intercepts more flows than both
heuristics — the gap to the degree heuristic is dramatic — while
AdaAlg needs only a few thousand sampled paths to find it.

Run with::

    python examples/misinformation_blocking.py
"""

import numpy as np

from repro import AdaAlg
from repro.graph import community_chain
from repro.paths import PathSampler, betweenness_centrality, exact_gbc


def intercepted_fraction(graph, group, n_flows=20000, seed=0):
    """Simulate random information flows; return the fraction a monitor
    group intercepts (Monte-Carlo counterpart of normalized GBC)."""
    sampler = PathSampler(graph, seed=seed)
    members = set(int(v) for v in group)
    hits = 0
    for _ in range(n_flows):
        flow = sampler.sample()
        if members.intersection(flow.nodes.tolist()):
            hits += 1
    return hits / n_flows


def main() -> None:
    k = 12
    graph = community_chain(seed=0)
    print(f"social network: {graph.n} accounts, {graph.num_edges} ties "
          f"(4 communities, 3-account bridges)")
    print(f"placing K={k} misinformation monitors\n")

    by_degree = np.argsort(graph.out_degrees())[::-1][:k].tolist()

    print("computing exact betweenness (Brandes)...")
    centrality = betweenness_centrality(graph)
    by_betweenness = np.argsort(centrality)[::-1][:k].tolist()

    print("running AdaAlg...")
    result = AdaAlg(eps=0.3, gamma=0.01, seed=11).run(graph, k)
    by_group = result.group
    print(f"AdaAlg used {result.num_samples} path samples "
          f"({result.elapsed_seconds:.2f}s)\n")

    print(f"{'strategy':<24}{'intercepted flows':>18}{'exact GBC':>14}")
    for label, group in [
        ("top-K degree", by_degree),
        ("top-K betweenness", by_betweenness),
        ("AdaAlg group (GBC)", by_group),
    ]:
        fraction = intercepted_fraction(graph, group, seed=5)
        gbc = exact_gbc(graph, group) / graph.num_ordered_pairs
        print(f"{label:<24}{fraction:>17.1%}{gbc:>14.1%}")

    bridges = set(range(graph.n - 9, graph.n))  # the 3x3 bridge accounts
    print(f"\nbridge accounts among top-K betweenness picks: "
          f"{len(bridges & set(by_betweenness))} (stacked on the same paths)")
    print(f"bridge accounts among the AdaAlg group        : "
          f"{len(bridges & set(by_group))} (cross traffic is covered once; "
          f"the rest spread into the communities)")


if __name__ == "__main__":
    main()
