"""Incremental network-monitor deployment on a directed network.

Dolev et al. (2009) — cited by the paper — motivate GBC with network
monitoring: traffic between hosts follows shortest routes, and a set of
monitors should see as much traffic as possible.  Deployment is
incremental: monitors are installed one at a time, and each new monitor
should maximize the *marginal* traffic it adds.

This example uses the directed Email-euAll stand-in and the exact Puzis
successive algorithm (the paper's O(n^3) reference, feasible here
because the stand-in is small) to deploy monitors one by one, printing
the coverage curve — the classic diminishing-returns picture that makes
greedy (1 - 1/e)-optimal.  It then shows that AdaAlg reaches nearly the
same coverage from a few thousand samples instead of an all-pairs
computation.

Run with::

    python examples/network_monitoring.py
"""

from repro import AdaAlg, PuzisGreedy, datasets
from repro.graph import giant_component
from repro.paths import exact_gbc


def main() -> None:
    k = 10
    graph = datasets.load("Email-euAll", seed=1)
    # keep the exact algorithm fast: restrict to a subsampled core
    if graph.n > 1200:
        core = sorted(
            range(graph.n),
            key=lambda v: graph.out_degree(v) + graph.in_degree(v),
            reverse=True,
        )[:1200]
        graph, _ = giant_component(graph.subgraph(core))
    pairs = graph.num_ordered_pairs
    print(f"monitoring network: {graph.n} hosts, {graph.num_edges} directed links")

    print("\nexact incremental deployment (Puzis successive algorithm):")
    exact = PuzisGreedy().run(graph, k)
    covered = 0.0
    print(f"  {'monitor':>8}  {'host':>6}  {'marginal':>10}  {'total coverage':>15}")
    for i, (host, gain) in enumerate(zip(exact.group, exact.diagnostics["gains"])):
        covered += gain
        print(f"  {i + 1:>8}  {host:>6}  {gain / pairs:>9.2%}  {covered / pairs:>14.2%}")

    print("\nsampling-based deployment (AdaAlg):")
    ada = AdaAlg(eps=0.3, gamma=0.01, seed=21).run(graph, k)
    ada_coverage = exact_gbc(graph, ada.group) / pairs
    print(f"  group   : {sorted(ada.group)}")
    print(f"  coverage: {ada_coverage:.2%} "
          f"(exact greedy reached {covered / pairs:.2%})")
    print(f"  cost    : {ada.num_samples} sampled paths vs "
          f"{graph.n}^2 all-pairs work for the exact algorithm")
    ratio = ada_coverage / (covered / pairs)
    print(f"  quality : {ratio:.1%} of the exact greedy deployment")


if __name__ == "__main__":
    main()
