"""Unit tests for the dataset registry."""

import pytest

from repro.datasets import DATASETS, dataset_names, get_spec, load
from repro.exceptions import DatasetError
from repro.graph import weakly_connected_components


class TestRegistry:
    def test_ten_table1_entries(self):
        assert len(DATASETS) == 10

    def test_names_in_table_order(self):
        names = dataset_names()
        assert names[0] == "GrQc"
        assert names[-1] == "SyntheticNetwork-WS"

    def test_get_spec(self):
        spec = get_spec("Facebook")
        assert spec.paper_nodes == 63731
        assert not spec.directed

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            get_spec("NotADataset")

    def test_directedness_matches_paper(self):
        directed = {"Epinions", "Twitter", "Email-euAll", "LiveJournal"}
        for name, spec in DATASETS.items():
            assert spec.directed == (name in directed)


class TestLoad:
    @pytest.mark.parametrize("name", ["GrQc", "Twitter", "SyntheticNetwork-WS"])
    def test_load_basic(self, name):
        graph = load(name, seed=0)
        spec = get_spec(name)
        assert graph.n > 100
        assert graph.directed == spec.directed

    def test_giant_only_is_connected(self):
        graph = load("Email-euAll", seed=0, giant_only=True)
        labels = weakly_connected_components(graph)
        assert labels.max() == 0

    def test_whole_graph_can_be_larger(self):
        whole = load("Email-euAll", seed=0, giant_only=False)
        giant = load("Email-euAll", seed=0, giant_only=True)
        assert whole.n >= giant.n

    def test_deterministic_per_seed(self):
        assert load("GrQc", seed=5) == load("GrQc", seed=5)

    def test_different_seeds_differ(self):
        assert load("GrQc", seed=1) != load("GrQc", seed=2)

    def test_scale_sanity(self):
        """Stand-ins are scaled down but structurally non-trivial."""
        for name in dataset_names():
            graph = load(name, seed=0)
            spec = get_spec(name)
            assert 500 <= graph.n <= spec.paper_nodes
            assert graph.num_edges >= graph.n - 1  # dense enough to be connected-ish
