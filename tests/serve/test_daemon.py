"""End-to-end tests for the resident query daemon.

The server runs on a background event-loop thread inside the test
process (its signal-handler registration degrades gracefully off the
main thread; tests drain it with :meth:`GBCServer.request_drain`).
Clients speak the real line-delimited JSON protocol over TCP.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.graph import barabasi_albert, erdos_renyi
from repro.serve import ServeClient
from repro.serve.daemon import GBCServer, ServerConfig
from repro.serve.protocol import QueryKey, build_algorithm, result_payload


@pytest.fixture(scope="module")
def ba60():
    return barabasi_albert(60, 2, seed=3)


class _Harness:
    """A daemon on a background thread, drained on exit."""

    def __init__(self, config: ServerConfig):
        self.server = GBCServer(config)
        self.loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server._draining.wait()
        await self.server.drain()

    def __enter__(self) -> "_Harness":
        self._thread.start()
        assert self._ready.wait(timeout=60), "server did not start"
        return self

    def stop(self) -> None:
        if self._thread.is_alive():
            assert self.loop is not None
            self.loop.call_soon_threadsafe(self.server.request_drain)
            self._thread.join(timeout=120)
            assert not self._thread.is_alive(), "drain did not finish"

    def __exit__(self, *_exc) -> None:
        self.stop()

    def client(self) -> ServeClient:
        return ServeClient(port=self.server.bound_port)

    def counter(self, name: str) -> int:
        return self.server.telemetry.counters.get(name, 0)


def _config(graph, **overrides) -> ServerConfig:
    defaults = dict(datasets={"ba": graph}, port=0, cache_size=8)
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestAnswerPaths:
    def test_cache_hit_and_miss(self, ba60):
        with _Harness(_config(ba60)) as daemon:
            with daemon.client() as client:
                first = client.query("ba", k=2, eps=0.6, gamma=0.1, seed=5)
                second = client.query("ba", k=2, eps=0.6, gamma=0.1, seed=5)
            assert first["served"]["source"] == "computed"
            assert second["served"]["source"] == "cache"
            assert second["result"] == first["result"]
            assert daemon.counter("serve.queries") == 2
            assert daemon.counter("serve.cache_misses") == 1
            assert daemon.counter("serve.cache_hits") == 1
            assert daemon.counter("serve.computed") == 1

    def test_result_bit_identical_to_direct_run(self, ba60):
        """The headline acceptance criterion: a cold-lane served answer
        equals the single-shot run with the same seed, byte for byte."""
        key = QueryKey("ba", "adaalg", 2, 0.6, 0.1, 7)
        direct = result_payload(
            build_algorithm(key, engine="serial").run(ba60, key.k), key.k
        )
        with _Harness(_config(ba60)) as daemon:
            with daemon.client() as client:
                served = client.query(
                    "ba", k=2, eps=0.6, gamma=0.1, seed=7
                )
        assert json.dumps(served["result"], sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )

    def test_warm_lane_batches_follow_up_queries(self, ba60):
        """A second query on the same (dataset, algorithm, seed) lane
        reuses the warm sample pool instead of resampling."""
        with _Harness(_config(ba60)) as daemon:
            with daemon.client() as client:
                first = client.query("ba", k=2, eps=0.6, gamma=0.1, seed=5)
                second = client.query("ba", k=2, eps=0.5, gamma=0.1, seed=5)
            assert first["served"]["samples_reused"] == 0
            reused = second["served"]["samples_reused"]
            assert reused == first["result"]["num_samples"]
            assert daemon.counter("serve.batched") == 1
            assert daemon.counter("serve.samples_reused") == reused

    def test_concurrent_identical_queries_coalesce(self, ba60):
        """N equal in-flight queries cost ONE sampling pass: the
        followers ride the leader's future (``serve.coalesced`` counts
        N-1), and everyone gets the same bits."""
        clients = 4
        daemon = _Harness(_config(ba60))
        with daemon:
            server = daemon.server
            gate = threading.Event()
            entered = threading.Event()
            original = server._compute

            def gated(key):
                entered.set()
                assert gate.wait(timeout=60), "test gate never opened"
                return original(key)

            server._compute = gated
            answers: list[dict] = [None] * clients
            errors: list[BaseException] = []

            def ask(slot):
                try:
                    with daemon.client() as client:
                        answers[slot] = client.query(
                            "ba", k=2, eps=0.6, gamma=0.1, seed=11
                        )
                except BaseException as exc:  # surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=ask, args=(i,)) for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            # the leader is inside _compute (blocked on the gate); wait
            # until every follower has been admitted and parked on the
            # leader's future, observable as the coalesced counter
            assert entered.wait(timeout=60)
            deadline = time.monotonic() + 60
            while daemon.counter("serve.coalesced") < clients - 1:
                assert time.monotonic() < deadline, (
                    f"followers never coalesced: "
                    f"{dict(server.telemetry.counters)}"
                )
                time.sleep(0.01)
            gate.set()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors
            assert daemon.counter("serve.queries") == clients
            assert daemon.counter("serve.computed") == 1
            assert daemon.counter("serve.coalesced") == clients - 1
            reference = answers[0]["result"]
            assert all(a["result"] == reference for a in answers)
            sources = sorted(a["served"]["source"] for a in answers)
            assert sources == ["coalesced"] * (clients - 1) + ["computed"]

    def test_ping_and_stats(self, ba60):
        with _Harness(_config(ba60)) as daemon:
            with daemon.client() as client:
                assert client.ping()["pong"] is True
                client.query("ba", k=1, eps=0.6, gamma=0.1, seed=3)
                stats = client.stats()
            assert stats["datasets"]["ba"]["n"] == 60
            assert stats["cache"]["capacity"] == 8
            lanes = stats["lanes"]
            assert len(lanes) == 1
            assert lanes[0]["algorithm"] == "adaalg"
            assert lanes[0]["queries"] == 1
            assert lanes[0]["samples"] > 0
            assert stats["counters"]["serve.computed"] == 1


class TestErrors:
    def test_bad_frames_answer_without_poisoning_the_connection(self, ba60):
        with _Harness(_config(ba60)) as daemon:
            with daemon.client() as client:
                bad = client.request({"op": "query", "dataset": "nope"})
                assert bad["ok"] is False and "nope" in bad["error"]
                bad = client.request({"op": "launch-missiles"})
                assert bad["ok"] is False and "unknown op" in bad["error"]
                client._sock.sendall(b"this is not json\n")
                line = client._reader.readline()
                assert json.loads(line)["ok"] is False
                # the same connection still serves real queries
                good = client.query("ba", k=1, eps=0.6, gamma=0.1, seed=3)
                assert good["ok"] is True
            assert daemon.counter("serve.errors") == 3

    def test_compute_failure_reports_and_daemon_survives(self, ba60):
        daemon = _Harness(_config(ba60))
        with daemon:
            def boom(key):
                raise ArithmeticError("sampler exploded")

            daemon.server._compute = boom
            with daemon.client() as client:
                answer = client.request(
                    {"op": "query", "dataset": "ba", "eps": 0.6}
                )
                assert answer["ok"] is False
                assert "ArithmeticError" in answer["error"]
                assert client.ping()["pong"] is True
            # the failed key left the single-flight table
            assert not daemon.server._inflight


class TestDrain:
    def test_drain_checkpoints_lanes_and_releases_engines(self, ba60, tmp_path):
        warm = tmp_path / "warm"
        daemon = _Harness(_config(ba60, warm_dir=str(warm)))
        with daemon:
            with daemon.client() as client:
                first = client.query("ba", k=2, eps=0.6, gamma=0.1, seed=5)
            assert daemon.server._lanes
        # context exit drained: lanes checkpointed then closed
        files = sorted(warm.glob("*.warm.npz"))
        assert len(files) == 1
        assert files[0].name == "ba__adaalg__5.warm.npz"
        assert not daemon.server._lanes

        # a fresh daemon thaws the lane and batches its first query
        second = _Harness(_config(ba60, warm_dir=str(warm)))
        with second:
            with second.client() as client:
                answer = client.query("ba", k=3, eps=0.5, gamma=0.1, seed=5)
            reused = answer["served"]["samples_reused"]
            assert reused == first["result"]["num_samples"]
            assert second.counter("serve.batched") == 1

    def test_thaw_skips_mismatched_graph_checkpoints(self, ba60, tmp_path, capfd):
        """A warm checkpoint taken against a different graph must be
        skipped with a warning at startup, never crash the daemon."""
        warm = tmp_path / "warm"
        other = erdos_renyi(30, 0.2, seed=0)
        with _Harness(_config(other, warm_dir=str(warm))) as daemon:
            with daemon.client() as client:
                client.query("ba", k=1, eps=0.6, gamma=0.1, seed=5)
        assert list(warm.glob("*.warm.npz"))
        # same warm dir, same dataset NAME, different graph bits
        with _Harness(_config(ba60, warm_dir=str(warm))) as daemon:
            assert not daemon.server._lanes  # nothing thawed
            with daemon.client() as client:
                answer = client.query("ba", k=1, eps=0.6, gamma=0.1, seed=5)
            assert answer["served"]["samples_reused"] == 0
        err = capfd.readouterr().err
        assert "skipping warm lane" in err
        assert "fingerprint mismatch" in err

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="no POSIX shared memory"
    )
    def test_drain_unlinks_shared_memory_and_workers(self, ba60, tmp_path):
        """With the epoch engine, drain must stop the persistent
        workers and unlink every /dev/shm graph segment."""
        before = set(multiprocessing.active_children())
        daemon = _Harness(
            _config(
                ba60,
                engine="epoch",
                workers=2,
                epoch_size=64,
                warm_dir=str(tmp_path / "warm"),
            )
        )
        shm_paths: list[str] = []
        with daemon:
            with daemon.client() as client:
                client.query("ba", k=2, eps=0.6, gamma=0.1, seed=5)
            for lane in daemon.server._lanes.values():
                for engine in lane.session.engines:
                    segments = getattr(engine, "_segments", None)
                    if segments is not None:
                        shm_paths.extend(
                            os.path.join("/dev/shm", name.lstrip("/"))
                            for name in segments.block_names()
                        )
        assert not any(os.path.exists(p) for p in shm_paths)
        leaked = [
            p
            for p in set(multiprocessing.active_children()) - before
            if p.is_alive()
        ]
        assert not leaked, f"drain leaked worker processes: {leaked}"
        assert list((tmp_path / "warm").glob("*.warm.npz"))


class TestSigterm:
    def test_sigterm_drains_subprocess_cleanly(self, tmp_path):
        """The real thing: a ``repro-gbc serve`` process answering over
        TCP exits 0 on SIGTERM, checkpointing its warm lanes."""
        ready = tmp_path / "ready.json"
        warm = tmp_path / "warm"
        env = dict(os.environ)
        root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = os.path.join(root, "src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--dataset",
                "SyntheticNetwork-BA",
                "--port",
                "0",
                "--ready-file",
                str(ready),
                "--warm-dir",
                str(warm),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 120
            while not ready.exists():
                assert proc.poll() is None, (
                    f"daemon died early: {proc.stderr.read().decode()}"
                )
                assert time.monotonic() < deadline, "daemon never came up"
                time.sleep(0.05)
            port = json.loads(ready.read_text())["port"]
            with ServeClient(port=port) as client:
                assert client.ping()["pong"] is True
                answer = client.query(
                    "SyntheticNetwork-BA", k=2, eps=0.6, gamma=0.1, seed=7
                )
                assert answer["result"]["num_samples"] > 0
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=120)
            stderr = proc.stderr.read().decode()
            assert code == 0, stderr
            assert "drained" in stderr
            assert list(warm.glob("*.warm.npz"))
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestLoopThreadStats:
    def test_stats_and_ping_answer_while_compute_is_busy(self, ba60):
        """Regression: stats/ping are loop-thread reads and must not
        queue behind a long sampling run on the compute thread."""
        daemon = _Harness(_config(ba60))
        with daemon:
            server = daemon.server
            gate = threading.Event()
            entered = threading.Event()
            original = server._compute

            def gated(key):
                entered.set()
                assert gate.wait(timeout=60), "test gate never opened"
                return original(key)

            server._compute = gated
            answer: list[dict] = []

            def ask():
                with daemon.client() as client:
                    answer.append(
                        client.query("ba", k=2, eps=0.6, gamma=0.1, seed=11)
                    )

            worker = threading.Thread(target=ask)
            worker.start()
            try:
                assert entered.wait(timeout=60)
                # the compute thread is parked on the gate; control ops
                # must still answer promptly on the loop thread
                started = time.monotonic()
                with daemon.client() as control:
                    assert control.ping()["pong"] is True
                    stats = control.stats()
                elapsed = time.monotonic() - started
                assert stats["ok"] is True
                assert stats["datasets"]["ba"]["n"] == 60
                assert elapsed < 10, (
                    f"stats/ping took {elapsed:.1f}s — queued behind compute"
                )
                assert not gate.is_set()  # the query is still in flight
            finally:
                gate.set()
                worker.join(timeout=120)
            assert not worker.is_alive()
            assert answer and answer[0]["ok"] is True


class TestThawRobustness:
    def test_thaw_skips_malformed_tag_checkpoints(self, ba60, tmp_path, capfd):
        """A warm checkpoint whose serve tag is missing keys is skipped
        with a warning before any session is resumed — startup survives
        and the daemon serves cold."""
        warm = tmp_path / "warm"
        warm.mkdir()
        algorithm = build_algorithm(
            QueryKey("ba", "adaalg", 1, 0.6, 0.1, 5), engine="serial"
        )
        session = algorithm.build_session(ba60)
        try:
            # dataset present, algorithm/seed keys missing
            session.checkpoint(
                str(warm / "ba__adaalg__5.warm.npz"),
                state={"serve": {"dataset": "ba"}},
            )
        finally:
            session.close()
        with _Harness(_config(ba60, warm_dir=str(warm))) as daemon:
            assert not daemon.server._lanes  # nothing thawed
            with daemon.client() as client:
                answer = client.query("ba", k=1, eps=0.6, gamma=0.1, seed=5)
            assert answer["ok"] is True
            assert answer["served"]["samples_reused"] == 0
        err = capfd.readouterr().err
        assert "skipping warm lane" in err
        assert "KeyError" in err
