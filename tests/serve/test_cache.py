"""Unit tests for the daemon's LRU result cache."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.serve import LRUCache


class TestValidation:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ParameterError):
            LRUCache(-1)

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.misses == 1 and cache.hits == 0


class TestSemantics:
    def test_hit_and_miss_counting(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_drops_the_coldest(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert "a" not in cache
        assert cache.get("b") == 2 and cache.get("c") == 3

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now coldest
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_put_refreshes_recency_and_value(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, "b" coldest
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_clear(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0 and "a" not in cache
