"""Tests for the daemon's ``mutate`` protocol op.

The headline contract: after a mutation, a re-issued query must return
the same group as a cold single-shot run on the compacted post-delta
graph — the daemon is allowed to reuse surviving samples, never to
serve a stale cached answer.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.exceptions import ServeError
from repro.graph import DeltaGraph, GraphUpdate, barabasi_albert
from repro.serve.cache import LRUCache
from repro.serve import ServeClient
from repro.serve.daemon import GBCServer, ServerConfig
from repro.serve.protocol import (
    QueryKey,
    build_algorithm,
    parse_mutation,
    result_payload,
)


@pytest.fixture(scope="module")
def ba60():
    return barabasi_albert(60, 2, seed=3)


class _Harness:
    """A daemon on a background thread, drained on exit (mirrors
    ``tests/serve/test_daemon.py``)."""

    def __init__(self, config: ServerConfig):
        self.server = GBCServer(config)
        self.loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server._draining.wait()
        await self.server.drain()

    def __enter__(self) -> "_Harness":
        self._thread.start()
        assert self._ready.wait(timeout=60), "server did not start"
        return self

    def __exit__(self, *_exc) -> None:
        if self._thread.is_alive():
            assert self.loop is not None
            self.loop.call_soon_threadsafe(self.server.request_drain)
            self._thread.join(timeout=120)
            assert not self._thread.is_alive(), "drain did not finish"

    def client(self) -> ServeClient:
        return ServeClient(port=self.server.bound_port)

    def counter(self, name: str) -> int:
        return self.server.telemetry.counters.get(name, 0)


def _config(graph, **overrides) -> ServerConfig:
    defaults = dict(datasets={"ba": graph}, port=0, cache_size=8)
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestParseMutation:
    def test_parses_all_three_op_kinds(self, ba60):
        dataset, update, radius = parse_mutation(
            {
                "dataset": "ba",
                "insert": [[0, 55], [1, 56, 3]],
                "delete": [[0, 1]],
                "reweight": [[2, 3, 9]],
            },
            {"ba": ba60},
        )
        assert dataset == "ba"
        assert update.num_ops == 4
        assert radius == 1

    def test_empty_frame_rejected(self, ba60):
        with pytest.raises(ServeError, match="no ops"):
            parse_mutation({"dataset": "ba"}, {"ba": ba60})

    def test_malformed_row_rejected(self, ba60):
        with pytest.raises(ServeError, match="malformed mutation"):
            parse_mutation(
                {"dataset": "ba", "insert": [[0]]}, {"ba": ba60}
            )

    def test_touch_radius_validated(self, ba60):
        frame = {"dataset": "ba", "insert": [[0, 1]]}
        _, _, radius = parse_mutation({**frame, "touch_radius": 0}, {"ba": ba60})
        assert radius == 0
        with pytest.raises(ServeError, match="touch_radius"):
            parse_mutation({**frame, "touch_radius": -1}, {"ba": ba60})
        with pytest.raises(ServeError, match="touch_radius"):
            parse_mutation({**frame, "touch_radius": "wide"}, {"ba": ba60})

    def test_unknown_dataset_rejected(self, ba60):
        with pytest.raises(ServeError):
            parse_mutation(
                {"dataset": "nope", "insert": [[0, 1]]}, {"ba": ba60}
            )


class TestCacheEviction:
    def test_evict_by_predicate(self):
        cache = LRUCache(8)
        a = QueryKey("a", "adaalg", 1, 0.5, 0.1, 0)
        b = QueryKey("b", "adaalg", 1, 0.5, 0.1, 0)
        cache.put(a, {"group": [0]})
        cache.put(b, {"group": [1]})
        assert cache.evict(lambda key: key.dataset == "a") == 1
        assert cache.get(a) is None
        assert cache.get(b) == {"group": [1]}


def _delta_ops():
    """A small but non-trivial delta on the 60-node BA graph."""
    return dict(insert=[(5, 41), (7, 52)], delete=[(0, 2)])


class TestMutateEndToEnd:
    def test_mutate_invalidates_cache_and_matches_cold_run(self, ba60):
        ops = _delta_ops()
        overlay = DeltaGraph(ba60)
        overlay.apply(GraphUpdate.from_ops(
            [(u, v, 1) for u, v in ops["insert"]], ops["delete"], ()
        ))
        compacted = overlay.compact()
        key = QueryKey("ba", "adaalg", 2, 0.6, 0.1, 7)
        cold = result_payload(
            build_algorithm(key, engine="serial").run(compacted, key.k), key.k
        )

        with _Harness(_config(ba60)) as daemon:
            with daemon.client() as client:
                before = client.query("ba", k=2, eps=0.6, gamma=0.1, seed=7)
                answer = client.mutate("ba", **ops)
                after = client.query("ba", k=2, eps=0.6, gamma=0.1, seed=7)
                stats = client.stats()

            mutated = answer["mutated"]
            assert mutated["dataset"] == "ba"
            assert mutated["ops"] == 3  # undirected delete counts one op each
            assert mutated["version"] == 1
            assert mutated["touched"] > 0
            assert mutated["n"] == compacted.num_nodes
            assert mutated["m"] == compacted.num_edges
            assert mutated["cache_evicted"] == 1

            # The pre-mutation cache entry must not be served again.
            assert before["served"]["source"] == "computed"
            assert after["served"]["source"] == "computed"
            assert after["result"]["group"] == cold["group"]

            assert stats["datasets"]["ba"]["version"] == 1
            assert daemon.counter("serve.mutations") == 1

    def test_mutate_migrates_warm_lanes(self, ba60):
        ops = _delta_ops()
        with _Harness(_config(ba60)) as daemon:
            with daemon.client() as client:
                client.query("ba", k=2, eps=0.6, gamma=0.1, seed=7)
                answer = client.mutate("ba", **ops)
                after = client.query("ba", k=2, eps=0.6, gamma=0.1, seed=7)

            mutated = answer["mutated"]
            assert mutated["lanes_updated"] >= 1
            assert mutated["invalidated"] + mutated["surviving"] > 0
            assert after["served"]["source"] == "computed"
            assert after["result"]["converged"]

    def test_mutate_unknown_dataset_is_client_error(self, ba60):
        with _Harness(_config(ba60)) as daemon:
            with daemon.client() as client:
                with pytest.raises(ServeError):
                    client.mutate("nope", insert=[(0, 1)])
            assert daemon.counter("serve.mutations") == 0

    def test_mutate_empty_ops_is_client_error(self, ba60):
        with _Harness(_config(ba60)) as daemon:
            with daemon.client() as client:
                with pytest.raises(ServeError, match="no ops"):
                    client.mutate("ba")
