"""Unit tests for the serve wire protocol (parsing + result contract)."""

from __future__ import annotations

import pytest

from repro.algorithms import AdaAlg
from repro.exceptions import ServeError
from repro.graph import barabasi_albert
from repro.serve import QueryKey, parse_request, result_payload
from repro.serve.protocol import ALGORITHMS, build_algorithm

DATASETS = {"ba": None}


class TestParseRequest:
    def test_full_frame(self):
        key = parse_request(
            {
                "op": "query",
                "dataset": "ba",
                "algorithm": "hedge",
                "k": 3,
                "eps": 0.5,
                "gamma": 0.1,
                "seed": 9,
            },
            DATASETS,
        )
        assert key == QueryKey("ba", "hedge", 3, 0.5, 0.1, 9)

    def test_defaults(self):
        key = parse_request({"dataset": "ba"}, DATASETS)
        assert key == QueryKey("ba", "adaalg", 1, 0.3, 0.01, 0)

    def test_keys_are_hashable_cache_identities(self):
        a = parse_request({"dataset": "ba", "k": 2}, DATASETS)
        b = parse_request({"dataset": "ba", "k": "2"}, DATASETS)
        assert a == b and hash(a) == hash(b)
        assert a != parse_request({"dataset": "ba", "k": 3}, DATASETS)

    def test_unknown_dataset_names_the_inventory(self):
        with pytest.raises(ServeError, match="ba"):
            parse_request({"dataset": "nope"}, DATASETS)

    def test_unknown_algorithm(self):
        with pytest.raises(ServeError, match="unknown algorithm"):
            parse_request({"dataset": "ba", "algorithm": "exact"}, DATASETS)

    @pytest.mark.parametrize(
        "patch",
        [
            {"k": 0},
            {"k": "three"},
            {"eps": 0.0},
            {"eps": 1.0},
            {"gamma": -0.5},
            {"gamma": 1.5},
            {"seed": "abc"},
        ],
    )
    def test_out_of_range_parameters(self, patch):
        frame = {"dataset": "ba", **patch}
        with pytest.raises(ServeError):
            parse_request(frame, DATASETS)

    def test_non_object_frame(self):
        with pytest.raises(ServeError):
            parse_request(["not", "a", "dict"], DATASETS)


class TestBuildAlgorithm:
    def test_every_served_algorithm_constructs(self):
        from repro.serve.protocol import _CLASSES

        for name in ALGORITHMS:
            key = QueryKey("ba", name, 2, 0.4, 0.05, 7)
            algorithm = build_algorithm(key, engine="serial")
            assert isinstance(algorithm, _CLASSES[name])
            if name != "exhaust":  # EXHAUST pins its own (eps, gamma)
                assert algorithm.eps == 0.4
                assert algorithm.gamma == 0.05


class TestResultPayload:
    def test_matches_the_cli_run_contract(self):
        """The daemon's ``result`` field and ``run --json`` are the
        same function — the bit-identity acceptance criterion."""
        from repro.cli import _result_payload

        graph = barabasi_albert(60, 2, seed=3)
        result = AdaAlg(eps=0.6, gamma=0.1, seed=5).run(graph, 2)
        payload = result_payload(result, 2)
        assert payload == _result_payload(result, 2)
        assert payload["k"] == 2
        assert payload["group"] == sorted(payload["group"])
        assert all(isinstance(v, int) for v in payload["group"])
        # no wall-clock or resume bookkeeping in the contract
        assert "seconds" not in payload and "resumed" not in payload
