"""Tests for the epoch-based asynchronous engine (:mod:`repro.engine.epoch`).

The contract under test:

* the sample stream is a pure function of ``(seed, epoch_size)`` —
  bit-identical for 0 (in-process), 1, or 4 persistent workers, and
  independent of how ``draw`` requests slice it;
* ``extend`` rounds targets up to epoch boundaries and ingests each
  epoch as one packed delta;
* ``rng_state`` snapshots are only defined at epoch boundaries and
  reposition the stream exactly;
* statistics account epochs, dispatches (including speculation), and
  worker startup;
* a dying worker degrades to in-process computation without changing
  a single sample.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage import CoverageInstance
from repro.engine import (
    EpochEngine,
    create_engine,
    pack_samples,
    unpack_samples,
)
from repro.engine.serial import SerialEngine
from repro.exceptions import CheckpointError, ParameterError
from repro.graph import barabasi_albert


@pytest.fixture(scope="module")
def ba200():
    return barabasi_albert(200, 2, seed=3)


def _epoch(graph, seed=7, workers=0, epoch_size=64, **kwargs):
    return EpochEngine(
        graph, seed=seed, workers=workers, epoch_size=epoch_size, **kwargs
    )


def _assert_same_samples(first, second):
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert a.source == b.source
        assert a.target == b.target
        assert a.distance == b.distance
        assert a.sigma_st == b.sigma_st
        assert np.array_equal(a.nodes, b.nodes)


class TestValidation:
    def test_bad_workers(self, grid3x3):
        with pytest.raises(ParameterError):
            EpochEngine(grid3x3, workers=-1)

    def test_bad_epoch_size(self, grid3x3):
        with pytest.raises(ParameterError):
            EpochEngine(grid3x3, epoch_size=0)
        with pytest.raises(ParameterError):
            create_engine("epoch", grid3x3, epoch_size=0)

    def test_bad_lookahead(self, grid3x3):
        with pytest.raises(ParameterError):
            EpochEngine(grid3x3, lookahead=-1)

    def test_factory_routes_epoch_size(self, grid3x3):
        with create_engine("epoch", grid3x3, epoch_size=17) as engine:
            assert engine.epoch_size == 17
        # other engines accept and ignore the knob
        with create_engine("serial", grid3x3, epoch_size=17) as engine:
            assert not hasattr(engine, "epoch_size")


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_identical_across_worker_counts(self, ba200, workers):
        def run(n_workers):
            instance = CoverageInstance(ba200.n)
            with _epoch(ba200, workers=n_workers) as engine:
                engine.extend(instance, 100)
                engine.extend(instance, 300)
            return instance

        reference = run(0)
        observed = run(workers)
        assert observed.num_paths == reference.num_paths
        assert np.array_equal(observed.degrees(), reference.degrees())
        for pid in range(reference.num_paths):
            assert np.array_equal(observed.path(pid), reference.path(pid))

    def test_draw_slicing_invariant(self, ba200):
        """Carried epoch tails make the stream independent of how
        requests slice it."""
        with _epoch(ba200, epoch_size=50, workers=2) as engine:
            sliced = engine.draw(30) + engine.draw(45)
        with _epoch(ba200, epoch_size=50, workers=0) as engine:
            whole = engine.draw(75)
        _assert_same_samples(sliced, whole)

    def test_draw_and_extend_share_the_stream(self, ba200):
        """``extend`` after ``draw`` continues from the carry, exactly
        where a pure-draw engine would be."""
        instance = CoverageInstance(ba200.n)
        with _epoch(ba200, epoch_size=64, workers=0) as engine:
            head = engine.draw(40)  # carries 24 samples
            engine.extend(instance, 60)  # flushes carry + 1 epoch
        assert instance.num_paths == 88  # 24 carried + 64
        with _epoch(ba200, epoch_size=64, workers=0) as engine:
            replay = engine.draw(128)
        _assert_same_samples(head, replay[:40])
        for pid in range(instance.num_paths):
            sample = replay[40 + pid]
            # carried samples append in path order, packed epochs in
            # sorted order — the covered node *set* is what must match
            assert np.array_equal(
                np.unique(instance.path(pid)), np.unique(sample.nodes)
            )

    def test_epoch_size_is_part_of_stream_identity(self, ba200):
        with _epoch(ba200, epoch_size=32, workers=0) as engine:
            a = engine.draw(64)
        with _epoch(ba200, epoch_size=64, workers=0) as engine:
            b = engine.draw(64)
        assert any(
            x.source != y.source or x.target != y.target
            for x, y in zip(a, b)
        )


class TestExtendRounding:
    def test_extend_lands_on_epoch_boundary(self, grid3x3):
        instance = CoverageInstance(grid3x3.n)
        with _epoch(grid3x3, epoch_size=30, workers=0) as engine:
            engine.extend(instance, 10)
            assert instance.num_paths == 30
            engine.extend(instance, 30)  # already satisfied
            assert instance.num_paths == 30
            engine.extend(instance, 31)
            assert instance.num_paths == 60

    def test_effective_target(self, grid3x3):
        with _epoch(grid3x3, epoch_size=30, workers=0) as engine:
            assert engine.effective_target(10, 0) == 30
            assert engine.effective_target(30, 0) == 30
            assert engine.effective_target(31, 30) == 60
            assert engine.effective_target(20, 25) == 25  # no shrink
            engine.draw(10)  # 20 samples carried
            assert engine.effective_target(10, 0) == 20  # carry flushes
            assert engine.effective_target(50, 0) == 50  # carry + 1 epoch

    def test_extend_flushes_carry_first(self, grid3x3):
        instance = CoverageInstance(grid3x3.n)
        with _epoch(grid3x3, epoch_size=30, workers=0) as engine:
            engine.draw(10)
            engine.extend(instance, 15)
            # 20 carried samples cover the request without a new epoch
            assert instance.num_paths == 20
            assert engine.stats.epochs == 1


class TestStats:
    def test_in_process_accounting(self, ba200):
        instance = CoverageInstance(ba200.n)
        with _epoch(ba200, epoch_size=64, workers=0) as engine:
            engine.extend(instance, 100)
            engine.extend(instance, 300)
            stats = engine.stats
        assert stats.samples == 320
        assert stats.epochs == stats.batches == stats.dispatches == 5
        assert stats.draw_calls == 2
        assert stats.pool_startups == 0
        assert stats.workers == 0
        assert stats.traversals > 0
        assert sum(stats.worker_samples.values()) == 320
        payload = stats.as_dict()
        assert payload["epochs"] == 5
        assert payload["dispatches"] == 5

    def test_workers_speculate_but_ingest_exactly(self, ba200):
        instance = CoverageInstance(ba200.n)
        engine = _epoch(ba200, epoch_size=64, workers=2, lookahead=2)
        with engine:
            engine.extend(instance, 100)
            engine.extend(instance, 300)
            stats = engine.stats
            if stats.workers == 0:  # pragma: no cover - sandboxed
                pytest.skip("subprocesses unavailable")
            assert stats.samples == 320
            assert stats.epochs == 5
            # lookahead keeps tickets in flight beyond demand
            assert stats.dispatches > stats.epochs
            assert stats.pool_startups == 1
            # work counters fold at ingest: speculative epochs that are
            # still in flight contribute nothing
            assert sum(stats.worker_samples.values()) == 320

    def test_persistent_workers_survive_draws(self, ba200):
        engine = _epoch(ba200, epoch_size=64, workers=1)
        with engine:
            engine.draw(64)
            engine.draw(64)
            instance = CoverageInstance(ba200.n)
            engine.extend(instance, 256)
            if engine.stats.workers == 0:  # pragma: no cover - sandboxed
                pytest.skip("subprocesses unavailable")
            assert engine.stats.pool_startups == 1


class TestWire:
    def test_pack_unpack_round_trip(self, ba200):
        with SerialEngine(ba200, seed=5) as serial:
            samples = serial.draw(40)
        packed = pack_samples(samples, include_endpoints=True)
        assert len(packed) == 40
        _assert_same_samples(unpack_samples(packed), samples)

    def test_packed_coverage_is_deduplicated(self, two_triangles):
        # null samples (disconnected pairs) pack to empty coverage rows
        with SerialEngine(two_triangles, seed=3) as serial:
            samples = serial.draw(60)
        packed = pack_samples(samples, include_endpoints=True)
        for i, sample in enumerate(samples):
            row = packed.cov_flat[packed.cov_offsets[i]:packed.cov_offsets[i + 1]]
            expected = np.unique(sample.nodes)
            assert np.array_equal(row, expected)

    def test_pickle_round_trip(self, grid3x3):
        import pickle

        with SerialEngine(grid3x3, seed=5) as serial:
            samples = serial.draw(10)
        packed = pack_samples(samples, include_endpoints=False)
        clone = pickle.loads(pickle.dumps(packed))
        _assert_same_samples(unpack_samples(clone), unpack_samples(packed))


class TestCheckpoint:
    def test_mid_epoch_snapshot_refused(self, grid3x3):
        with _epoch(grid3x3, epoch_size=30, workers=0) as engine:
            engine.draw(10)
            with pytest.raises(CheckpointError):
                engine.rng_state()

    def test_state_repositions_the_stream(self, ba200):
        engine = _epoch(ba200, epoch_size=64, workers=2, seed=9)
        instance = CoverageInstance(ba200.n)
        engine.extend(instance, 128)
        state = engine.rng_state()
        assert state["bit_generator"] == "repro-epoch-stream"
        assert state["next_epoch"] == 2
        engine.close()

        resumed = _epoch(ba200, epoch_size=64, workers=0, seed=0)
        resumed.set_rng_state(state)
        continued = resumed.draw(64)
        resumed.close()

        straight = _epoch(ba200, epoch_size=64, workers=0, seed=9)
        straight.draw(128)
        expected = straight.draw(64)
        straight.close()
        _assert_same_samples(continued, expected)

    def test_epoch_size_mismatch_refused(self, grid3x3):
        with _epoch(grid3x3, epoch_size=30, workers=0) as engine:
            state = engine.rng_state()
        with _epoch(grid3x3, epoch_size=31, workers=0) as other:
            with pytest.raises(CheckpointError):
                other.set_rng_state(state)

    def test_foreign_state_refused(self, grid3x3):
        with _epoch(grid3x3, workers=0) as engine:
            with pytest.raises(CheckpointError):
                engine.set_rng_state({"bit_generator": "PCG64", "state": {}})


class TestLifecycle:
    def test_close_is_idempotent_and_restartable(self, ba200):
        engine = _epoch(ba200, epoch_size=64, workers=0)
        first = engine.draw(64)
        engine.close()
        engine.close()
        # the stream position survives close: the next epoch follows on
        second = engine.draw(64)
        engine.close()
        straight = _epoch(ba200, epoch_size=64, workers=0)
        expected = straight.draw(128)
        straight.close()
        _assert_same_samples(first + second, expected)

    def test_extend_failure_reaps_workers(self, ba200):
        """An exception escaping ``extend`` must stop the persistent
        workers even when the caller holds the exception (and through
        its traceback, the engine) in a reference cycle — the scenario
        where ``__del__`` never runs and daemon children would
        otherwise sample forever."""
        import multiprocessing

        before = set(multiprocessing.active_children())
        engine = _epoch(ba200, epoch_size=64, workers=2)
        engine.draw(64)
        if engine.stats.workers == 0:  # pragma: no cover - sandboxed
            engine.close()
            pytest.skip("subprocesses unavailable")

        class Boom(Exception):
            pass

        instance = CoverageInstance(ba200.n)

        def failing_append(flat, offsets):
            raise Boom("coverage append failed")

        instance.add_paths_packed = failing_append
        cycle = []
        with pytest.raises(Boom) as excinfo:
            engine.extend(instance, 256)
        # a cycle through the traceback keeps the engine frames alive,
        # defeating refcount-driven __del__ cleanup
        cycle.append(excinfo.value)
        cycle.append(cycle)
        leaked = [
            p
            for p in set(multiprocessing.active_children()) - before
            if p.is_alive()
        ]
        assert not leaked, f"extend failure leaked workers: {leaked}"
        # the engine stays restartable: the next draw brings the pool
        # back and the stream continues from the carried position
        del instance.add_paths_packed
        engine.extend(instance, 64)
        assert instance.num_paths >= 64
        engine.close()

    def test_worker_death_degrades_deterministically(self, ba200):
        engine = _epoch(ba200, epoch_size=64, workers=2)
        first = engine.draw(64)
        if engine.stats.workers == 0:  # pragma: no cover - sandboxed
            engine.close()
            pytest.skip("subprocesses unavailable")
        for proc in engine._procs:
            proc.terminate()
        # draw past the speculation horizon (lookahead 2 x 2 workers):
        # epochs the dead pool never computed must be awaited, which is
        # what forces death detection — a draw small enough to be served
        # from already-arrived speculative epochs may never notice
        second = engine.draw(512)
        assert engine.stats.workers == 0  # degraded in-process
        engine.close()
        straight = _epoch(ba200, epoch_size=64, workers=0)
        expected = straight.draw(576)
        straight.close()
        _assert_same_samples(first + second, expected)
