"""Tests for the execution-engine substrate (:mod:`repro.engine`).

The engine contract under test:

* every engine draws from the same path distribution (chi-square
  cross-check on a small graph where the law is known empirically);
* a fixed seed gives a deterministic sample sequence, and the process
  engine is additionally bit-identical across worker counts;
* ``extend`` applies the endpoint convention;
* statistics track the work actually performed.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.coverage import CoverageInstance
from repro.engine import (
    ENGINES,
    BatchEngine,
    EpochEngine,
    ProcessPoolEngine,
    SerialEngine,
    create_engine,
)
from repro.engine.base import coverage_nodes
from repro.exceptions import ParameterError
from repro.graph import from_weighted_edges

ENGINE_NAMES = sorted(ENGINES)


def _engine(name, graph, seed=0, **kwargs):
    return create_engine(name, graph, seed=seed, **kwargs)


class TestFactory:
    def test_known_names(self, grid3x3):
        for name in ENGINE_NAMES:
            with _engine(name, grid3x3) as engine:
                assert engine.name == name

    def test_unknown_name(self, grid3x3):
        with pytest.raises(ParameterError):
            create_engine("turbo", grid3x3)

    def test_registry_covers_classes(self):
        assert ENGINES == {
            "serial": SerialEngine,
            "batch": BatchEngine,
            "process": ProcessPoolEngine,
            "epoch": EpochEngine,
        }

    def test_bad_workers(self, grid3x3):
        # workers=0 is the explicit in-process fallback; negatives are bad
        with pytest.raises(ParameterError):
            ProcessPoolEngine(grid3x3, workers=-1)

    def test_bad_kernel(self, grid3x3):
        with pytest.raises(ParameterError):
            BatchEngine(grid3x3, kernel="turbo")
        with pytest.raises(ParameterError):
            create_engine("process", grid3x3, kernel="turbo")

    def test_bad_cache_sources(self, grid3x3):
        with pytest.raises(ParameterError):
            SerialEngine(grid3x3, cache_sources=-1)

    def test_bad_chunk_size(self, grid3x3):
        with pytest.raises(ParameterError):
            ProcessPoolEngine(grid3x3, chunk_size=0)

    def test_negative_count_rejected(self, grid3x3):
        for name in ENGINE_NAMES:
            with _engine(name, grid3x3) as engine:
                with pytest.raises(ParameterError):
                    engine.draw(-1)


class TestDrawBasics:
    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_count_and_validity(self, grid3x3, name):
        with _engine(name, grid3x3, seed=7) as engine:
            samples = engine.draw(50)
        assert len(samples) == 50
        for sample in samples:
            assert sample.source != sample.target
            assert sample.nodes[0] == sample.source
            assert sample.nodes[-1] == sample.target
            assert len(sample.nodes) == sample.distance + 1

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_zero_draw(self, grid3x3, name):
        with _engine(name, grid3x3) as engine:
            assert engine.draw(0) == []

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_null_samples_on_disconnected(self, two_triangles, name):
        with _engine(name, two_triangles, seed=3) as engine:
            samples = engine.draw(60)
        # 18 of 30 ordered pairs straddle the components
        nulls = sum(sample.is_null for sample in samples)
        assert 0 < nulls < 60

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_weighted_graph(self, name):
        graph = from_weighted_edges(
            [(0, 1, 1), (1, 2, 1), (0, 2, 5), (2, 3, 2)], n=4
        )
        with _engine(name, graph, seed=11) as engine:
            samples = engine.draw(20)
        assert len(samples) == 20
        for sample in samples:
            assert not sample.is_null


class TestDeterminism:
    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_same_seed_same_samples(self, grid3x3, name):
        def run():
            with _engine(name, grid3x3, seed=42) as engine:
                return engine.draw(40)

        first, second = run(), run()
        for a, b in zip(first, second):
            assert a.source == b.source
            assert a.target == b.target
            assert np.array_equal(a.nodes, b.nodes)

    def test_process_identical_across_worker_counts(self, grid3x3):
        """The chunked sub-stream scheme: workers=1,2,4 agree bitwise."""

        def run(workers):
            engine = ProcessPoolEngine(
                grid3x3, seed=2024, workers=workers, chunk_size=16
            )
            with engine:
                return engine.draw(100)

        reference = run(1)
        for workers in (0, 2, 4):
            samples = run(workers)
            assert len(samples) == len(reference)
            for a, b in zip(reference, samples):
                assert a.source == b.source
                assert a.target == b.target
                assert np.array_equal(a.nodes, b.nodes)

    def test_process_groups_identical_across_worker_counts(self, barbell):
        """End-to-end: AdaAlg's group is invariant to the worker count."""
        from repro.algorithms import AdaAlg

        def run(workers):
            algorithm = AdaAlg(
                eps=0.5, gamma=0.1, seed=5, engine="process", workers=workers
            )
            return algorithm.run(barbell, 2)

        reference = run(1)
        for workers in (0, 2, 4):
            result = run(workers)
            assert result.group == reference.group
            assert result.estimate == reference.estimate
            assert result.num_samples == reference.num_samples

    def test_batch_identical_across_kernels(self, grid3x3):
        """The wavefront and scalar kernels are bit-identical."""

        def run(kernel):
            with BatchEngine(grid3x3, seed=31, kernel=kernel) as engine:
                return engine.draw(120)

        for a, b in zip(run("wavefront"), run("scalar")):
            assert a.source == b.source
            assert a.target == b.target
            assert np.array_equal(a.nodes, b.nodes)
            assert a.sigma_st == b.sigma_st
            assert a.edges_explored == b.edges_explored

    def test_adaalg_identical_across_kernels(self, barbell):
        """End-to-end: the kernel knob trades speed, never results."""
        from repro.algorithms import AdaAlg

        def run(kernel):
            algorithm = AdaAlg(
                eps=0.5, gamma=0.1, seed=5, engine="batch", kernel=kernel
            )
            return algorithm.run(barbell, 2)

        reference = run("wavefront")
        result = run("scalar")
        assert result.group == reference.group
        assert result.estimate == reference.estimate
        assert result.estimate_unbiased == reference.estimate_unbiased
        assert result.num_samples == reference.num_samples


class TestDistribution:
    """Engines must sample the same path law, not just any paths."""

    @staticmethod
    def _pair_counts(samples, n):
        counts = np.zeros((n, n), dtype=np.int64)
        for sample in samples:
            counts[sample.source, sample.target] += 1
        return counts.ravel()

    def test_pair_marginal_uniform(self, grid3x3):
        """Each engine's (s, t) marginal is uniform over ordered pairs."""
        scipy_stats = pytest.importorskip("scipy.stats")
        n = grid3x3.n
        draws = 7200
        mask = ~np.eye(n, dtype=bool).ravel()
        for name in ENGINE_NAMES:
            with _engine(name, grid3x3, seed=99) as engine:
                counts = self._pair_counts(engine.draw(draws), n)[mask]
            _, pvalue = scipy_stats.chisquare(counts)
            assert pvalue > 1e-3, f"{name}: pair marginal not uniform (p={pvalue})"

    def test_engines_agree_on_path_choice(self, diamond):
        """On the diamond, paths 0-1-3 and 0-2-3 are equally likely for
        the (0, 3) pair — and every engine must split them evenly."""
        scipy_stats = pytest.importorskip("scipy.stats")
        observed = {}
        for name in ENGINE_NAMES:
            with _engine(name, diamond, seed=17) as engine:
                samples = engine.draw(6000)
            via1 = via2 = 0
            for sample in samples:
                if {sample.source, sample.target} == {0, 3}:
                    if 1 in sample.nodes:
                        via1 += 1
                    else:
                        via2 += 1
            _, pvalue = scipy_stats.chisquare([via1, via2])
            observed[name] = pvalue
        for name, pvalue in observed.items():
            assert pvalue > 1e-3, f"{name}: uneven path split (p={pvalue})"


class TestExtend:
    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_extend_grows_to_target(self, grid3x3, name):
        # the epoch engine rounds extends up to epoch boundaries; pick a
        # size that divides every target so the counts below stay exact
        kwargs = {"epoch_size": 5} if name == "epoch" else {}
        instance = CoverageInstance(grid3x3.n)
        with _engine(name, grid3x3, seed=1, **kwargs) as engine:
            engine.extend(instance, 25)
            assert instance.num_paths == 25
            engine.extend(instance, 10)  # no shrink, no-op
            assert instance.num_paths == 25
            engine.extend(instance, 40)
            assert instance.num_paths == 40

    def test_extend_respects_endpoint_convention(self, path5):
        with_ends = CoverageInstance(path5.n)
        without = CoverageInstance(path5.n)
        with SerialEngine(path5, seed=8, include_endpoints=True) as engine:
            engine.extend(with_ends, 30)
        with SerialEngine(path5, seed=8, include_endpoints=False) as engine:
            engine.extend(without, 30)
        # same seed, same paths: stripping endpoints only shrinks them
        for pid in range(30):
            a, b = with_ends.path(pid), without.path(pid)
            assert len(b) in (len(a) - 2, 0) or len(a) == 0

    def test_coverage_nodes_helper(self, grid3x3):
        with SerialEngine(grid3x3, seed=0) as engine:
            (sample,) = engine.draw(1)
        full = coverage_nodes(sample, True)
        inner = coverage_nodes(sample, False)
        assert np.array_equal(full, sample.nodes)
        assert np.array_equal(inner, sample.nodes[1:-1])


class TestStats:
    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_counters_accumulate(self, grid3x3, name):
        with _engine(name, grid3x3, seed=4) as engine:
            engine.draw(30)
            engine.draw(20)
            stats = engine.stats
        assert stats.samples == 50
        assert stats.draw_calls == 2
        assert stats.traversals > 0
        assert stats.batches > 0
        assert stats.edges_explored > 0
        payload = stats.as_dict()
        assert payload["samples"] == 50
        assert isinstance(payload["worker_samples"], dict)

    def test_serial_small_draws_one_traversal_each(self, grid3x3):
        with SerialEngine(grid3x3, seed=4) as engine:
            engine.draw(5)  # below n=9: per-sample path
            assert engine.stats.traversals == 5

    def test_batch_grouped_amortizes_traversals(self, grid3x3):
        with BatchEngine(grid3x3, seed=4, kernel="grouped") as engine:
            engine.draw(500)
            # at most one BFS per distinct source
            assert engine.stats.traversals <= grid3x3.n
            assert engine.stats.batches == 1

    def test_process_worker_utilization_recorded(self, grid3x3):
        with ProcessPoolEngine(grid3x3, seed=4, workers=2, chunk_size=32) as engine:
            engine.draw(128)
            stats = engine.stats
        assert sum(stats.worker_samples.values()) == 128
        assert stats.batches == 4

    def test_engine_stats_surface_in_diagnostics(self, barbell):
        from repro.algorithms import Hedge

        result = Hedge(eps=0.5, gamma=0.1, seed=0, max_samples=5000).run(barbell, 2)
        info = result.diagnostics["engine"]
        assert info["name"] == "serial"
        total = sum(s["samples"] for s in info["stats"])
        assert total == result.num_samples
        assert result.diagnostics["edges_explored"] == sum(
            s["edges_explored"] for s in info["stats"]
        )


class TestSerialMatchesHistorical:
    def test_serial_equals_grouped_batch_for_large_draws(self, grid3x3):
        """At counts >= n the serial engine takes the grouped batch
        path, so the two in-process engines coincide exactly."""
        with SerialEngine(grid3x3, seed=13) as serial:
            a = serial.draw(100)
        with BatchEngine(grid3x3, seed=13, kernel="grouped") as batch:
            b = batch.draw(100)
        for x, y in zip(a, b):
            assert x.source == y.source and x.target == y.target
            assert np.array_equal(x.nodes, y.nodes)


def _segment_paths(engine):
    """On-disk /dev/shm paths of the engine's shared graph segments."""
    if engine._segments is None:
        return []
    return [
        os.path.join("/dev/shm", name.lstrip("/"))
        for name in engine._segments.block_names()
    ]


class TestPoolChunking:
    def test_auto_chunks_cap_dispatch_count(self, grid3x3):
        """Default chunks scale with the draw: big requests never split
        into more than 8 dispatches (one result pickle each)."""
        engine = ProcessPoolEngine(grid3x3, workers=0)
        assert engine._chunk_sizes(500) == [500]
        assert engine._chunk_sizes(1024) == [1024]
        assert engine._chunk_sizes(8192) == [1024] * 8
        assert engine._chunk_sizes(80_000) == [10_000] * 8
        assert len(engine._chunk_sizes(80_001)) == 8
        engine.close()

    def test_auto_chunk_layout_is_worker_count_invariant(self, grid3x3):
        """The layout depends on the request count only — the same
        guarantee the fixed default gave."""
        a = ProcessPoolEngine(grid3x3, workers=0)
        b = ProcessPoolEngine(grid3x3, workers=8)
        assert a._chunk_sizes(123_456) == b._chunk_sizes(123_456)
        a.close()
        b.close()

    def test_explicit_chunk_size_still_honored(self, grid3x3):
        engine = ProcessPoolEngine(grid3x3, workers=0, chunk_size=16)
        assert engine._chunk_sizes(40) == [16, 16, 8]
        engine.close()


class TestPoolLifecycle:
    def test_executor_reused_across_draws(self, grid3x3):
        with ProcessPoolEngine(grid3x3, seed=4, workers=2, chunk_size=32) as engine:
            engine.draw(64)
            engine.draw(64)
            instance = CoverageInstance(grid3x3.n)
            engine.extend(instance, 160)
            assert engine.stats.pool_startups == 1
            assert engine.stats.draw_calls == 3

    def test_workers_zero_never_starts_a_pool(self, grid3x3):
        with ProcessPoolEngine(grid3x3, seed=4, workers=0) as engine:
            engine.draw(50)
            assert engine.stats.pool_startups == 0
            assert engine.stats.workers == 0
            assert engine._segments is None

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="no POSIX shared memory"
    )
    def test_shared_segments_cleaned_up_on_close(self, grid3x3):
        engine = ProcessPoolEngine(grid3x3, seed=9, workers=2, chunk_size=32)
        engine.draw(64)
        paths = _segment_paths(engine)
        if engine.stats.workers:  # pool actually started
            assert paths and all(os.path.exists(p) for p in paths)
        engine.close()
        assert not any(os.path.exists(p) for p in paths)
        engine.close()  # idempotent

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="no POSIX shared memory"
    )
    def test_worker_crash_falls_back_and_cleans_up(self, grid3x3):
        """A dying worker breaks the pool; the engine must recover
        in-process AND unlink its shared segments."""
        engine = ProcessPoolEngine(grid3x3, seed=9, workers=2, chunk_size=32)
        first = engine.draw(64)
        paths = _segment_paths(engine)
        if engine._pool is None:  # pragma: no cover - sandbox without pools
            engine.close()
            pytest.skip("process pool unavailable")
        engine._pool.submit(os._exit, 1)  # simulate a worker crash
        second = engine.draw(64)
        assert len(first) == len(second) == 64
        assert engine.stats.workers == 0  # degraded to in-process
        assert not any(os.path.exists(p) for p in paths)
        engine.close()

    def test_crash_fallback_preserves_samples(self, grid3x3):
        """The in-process fallback replays the same chunk schedule, so
        a crash changes *where* samples are computed, never *what*."""
        with ProcessPoolEngine(
            grid3x3, seed=77, workers=2, chunk_size=16
        ) as healthy:
            healthy.draw(48)
            expected = healthy.draw(48)
        crashed = ProcessPoolEngine(grid3x3, seed=77, workers=2, chunk_size=16)
        crashed.draw(48)
        if crashed._pool is not None:
            crashed._pool.submit(os._exit, 1)
        actual = crashed.draw(48)
        crashed.close()
        for a, b in zip(expected, actual):
            assert a.source == b.source and a.target == b.target
            assert np.array_equal(a.nodes, b.nodes)


class TestTreeCache:
    def test_cache_counts_and_sample_identity(self, grid3x3):
        """Caching forward-BFS trees changes work accounting only —
        the sampled paths are bit-identical."""
        with SerialEngine(grid3x3, seed=21) as plain:
            a = plain.draw(100) + plain.draw(100)
            assert plain.stats.cache_hits == plain.stats.cache_misses == 0
        with SerialEngine(grid3x3, seed=21, cache_sources=9) as cached:
            b = cached.draw(100) + cached.draw(100)
            stats = cached.stats
        assert stats.cache_misses <= grid3x3.n
        assert stats.cache_hits > 0  # second draw reuses first draw's trees
        for x, y in zip(a, b):
            assert x.source == y.source and x.target == y.target
            assert np.array_equal(x.nodes, y.nodes)

    def test_cache_eviction_is_bounded(self, grid3x3):
        with SerialEngine(grid3x3, seed=21, cache_sources=2) as engine:
            engine.draw(100)
            assert len(engine._sampler._tree_cache) <= 2

    def test_cache_stats_surface_in_diagnostics(self, barbell):
        from repro.algorithms import Hedge

        result = Hedge(
            eps=0.5,
            gamma=0.1,
            seed=0,
            engine="batch",
            kernel="grouped",
            cache_sources=16,
            max_samples=5000,
        ).run(barbell, 2)
        info = result.diagnostics["engine"]
        assert info["kernel"] == "grouped"
        merged = {
            key: sum(s[key] for s in info["stats"])
            for key in ("cache_hits", "cache_misses")
        }
        assert merged["cache_misses"] > 0

    def test_diagnostics_report_resolved_kernel(self, barbell):
        from repro.algorithms import Hedge

        result = Hedge(
            eps=0.5, gamma=0.1, seed=0, engine="batch", max_samples=5000
        ).run(barbell, 2)
        assert result.diagnostics["engine"]["kernel"] == "wavefront"
