"""Weighted-graph engine equivalence: the delta-stepping cohort kernel
must be a pure throughput knob.

Contract under test:

* the batch engine's ``wavefront`` (delta-stepping) and ``scalar``
  (per-query Dijkstra) kernels are bit-identical on weighted graphs;
* ``delta`` never changes results, only bucket granularity;
* process and epoch engines are bit-identical across worker counts
  ``{0, 1, 4}`` on weighted graphs;
* checkpoint/resume reproduces the uninterrupted weighted run exactly;
* requesting a cohort kernel that *does* have to degrade (the
  unweighted ``forward`` method) is reported: warning, stats field,
  telemetry counter.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.algorithms import AdaAlg
from repro.engine import BatchEngine, EpochEngine, ProcessPoolEngine, create_engine
from repro.engine.base import _reset_fallback_warnings
from repro.exceptions import SessionInterrupted
from repro.graph import barabasi_albert, from_weighted_edges
from repro.obs import Telemetry
from repro.paths import PathSampler


def _random_weighted(n, p, seed, max_w=9, directed=False):
    rng = np.random.default_rng(seed)
    triples = []
    for u in range(n):
        candidates = range(n) if directed else range(u + 1, n)
        for v in candidates:
            if u != v and rng.random() < p:
                triples.append((u, v, int(rng.integers(1, max_w + 1))))
    return from_weighted_edges(triples, n=n, directed=directed)


@pytest.fixture(scope="module")
def weighted_graph():
    return _random_weighted(60, 0.1, seed=3)


def _assert_samples_equal(first, second):
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert a.source == b.source
        assert a.target == b.target
        assert a.distance == b.distance
        assert np.array_equal(a.nodes, b.nodes)
        assert a.sigma_st == b.sigma_st
        assert a.edges_explored == b.edges_explored


class TestBatchKernelParity:
    @pytest.mark.parametrize("directed", [False, True])
    def test_wavefront_equals_scalar(self, directed):
        graph = _random_weighted(50, 0.12, seed=7, directed=directed)

        def run(kernel):
            with BatchEngine(graph, seed=31, kernel=kernel) as engine:
                return engine.draw(150)

        _assert_samples_equal(run("wavefront"), run("scalar"))

    def test_disconnected_nulls_agree(self):
        # two weighted components: cross pairs are null in both kernels
        left = [(u, v, 2) for u in range(4) for v in range(u + 1, 4)]
        right = [(u, v, 3) for u in range(4, 8) for v in range(u + 1, 8)]
        graph = from_weighted_edges(left + right, n=8)

        def run(kernel):
            with BatchEngine(graph, seed=5, kernel=kernel) as engine:
                return engine.draw(80)

        a, b = run("wavefront"), run("scalar")
        assert sum(s.is_null for s in a) > 0
        for x, y in zip(a, b):
            assert x.is_null == y.is_null
        _assert_samples_equal(
            [s for s in a if not s.is_null], [s for s in b if not s.is_null]
        )

    @pytest.mark.parametrize("delta", [1, 3, 10**6])
    def test_delta_is_result_invariant(self, weighted_graph, delta):
        def run(**kwargs):
            with BatchEngine(weighted_graph, seed=13, **kwargs) as engine:
                return engine.draw(120)

        _assert_samples_equal(run(), run(delta=delta))

    def test_weighted_cohort_stats_recorded(self, weighted_graph):
        with BatchEngine(weighted_graph, seed=2) as engine:
            engine.draw(100)
            stats = engine.stats
        assert stats.weighted_cohorts > 0
        assert stats.bucket_relaxations > 0
        assert stats.kernel_fallbacks == 0


class TestSamplerCohortParity:
    def test_wavefront_cohort_equals_scalar_cohort(self, weighted_graph):
        def run(kernel):
            sampler = PathSampler(weighted_graph, seed=17)
            return sampler.sample_cohort(200, kernel=kernel)

        _assert_samples_equal(run("wavefront"), run("scalar"))

    def test_cohort_size_is_result_invariant(self, weighted_graph):
        def run(cohort_size):
            sampler = PathSampler(weighted_graph, seed=23)
            return sampler.sample_cohort(150, cohort_size=cohort_size)

        reference = run(None)
        for cohort_size in (1, 7, 1000):
            _assert_samples_equal(reference, run(cohort_size))


class TestWorkerCountInvariance:
    def test_process_identical_across_worker_counts(self, weighted_graph):
        def run(workers):
            engine = ProcessPoolEngine(
                weighted_graph, seed=2024, workers=workers, chunk_size=32
            )
            with engine:
                return engine.draw(128)

        reference = run(1)
        for workers in (0, 4):
            _assert_samples_equal(reference, run(workers))

    def test_epoch_identical_across_worker_counts(self, weighted_graph):
        def run(workers):
            engine = EpochEngine(
                weighted_graph, seed=404, workers=workers, epoch_size=32
            )
            with engine:
                return engine.draw(128)

        reference = run(1)
        for workers in (0, 4):
            _assert_samples_equal(reference, run(workers))

    def test_adaalg_group_invariant_across_process_workers(self):
        graph = _random_weighted(40, 0.15, seed=9)

        def run(workers):
            algorithm = AdaAlg(
                eps=0.5, gamma=0.1, seed=5, engine="process", workers=workers
            )
            return algorithm.run(graph, 2)

        reference = run(1)
        for workers in (0, 4):
            result = run(workers)
            assert result.group == reference.group
            assert result.estimate == reference.estimate
            assert result.num_samples == reference.num_samples


class TestWeightedResume:
    @pytest.mark.parametrize(
        "engine,extra",
        [("batch", {}), ("epoch", {"workers": 2, "epoch_size": 64})],
    )
    def test_resume_is_bit_identical(self, tmp_path, engine, extra):
        graph = _random_weighted(40, 0.15, seed=21)
        path = str(tmp_path / "ck.npz")

        def factory(**kw):
            return AdaAlg(
                eps=0.4, gamma=0.1, seed=11, engine=engine, **extra, **kw
            )

        straight = factory().run(graph, 3)
        with pytest.raises(SessionInterrupted):
            factory(checkpoint_path=path, stop_after_checkpoints=1).run(graph, 3)
        resumed = factory(resume_from=path).run(graph, 3)
        assert resumed.group == straight.group
        assert resumed.estimate == straight.estimate
        assert resumed.estimate_unbiased == straight.estimate_unbiased
        assert resumed.num_samples == straight.num_samples
        assert resumed.iterations == straight.iterations

    def test_resume_preserves_delta_knob(self, tmp_path):
        graph = _random_weighted(40, 0.15, seed=21)
        path = str(tmp_path / "ck.npz")

        def factory(**kw):
            return AdaAlg(
                eps=0.4, gamma=0.1, seed=11, engine="batch", delta=2, **kw
            )

        straight = factory().run(graph, 3)
        with pytest.raises(SessionInterrupted):
            factory(checkpoint_path=path, stop_after_checkpoints=1).run(graph, 3)
        resumed = AdaAlg(
            eps=0.4, gamma=0.1, seed=11, engine="batch", resume_from=path
        ).run(graph, 3)
        assert resumed.group == straight.group
        assert resumed.estimate == straight.estimate
        assert resumed.num_samples == straight.num_samples


class TestKernelFallbackReporting:
    def test_forward_method_fallback_warns_once(self):
        _reset_fallback_warnings()
        graph = barabasi_albert(40, 2, seed=1)
        hub = Telemetry()
        engine = create_engine(
            "batch", graph, seed=3, method="forward", kernel="wavefront",
            telemetry=hub,
        )
        with engine:
            assert engine.kernel == "grouped"
            with pytest.warns(RuntimeWarning, match="falling back"):
                engine.draw(20)
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # second draw stays silent
                engine.draw(20)
            assert engine.stats.kernel_fallbacks == 1
        assert hub.snapshot()["counters"]["paths.kernel_fallbacks"] == 1

    def test_fallback_warning_deduped_per_process(self):
        # a daemon builds many engines: each still ticks its own stats
        # field and counter, but only the first one warns
        _reset_fallback_warnings()
        graph = barabasi_albert(40, 2, seed=1)
        hub = Telemetry()

        def make():
            return create_engine(
                "batch", graph, seed=3, method="forward", kernel="wavefront",
                telemetry=hub,
            )

        with make() as first:
            with pytest.warns(RuntimeWarning, match="falling back"):
                first.draw(10)
            assert first.stats.kernel_fallbacks == 1
        for _ in range(3):
            with make() as engine:
                with warnings.catch_warnings():
                    warnings.simplefilter("error")  # later engines are silent
                    engine.draw(10)
                assert engine.stats.kernel_fallbacks == 1
        assert hub.snapshot()["counters"]["paths.kernel_fallbacks"] == 4

    def test_weighted_wavefront_does_not_fall_back(self, weighted_graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with BatchEngine(weighted_graph, seed=3, kernel="wavefront") as engine:
                engine.draw(20)
                assert engine.kernel == "wavefront"
                assert engine.stats.kernel_fallbacks == 0

    def test_explicit_grouped_request_is_not_a_fallback(self):
        graph = barabasi_albert(40, 2, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with BatchEngine(graph, seed=3, kernel="grouped") as engine:
                engine.draw(20)
                assert engine.stats.kernel_fallbacks == 0
