"""Worker-chunk failure semantics of the process engine.

A chunk body that raises inside a *healthy* worker must not poison the
engine: the draw fails with :class:`~repro.exceptions.EngineError`
carrying the chunk's position/size/seed, outstanding futures are
cancelled, the failed call is still accounted in ``draw_calls``, and
subsequent draws keep working on the same pool.  (A *dead* worker —
``BrokenExecutor`` — still triggers the separate teardown-and-fallback
path, unchanged.)

Injection works by monkeypatching :func:`repro.engine.pool._chunk_samples`
before the pool starts: the executor launches lazily on the first draw
and the default ``fork`` start method copies the patched module state
into the workers.  The failure is keyed on the chunk *size*, so the
same patched pool serves both failing and healthy draws.
"""

import pytest

from repro.coverage import CoverageInstance
from repro.engine import ProcessPoolEngine, create_engine
from repro.engine import pool as pool_module
from repro.exceptions import EngineError

#: Chunk size that the patched chunk body refuses to serve.
POISON_SIZE = 7

_real_chunk_samples = pool_module._chunk_samples


def _poisoned_chunk_samples(
    graph, method, kernel, cohort, delta, cache, seed, count
):
    if count == POISON_SIZE:
        raise ValueError(f"injected failure for chunk size {count}")
    return _real_chunk_samples(
        graph, method, kernel, cohort, delta, cache, seed, count
    )


@pytest.fixture
def poisoned(monkeypatch):
    monkeypatch.setattr(pool_module, "_chunk_samples", _poisoned_chunk_samples)


class TestInProcessFallback:
    def test_failing_chunk_raises_engine_error(self, grid3x3, poisoned):
        with ProcessPoolEngine(grid3x3, seed=31, workers=0) as engine:
            with pytest.raises(EngineError, match=r"chunk 1/1 \(size=7"):
                engine.draw(POISON_SIZE)

    def test_engine_usable_after_failure(self, grid3x3, poisoned):
        with ProcessPoolEngine(grid3x3, seed=31, workers=0) as engine:
            with pytest.raises(EngineError):
                engine.draw(POISON_SIZE)
            samples = engine.draw(5)
            assert len(samples) == 5
            # both the failed and the successful call are accounted
            assert engine.stats.draw_calls == 2
            assert engine.stats.samples == 5

    def test_extend_surfaces_the_error(self, grid3x3, poisoned):
        engine = create_engine("process", grid3x3, seed=32, workers=0)
        with engine:
            instance = CoverageInstance(grid3x3.n)
            with pytest.raises(EngineError):
                engine.extend(instance, POISON_SIZE)
            assert instance.num_paths == 0


class TestPoolWorkers:
    def test_failing_chunk_raises_and_pool_survives(self, grid3x3, poisoned):
        with ProcessPoolEngine(
            grid3x3, seed=33, workers=2, chunk_size=64
        ) as engine:
            # healthy draw first: starts the (patched) pool
            assert len(engine.draw(10)) == 10
            with pytest.raises(EngineError, match="size=7"):
                engine.draw(POISON_SIZE)
            # the pool was not torn down or restarted by the failure
            assert len(engine.draw(10)) == 10
            assert engine.stats.pool_startups == 1
            assert engine.stats.draw_calls == 3
            assert engine.stats.samples == 20

    def test_error_names_the_failing_chunk(self, grid3x3, poisoned):
        with ProcessPoolEngine(
            grid3x3, seed=34, workers=2, chunk_size=POISON_SIZE
        ) as engine:
            # 3 chunks of 7: the first failure is reported with position
            with pytest.raises(EngineError, match=r"chunk \d/3 \(size=7"):
                engine.draw(3 * POISON_SIZE)
