"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import REQUIRED_FIELDS


def _star_edge_list(tmp_path, leaves=20):
    edge_file = tmp_path / "g.txt"
    lines = [f"0 {i}" for i in range(1, leaves)]
    edge_file.write_text("\n".join(lines) + "\n")
    return edge_file


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--dataset", "GrQc"])
        assert args.algorithm == "adaalg"
        assert args.k == 20
        assert args.eps == 0.3

    def test_run_requires_source(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_sources_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "GrQc", "--edge-list", "x.txt"]
            )

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig4"])
        assert args.name == "fig4"
        assert args.preset == "smoke"

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig9"])

    def test_ablation_experiments_available(self):
        for name in (
            "ablation-base",
            "ablation-work",
            "ablation-endpoints",
            "ablation-strategies",
            "ablation-pairs",
            "ablation-validation",
            "ablation-localsearch",
            "ablation-scaling",
        ):
            args = build_parser().parse_args(["experiment", name])
            assert args.name == name


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "GrQc" in out
        assert "LiveJournal" in out

    def test_run_on_edge_list(self, tmp_path, capsys):
        edge_file = tmp_path / "g.txt"
        lines = [f"0 {i}" for i in range(1, 20)]  # a star
        edge_file.write_text("\n".join(lines) + "\n")
        code = main(
            [
                "run",
                "--edge-list",
                str(edge_file),
                "--algorithm",
                "adaalg",
                "-k",
                "1",
                "--eps",
                "0.5",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "group (K=1): [0]" in out
        assert "samples" in out

    def test_run_puzis_on_edge_list(self, tmp_path, capsys):
        edge_file = tmp_path / "g.txt"
        edge_file.write_text("0 1\n1 2\n2 3\n3 4\n")
        code = main(
            ["run", "--edge-list", str(edge_file), "--algorithm", "puzis", "-k", "1"]
        )
        assert code == 0
        assert "group (K=1): [2]" in capsys.readouterr().out

    def test_run_brute_whole_graph(self, tmp_path, capsys):
        edge_file = tmp_path / "g.txt"
        edge_file.write_text("0 1\n1 2\n5 6\n")
        code = main(
            [
                "run",
                "--edge-list",
                str(edge_file),
                "--algorithm",
                "brute",
                "-k",
                "1",
                "--whole-graph",
            ]
        )
        assert code == 0
        assert "brute" in capsys.readouterr().out.lower()

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "paper_V" in out

    def test_experiment_output_csv(self, tmp_path, capsys):
        out_file = tmp_path / "table1.csv"
        assert main(["experiment", "table1", "--output", str(out_file)]) == 0
        assert out_file.exists()
        assert "dataset" in out_file.read_text().splitlines()[0]

    def test_compare_command(self, tmp_path, capsys):
        edge_file = tmp_path / "g.txt"
        lines = [f"0 {i}" for i in range(1, 25)]
        lines += [f"{i} {i + 1}" for i in range(1, 24)]
        edge_file.write_text("\n".join(lines) + "\n")
        code = main(
            [
                "compare",
                "--edge-list",
                str(edge_file),
                "-k",
                "2",
                "--eps",
                "0.5",
                "--algorithms",
                "adaalg",
                "yoshida",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AdaAlg" in out
        assert "YoshidaSketch" in out

    def test_run_with_log_json_and_invariants(self, tmp_path, capsys):
        edge_file = _star_edge_list(tmp_path)
        log_path = tmp_path / "run.jsonl"
        code = main(
            [
                "run",
                "--edge-list",
                str(edge_file),
                "-k",
                "2",
                "--eps",
                "0.5",
                "--seed",
                "3",
                "--log-json",
                str(log_path),
                "--debug-invariants",
            ]
        )
        assert code == 0
        assert str(log_path) in capsys.readouterr().out
        lines = log_path.read_text().strip().splitlines()
        assert lines, "telemetry log is empty"
        kinds = set()
        for line in lines:
            record = json.loads(line)
            for field in REQUIRED_FIELDS:
                assert field in record, f"{field!r} missing from {record}"
            kinds.add(record["kind"])
        assert {"span", "event", "counter"} <= kinds

    def test_run_progress_lines_on_stderr(self, tmp_path, capsys):
        edge_file = _star_edge_list(tmp_path)
        code = main(
            [
                "run",
                "--edge-list",
                str(edge_file),
                "-k",
                "2",
                "--eps",
                "0.5",
                "--seed",
                "3",
                "--progress",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "AdaAlg" in err
        assert "q=1" in err

    def test_compare_with_log_json(self, tmp_path, capsys):
        edge_file = _star_edge_list(tmp_path)
        log_path = tmp_path / "cmp.jsonl"
        code = main(
            [
                "compare",
                "--edge-list",
                str(edge_file),
                "-k",
                "2",
                "--eps",
                "0.5",
                "--algorithms",
                "adaalg",
                "hedge",
                "--log-json",
                str(log_path),
            ]
        )
        assert code == 0
        events = [
            json.loads(line)
            for line in log_path.read_text().strip().splitlines()
            if json.loads(line)["kind"] == "event"
        ]
        algorithms = {
            e["algorithm"] for e in events if e.get("name") == "iteration"
        }
        assert algorithms == {"AdaAlg", "HEDGE"}

    def test_experiment_telemetry_flag_parsed(self):
        args = build_parser().parse_args(
            ["experiment", "fig4", "--telemetry"]
        )
        assert args.telemetry

    def test_run_weighted_edge_list(self, tmp_path, capsys):
        edge_file = tmp_path / "w.txt"
        edge_file.write_text("0 1 1\n1 2 1\n2 3 1\n3 4 1\n")
        code = main(
            [
                "run",
                "--edge-list",
                str(edge_file),
                "--weighted",
                "--algorithm",
                "puzis",
                "-k",
                "1",
            ]
        )
        assert code == 0
        assert "group (K=1): [2]" in capsys.readouterr().out


def _ba_edge_list(tmp_path):
    from repro.graph import barabasi_albert, write_edge_list

    path = tmp_path / "ba.txt"
    write_edge_list(barabasi_albert(80, 2, seed=5), path)
    return path


class TestCheckpointResume:
    _RUN = ["--algorithm", "adaalg", "-k", "4", "--eps", "0.4",
            "--gamma", "0.1", "--seed", "11"]

    def test_interrupt_then_resume_matches_uninterrupted(
        self, tmp_path, capsys
    ):
        edge_file = str(_ba_edge_list(tmp_path))
        base = tmp_path / "base.json"
        code = main(["run", "--edge-list", edge_file, *self._RUN,
                     "--json", str(base)])
        assert code == 0

        ck = tmp_path / "ck.npz"
        code = main(["run", "--edge-list", edge_file, *self._RUN,
                     "--checkpoint", str(ck), "--stop-after-checkpoints", "1"])
        assert code == 3
        assert ck.exists()
        assert "interrupted" in capsys.readouterr().err

        resumed = tmp_path / "resumed.json"
        code = main(["resume", str(ck), "--json", str(resumed)])
        assert code == 0
        out = capsys.readouterr().out
        assert "resuming" in out
        assert "resumed     : True" in out
        assert resumed.read_bytes() == base.read_bytes()

    def test_checkpointed_run_output_unperturbed(self, tmp_path, capsys):
        edge_file = str(_ba_edge_list(tmp_path))
        base = tmp_path / "base.json"
        noisy = tmp_path / "noisy.json"
        assert main(["run", "--edge-list", edge_file, *self._RUN,
                     "--json", str(base)]) == 0
        assert main(["run", "--edge-list", edge_file, *self._RUN,
                     "--checkpoint", str(tmp_path / "ck.npz"),
                     "--json", str(noisy)]) == 0
        assert noisy.read_bytes() == base.read_bytes()
        payload = json.loads(base.read_text())
        assert payload["algorithm"] == "AdaAlg"
        assert "elapsed_seconds" not in payload  # keeps runs diffable

    def test_resume_rejects_library_checkpoint(self, tmp_path):
        from repro.exceptions import CheckpointError
        from repro.graph import barabasi_albert
        from repro.session import SamplingSession

        path = str(tmp_path / "lib.npz")
        with SamplingSession(barabasi_albert(30, 2, seed=0), seed=1) as s:
            s.extend(10)
            s.checkpoint(path)
        with pytest.raises(CheckpointError):
            main(["resume", path])

    def test_checkpoint_flags_require_sampling_algorithm(self, tmp_path):
        edge_file = str(_star_edge_list(tmp_path))
        with pytest.raises(SystemExit):
            main(["run", "--edge-list", edge_file, "--algorithm", "puzis",
                  "-k", "2", "--checkpoint", str(tmp_path / "ck.npz")])

    def test_parser_knows_new_surface(self):
        args = build_parser().parse_args(
            ["experiment", "sweep-warmstart", "--reuse-sessions"]
        )
        assert args.name == "sweep-warmstart"
        assert args.reuse_sessions
        args = build_parser().parse_args(
            ["run", "--dataset", "GrQc", "--checkpoint", "c.npz",
             "--checkpoint-every", "3"]
        )
        assert args.checkpoint == "c.npz"
        assert args.checkpoint_every == 3


def _delta_file(tmp_path, lines):
    path = tmp_path / "delta.txt"
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestMutateCommand:
    # k=2 keeps the expected group unambiguous at this coarse eps: the
    # two BA hubs are clear winners, while the third slot is a
    # statistical near-tie that warm and cold pools may break
    # differently within the eps guarantee.
    _RUN = ["--algorithm", "adaalg", "-k", "2", "--eps", "0.5",
            "--gamma", "0.1", "--seed", "11"]

    def test_parser_requires_exactly_one_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mutate", "d.txt"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mutate", "d.txt", "--checkpoint", "c", "--graph-dir", "g"]
            )
        args = build_parser().parse_args(
            ["mutate", "d.txt", "--checkpoint", "c", "--out", "g"]
        )
        assert args.touch_radius == 1
        assert args.checkpoint_out is None

    def test_graph_dir_mode_matches_overlay(self, tmp_path, capsys):
        from repro.graph import (
            DeltaGraph,
            GraphUpdate,
            barabasi_albert,
            load_mmap,
            save_mmap,
        )

        graph = barabasi_albert(40, 2, seed=5)
        gdir = str(tmp_path / "g")
        save_mmap(graph, gdir)
        delta = _delta_file(tmp_path, [
            "# tiny delta", "+ 3 37", "- 0 1",
        ])
        assert main(["mutate", delta, "--graph-dir", gdir]) == 0
        assert "ops applied : 2" in capsys.readouterr().out

        overlay = DeltaGraph(graph)
        overlay.apply(GraphUpdate.from_ops([(3, 37, 1)], [(0, 1)], ()))
        expected = overlay.compact()
        mutated = load_mmap(gdir)
        assert mutated.num_edges == expected.num_edges
        assert (mutated.indptr == expected.indptr).all()
        assert (mutated.indices == expected.indices).all()

    def test_checkpoint_mode_then_resume_matches_cold_run(
        self, tmp_path, capsys
    ):
        from repro.graph import DeltaGraph, GraphUpdate, save_mmap

        edge_file = str(_ba_edge_list(tmp_path))
        ck = tmp_path / "ck.npz"
        code = main(["run", "--edge-list", edge_file, *self._RUN,
                     "--checkpoint", str(ck), "--stop-after-checkpoints", "1"])
        assert code == 3

        delta = _delta_file(tmp_path, ["+ 5 71", "+ 9 63", "- 0 2"])
        gdir = str(tmp_path / "mutated-graph")
        code = main(["mutate", delta, "--checkpoint", str(ck),
                     "--out", gdir])
        assert code == 0
        out = capsys.readouterr().out
        assert "invalidated" in out

        warm = tmp_path / "warm.json"
        assert main(["resume", str(ck), "--json", str(warm)]) == 0

        # cold single-shot run on the compacted graph (the mmap dir is a
        # valid --edge-list source)
        from repro.graph import read_edge_list

        base, _ids = read_edge_list(edge_file)
        overlay = DeltaGraph(base)
        overlay.apply(GraphUpdate.from_ops(
            [(5, 71, 1), (9, 63, 1)], [(0, 2)], ()
        ))
        cdir = str(tmp_path / "cold-graph")
        save_mmap(overlay.compact(), cdir)
        cold = tmp_path / "cold.json"
        assert main(["run", "--edge-list", cdir, *self._RUN,
                     "--json", str(cold)]) == 0

        warm_payload = json.loads(warm.read_text())
        cold_payload = json.loads(cold.read_text())
        assert sorted(warm_payload["group"]) == sorted(cold_payload["group"])
        assert warm_payload["converged"]

    def test_checkpoint_mode_requires_out(self, tmp_path):
        delta = _delta_file(tmp_path, ["+ 0 1"])
        with pytest.raises(SystemExit, match="--out"):
            main(["mutate", delta, "--checkpoint", "ck.npz"])

    def test_rejects_library_checkpoint(self, tmp_path):
        from repro.exceptions import CheckpointError
        from repro.graph import barabasi_albert
        from repro.session import SamplingSession

        path = str(tmp_path / "lib.npz")
        with SamplingSession(barabasi_albert(30, 2, seed=0), seed=1) as s:
            s.extend(10)
            s.checkpoint(path)
        delta = _delta_file(tmp_path, ["+ 0 1"])
        with pytest.raises(CheckpointError, match="provenance"):
            main(["mutate", delta, "--checkpoint", path,
                  "--out", str(tmp_path / "g")])

    def test_dataset_mode_requires_endpoint(self, tmp_path):
        delta = _delta_file(tmp_path, ["+ 0 1"])
        with pytest.raises(SystemExit, match="endpoint"):
            main(["mutate", delta, "--dataset", "ba"])
