"""Unit tests for the path/node coverage incidence."""

import numpy as np
import pytest

from repro.coverage import CoverageInstance
from repro.exceptions import ParameterError


class TestConstruction:
    def test_empty(self):
        inst = CoverageInstance(5)
        assert inst.num_paths == 0
        assert inst.num_nodes == 5

    def test_negative_universe_rejected(self):
        with pytest.raises(ParameterError):
            CoverageInstance(-1)

    def test_add_path_returns_sequential_ids(self):
        inst = CoverageInstance(5)
        assert inst.add_path([0, 1]) == 0
        assert inst.add_path([2]) == 1

    def test_out_of_universe_rejected(self):
        inst = CoverageInstance(3)
        with pytest.raises(ParameterError):
            inst.add_path([0, 5])

    def test_null_path_allowed(self):
        inst = CoverageInstance(3)
        inst.add_path([])
        assert inst.num_paths == 1
        assert inst.covered_count([0, 1, 2]) == 0

    def test_duplicate_nodes_in_path_deduped(self):
        inst = CoverageInstance(5)
        pid = inst.add_path([2, 2, 1])
        assert list(inst.path(pid)) == [1, 2]
        assert inst.degree(2) == 1

    def test_add_paths_bulk(self):
        inst = CoverageInstance(4)
        inst.add_paths([[0], [1, 2], []])
        assert inst.num_paths == 3


class TestQueries:
    @pytest.fixture
    def inst(self):
        inst = CoverageInstance(6)
        inst.add_paths([[0, 1, 2], [2, 3], [4], [], [0, 5]])
        return inst

    def test_degree(self, inst):
        assert inst.degree(2) == 2
        assert inst.degree(5) == 1
        assert inst.degree(3) == 1

    def test_paths_through(self, inst):
        assert inst.paths_through(0) == [0, 4]
        assert inst.paths_through(4) == [2]

    def test_covered_count_single(self, inst):
        assert inst.covered_count([2]) == 2

    def test_covered_count_union_not_sum(self, inst):
        # node 0 covers {0,4}, node 2 covers {0,1}: union is 3, not 4
        assert inst.covered_count([0, 2]) == 3

    def test_covered_count_empty_group(self, inst):
        assert inst.covered_count([]) == 0

    def test_covered_count_all(self, inst):
        assert inst.covered_count(range(6)) == 4  # null path never covered

    def test_covered_count_bad_group(self, inst):
        with pytest.raises(ParameterError):
            inst.covered_count([9])

    def test_coverage_fraction(self, inst):
        assert inst.coverage_fraction([2]) == pytest.approx(0.4)

    def test_coverage_fraction_empty_instance(self):
        assert CoverageInstance(3).coverage_fraction([0]) == 0.0

    def test_numpy_path_input(self):
        inst = CoverageInstance(5)
        inst.add_path(np.array([3, 1], dtype=np.int64))
        assert inst.covered_count([1]) == 1
