"""Unit tests for the swap local search."""

from itertools import combinations

import numpy as np
import pytest

from repro.coverage import (
    CoverageInstance,
    greedy_max_cover,
    swap_local_search,
)
from repro.exceptions import ParameterError


def _instance(paths, n):
    inst = CoverageInstance(n)
    inst.add_paths(paths)
    return inst


class TestSwapLocalSearch:
    def test_never_decreases_coverage(self):
        rng = np.random.default_rng(0)
        for trial in range(5):
            paths = [
                rng.choice(12, size=rng.integers(1, 4), replace=False)
                for _ in range(50)
            ]
            inst = _instance(paths, 12)
            greedy = greedy_max_cover(inst, 3)
            refined = swap_local_search(inst, greedy.group)
            assert refined.covered >= greedy.covered

    def test_fixes_a_deliberately_bad_group(self):
        # paths covered only by nodes 0 and 1; group starts at {2, 3}
        inst = _instance([[0], [0], [1], [1]], 4)
        refined = swap_local_search(inst, [2, 3])
        assert set(refined.group) == {0, 1}
        assert refined.covered == 4
        assert refined.swaps == 2

    def test_local_optimum_is_stable(self):
        inst = _instance([[0], [1], [2]], 3)
        refined = swap_local_search(inst, [0, 1, 2])
        assert refined.swaps == 0
        assert refined.rounds == 1

    def test_group_size_preserved(self):
        rng = np.random.default_rng(1)
        paths = [rng.choice(10, size=2, replace=False) for _ in range(30)]
        inst = _instance(paths, 10)
        refined = swap_local_search(inst, [0, 1, 2, 3])
        assert len(refined.group) == 4
        assert len(set(refined.group)) == 4

    def test_reaches_optimum_on_small_instances(self):
        rng = np.random.default_rng(2)
        paths = [rng.choice(8, size=2, replace=False) for _ in range(25)]
        inst = _instance(paths, 8)
        refined = swap_local_search(inst, greedy_max_cover(inst, 2).group)
        best = max(inst.covered_count(c) for c in combinations(range(8), 2))
        # single-swap local optima are not always global, but on these
        # tiny instances they should be very close
        assert refined.covered >= best - 1

    def test_duplicate_group_rejected(self):
        inst = _instance([[0]], 3)
        with pytest.raises(ParameterError):
            swap_local_search(inst, [1, 1])

    def test_bad_ids_rejected(self):
        inst = _instance([[0]], 3)
        with pytest.raises(ParameterError):
            swap_local_search(inst, [5])

    def test_max_rounds_respected(self):
        inst = _instance([[0], [1]], 4)
        refined = swap_local_search(inst, [2, 3], max_rounds=1)
        assert refined.rounds == 1

    def test_max_rounds_validation(self):
        inst = _instance([[0]], 2)
        with pytest.raises(ParameterError):
            swap_local_search(inst, [0], max_rounds=0)
