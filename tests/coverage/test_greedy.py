"""Unit tests for the CELF lazy greedy max-cover."""

from itertools import combinations

import numpy as np
import pytest

from repro.coverage import CoverageInstance, greedy_max_cover
from repro.exceptions import ParameterError
from repro.obs import Telemetry


def _instance(paths, n):
    inst = CoverageInstance(n)
    inst.add_paths(paths)
    return inst


class TestBasics:
    def test_single_best_node(self):
        inst = _instance([[0], [0], [0, 1], [2]], 3)
        result = greedy_max_cover(inst, 1)
        assert result.group == [0]
        assert result.covered == 3

    def test_two_rounds(self):
        inst = _instance([[0], [0], [1], [2], [2], [2]], 3)
        result = greedy_max_cover(inst, 2)
        assert result.group == [2, 0]
        assert result.covered == 5
        assert result.gains == [3, 2]

    def test_overlap_resolved_by_marginal_gain(self):
        # node 0 covers 3 paths, node 1 covers the same 3 plus nothing new,
        # node 2 covers 1 fresh path
        inst = _instance([[0, 1], [0, 1], [0, 1], [2]], 3)
        result = greedy_max_cover(inst, 2)
        assert result.group[0] == 0
        assert result.group[1] == 2
        assert result.covered == 4

    def test_k_validation(self):
        inst = _instance([[0]], 2)
        with pytest.raises(ParameterError):
            greedy_max_cover(inst, 0)
        with pytest.raises(ParameterError):
            greedy_max_cover(inst, 3)

    def test_padding_to_exactly_k(self):
        inst = _instance([[0]], 5)
        result = greedy_max_cover(inst, 3)
        assert len(result.group) == 3
        assert result.group[0] == 0
        assert result.gains[1:] == [0, 0]

    def test_no_padding_option(self):
        inst = _instance([[0]], 5)
        result = greedy_max_cover(inst, 3, pad=False)
        assert result.group == [0]

    def test_empty_instance(self):
        inst = CoverageInstance(4)
        result = greedy_max_cover(inst, 2)
        assert len(result.group) == 2
        assert result.covered == 0

    def test_null_paths_never_covered(self):
        inst = _instance([[], [], [0]], 2)
        result = greedy_max_cover(inst, 2)
        assert result.covered == 1


class TestOptimality:
    def _brute_best(self, inst, k):
        best = 0
        for combo in combinations(range(inst.num_nodes), k):
            best = max(best, inst.covered_count(combo))
        return best

    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_beats_1_minus_1_over_e(self, seed):
        rng = np.random.default_rng(seed)
        paths = [
            rng.choice(8, size=rng.integers(1, 4), replace=False)
            for _ in range(30)
        ]
        inst = _instance(paths, 8)
        for k in (1, 2, 3):
            greedy = greedy_max_cover(inst, k).covered
            optimum = self._brute_best(inst, k)
            assert greedy >= (1 - 1 / np.e) * optimum - 1e-9

    def test_k_equals_1_is_optimal(self):
        rng = np.random.default_rng(42)
        paths = [rng.choice(10, size=3, replace=False) for _ in range(40)]
        inst = _instance(paths, 10)
        greedy = greedy_max_cover(inst, 1).covered
        assert greedy == self._brute_best(inst, 1)

    @pytest.mark.parametrize("seed", range(3))
    def test_lazy_equals_plain_greedy(self, seed):
        """CELF must pick the same cover value as naive greedy."""
        rng = np.random.default_rng(seed + 50)
        paths = [
            rng.choice(12, size=rng.integers(1, 5), replace=False)
            for _ in range(60)
        ]
        inst = _instance(paths, 12)

        # naive greedy reference
        covered = np.zeros(inst.num_paths, dtype=bool)
        naive = []
        for _ in range(4):
            gains = [
                int(np.count_nonzero(~covered[inst.paths_through(v)]))
                if v not in naive
                else -1
                for v in range(12)
            ]
            best = int(np.argmax(gains))
            naive.append(best)
            covered[inst.paths_through(best)] = True
        naive_value = int(covered.sum())

        lazy = greedy_max_cover(inst, 4)
        assert lazy.covered == naive_value

    def test_evaluations_less_than_plain(self):
        rng = np.random.default_rng(7)
        paths = [rng.choice(50, size=4, replace=False) for _ in range(300)]
        inst = _instance(paths, 50)
        result = greedy_max_cover(inst, 10, batch=1)
        assert result.evaluations < 10 * 50  # plain greedy would do K*n


class TestLazyEvaluationCounts:
    """The initial degree entries are exact, so CELF must accept the
    first pop of every run without a redundant re-evaluation.  These
    counts pin the entry-at-a-time schedule, so they run at ``batch=1``
    (larger batches may price extra candidates speculatively)."""

    def test_disjoint_nodes_need_k_minus_1_evaluations(self):
        # every path hits exactly one node: after a pick, the next
        # pop's stale entry is re-evaluated once (its gain is
        # unchanged) and then accepted fresh on the following pop —
        # k - 1 evaluations in total, not k
        inst = _instance([[0], [0], [0], [1], [1], [2]], 4)
        for k in (1, 2, 3):
            result = greedy_max_cover(inst, k, batch=1)
            assert result.evaluations == k - 1
            assert result.eval_batches == result.evaluations

    def test_first_pick_costs_zero_evaluations(self):
        inst = _instance([[0, 1], [0], [2]], 3)
        result = greedy_max_cover(inst, 1, batch=1)
        assert result.group == [0]
        assert result.evaluations == 0
        assert result.eval_batches == 0

    def test_seeding_does_not_change_the_cover(self):
        rng = np.random.default_rng(11)
        paths = [
            rng.choice(20, size=rng.integers(1, 5), replace=False)
            for _ in range(100)
        ]
        inst = _instance(paths, 20)
        result = greedy_max_cover(inst, 5)
        # the group is a genuine greedy solution: replaying its gains
        # against the instance reproduces the covered total
        assert sum(result.gains) == result.covered
        assert inst.covered_count(result.group) == result.covered


class TestGainsBookkeeping:
    def test_gains_sum_to_covered(self):
        rng = np.random.default_rng(3)
        paths = [rng.choice(9, size=2, replace=False) for _ in range(25)]
        inst = _instance(paths, 9)
        result = greedy_max_cover(inst, 4)
        assert sum(result.gains) == result.covered

    def test_gains_non_increasing(self):
        rng = np.random.default_rng(4)
        paths = [rng.choice(15, size=3, replace=False) for _ in range(80)]
        inst = _instance(paths, 15)
        result = greedy_max_cover(inst, 6)
        picked = [g for g in result.gains if g > 0]
        assert picked == sorted(picked, reverse=True)


class TestBatchedEvaluation:
    """The batch knob is a pure throughput lever: selections are frozen
    across every batch size; only the evaluation schedule moves."""

    def _random_instance(self, seed, n=40, paths=250):
        rng = np.random.default_rng(seed)
        return _instance(
            [
                rng.choice(n, size=rng.integers(1, 6), replace=False)
                for _ in range(paths)
            ],
            n,
        )

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("batch", [2, 3, 16, 64])
    def test_batch_sizes_pick_identical_groups(self, seed, batch):
        inst = self._random_instance(seed)
        reference = greedy_max_cover(inst, 8, batch=1)
        batched = greedy_max_cover(inst, 8, batch=batch)
        assert batched.group == reference.group
        assert batched.gains == reference.gains
        assert batched.covered == reference.covered

    def test_default_batch_matches_sequential(self):
        inst = self._random_instance(9)
        reference = greedy_max_cover(inst, 6, batch=1)
        default = greedy_max_cover(inst, 6)
        assert default.group == reference.group
        assert default.gains == reference.gains

    def test_batches_amortize_evaluations(self):
        # many overlapping candidates force plenty of stale pops per
        # round, so the vectorized passes must each absorb several
        rng = np.random.default_rng(21)
        inst = _instance(
            [rng.choice(60, size=5, replace=False) for _ in range(600)], 60
        )
        result = greedy_max_cover(inst, 10, batch=16)
        assert result.evaluations > 0
        assert 0 < result.eval_batches < result.evaluations

    def test_batch_one_pins_one_eval_per_batch(self):
        inst = self._random_instance(5)
        result = greedy_max_cover(inst, 8, batch=1)
        assert result.eval_batches == result.evaluations

    def test_telemetry_counts_batched_evals(self):
        inst = self._random_instance(13)
        hub = Telemetry()
        result = greedy_max_cover(inst, 8, telemetry=hub)
        counted = hub.snapshot()["counters"].get("coverage.batched_evals", 0)
        assert counted == result.evaluations

    def test_batch_validation(self):
        inst = _instance([[0]], 2)
        with pytest.raises(ParameterError):
            greedy_max_cover(inst, 1, batch=0)
