"""The CSR-incidence rebuild counters (append→query transitions).

`CoverageInstance` rebuilds its node→path index (a full stable argsort)
whenever a query follows an append; that cost used to be invisible.
These tests pin the counting semantics and their flow into
`EngineStats` / the ``coverage.*`` telemetry counters.
"""

from __future__ import annotations

import numpy as np

from repro.coverage import CoverageInstance
from repro.engine import create_engine
from repro.graph import barabasi_albert
from repro.obs import Telemetry


def _add(instance, *paths):
    for path in paths:
        instance.add_path(np.asarray(path, dtype=np.int64))


class TestInstanceCounters:
    def test_fresh_instance_has_zero(self):
        instance = CoverageInstance(5)
        assert instance.rebuilds == 0
        assert instance.rebuilt_elements == 0

    def test_query_after_append_rebuilds_once(self):
        instance = CoverageInstance(5)
        _add(instance, (0, 1, 2), (2, 3))
        instance.covered_count([2])
        assert instance.rebuilds == 1
        assert instance.rebuilt_elements == 5  # 3 + 2 path elements
        # repeated queries reuse the index
        instance.covered_count([0])
        instance.paths_through(2)
        assert instance.rebuilds == 1

    def test_append_invalidates_index(self):
        instance = CoverageInstance(5)
        _add(instance, (0, 1))
        instance.covered_count([0])
        _add(instance, (3, 4))
        instance.covered_count([3])
        assert instance.rebuilds == 2
        assert instance.rebuilt_elements == 2 + 4  # whole flat array each time


class TestEngineStatsFlow:
    def test_extend_folds_rebuilds_into_stats(self):
        graph = barabasi_albert(40, 2, seed=1)
        instance = CoverageInstance(graph.n)
        with create_engine("serial", graph, seed=0) as engine:
            engine.extend(instance, 50)
            instance.covered_count([0])  # forces one rebuild
            engine.extend(instance, 100)
            stats = engine.stats.as_dict()
        assert stats["coverage_rebuilds"] == instance.rebuilds == 1
        assert stats["coverage_rebuilt_elements"] == instance.rebuilt_elements

    def test_telemetry_counters(self):
        graph = barabasi_albert(40, 2, seed=1)
        hub = Telemetry()
        instance = CoverageInstance(graph.n)
        with create_engine("serial", graph, seed=0, telemetry=hub) as engine:
            engine.extend(instance, 50)
            instance.covered_count([0])
            engine.extend(instance, 100)
        counters = hub.snapshot()["counters"]
        assert counters["coverage.rebuilds"] == 1
        assert counters["coverage.rebuilt_elements"] == instance.rebuilt_elements

    def test_algorithm_run_reports_rebuilds(self):
        from repro.algorithms import AdaAlg

        graph = barabasi_albert(40, 2, seed=1)
        result = AdaAlg(eps=0.4, gamma=0.1, seed=2).run(graph, 3)
        stats = result.diagnostics["engine"]["stats"]
        assert sum(s["coverage_rebuilds"] for s in stats) >= 1
        assert sum(s["coverage_rebuilt_elements"] for s in stats) > 0
