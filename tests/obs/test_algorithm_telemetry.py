"""Telemetry flows through all four sampling algorithms.

Every algorithm must (a) emit per-iteration events with its
stopping-rule internals, (b) aggregate span timings under its own
top-level span, and (c) land the collected snapshot in
``GBCResult.diagnostics["telemetry"]``.
"""

import json

import pytest

from repro.algorithms import AdaAlg, CentRa, Exhaust, Hedge
from repro.graph import erdos_renyi
from repro.obs import REQUIRED_FIELDS, JsonlSink, MemorySink, Telemetry

FACTORIES = {
    "AdaAlg": lambda tel: AdaAlg(eps=0.4, seed=51, telemetry=tel),
    "HEDGE": lambda tel: Hedge(eps=0.5, seed=52, max_samples=20_000, telemetry=tel),
    "CentRa": lambda tel: CentRa(eps=0.5, seed=53, max_samples=20_000, telemetry=tel),
    "EXHAUST": lambda tel: Exhaust(num_samples=2_000, seed=54, telemetry=tel),
}


@pytest.fixture
def graph():
    return erdos_renyi(50, 0.12, seed=50)


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_telemetry_reaches_diagnostics(graph, name):
    tel = Telemetry()
    result = FACTORIES[name](tel).run(graph, 3)
    snap = result.diagnostics["telemetry"]
    assert set(snap) == {"counters", "spans", "events"}
    assert snap["counters"]["engine.samples"] == result.num_samples
    assert snap["counters"]["engine.draw_calls"] >= 1
    iterations = [e for e in snap["events"] if e["name"] == "iteration"]
    assert len(iterations) == result.iterations
    for event in iterations:
        assert event["algorithm"] == result.algorithm


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_top_level_span_matches_algorithm(graph, name):
    tel = Telemetry()
    FACTORIES[name](tel).run(graph, 3)
    top = {path for path in tel.spans if "/" not in path}
    assert top == {name.lower()}
    assert any(path.endswith("/sample") for path in tel.spans)
    assert any(path.endswith("/greedy") for path in tel.spans)


def test_adaalg_iteration_events_carry_stop_rule_fields(graph):
    tel = Telemetry()
    result = AdaAlg(eps=0.4, seed=55, telemetry=tel).run(graph, 3)
    iterations = [e for e in tel.events if e["name"] == "iteration"]
    assert iterations, "no iteration events recorded"
    for event in iterations:
        for field in ("q", "guess", "samples", "biased", "unbiased", "cnt"):
            assert field in event, f"{field!r} missing from {event}"
    assert [e["q"] for e in iterations] == list(range(1, result.iterations + 1))
    if result.converged:
        final = iterations[-1]
        assert final["cnt"] >= 2
        assert final["eps_sum"] is not None


def test_capped_adaalg_emits_capped_event(graph):
    tel = Telemetry()
    result = AdaAlg(eps=0.3, seed=56, max_samples=10, telemetry=tel).run(graph, 3)
    assert not result.converged
    capped = [e for e in tel.events if e["name"] == "capped"]
    assert len(capped) == 1
    assert capped[0]["max_samples"] == 10


def test_algorithm_jsonl_is_schema_valid(graph, tmp_path):
    path = tmp_path / "run.jsonl"
    tel = Telemetry(sinks=[JsonlSink(path)])
    AdaAlg(eps=0.4, seed=57, telemetry=tel).run(graph, 3)
    tel.close()
    lines = path.read_text().strip().splitlines()
    assert lines
    kinds = set()
    for line in lines:
        record = json.loads(line)
        for field in REQUIRED_FIELDS:
            assert field in record
        kinds.add(record["kind"])
    assert {"span", "event", "counter"} <= kinds


def test_shared_hub_separates_algorithms_by_event_field(graph):
    sink = MemorySink()
    tel = Telemetry(sinks=[sink])
    Hedge(eps=0.5, seed=58, max_samples=20_000, telemetry=tel).run(graph, 3)
    AdaAlg(eps=0.4, seed=59, telemetry=tel).run(graph, 3)
    names = {
        e["algorithm"]
        for e in tel.events
        if e["name"] == "iteration"
    }
    assert names == {"HEDGE", "AdaAlg"}
