"""Unit tests for the telemetry hub, its sinks, and the JSONL schema."""

import json

import pytest

from repro.obs import (
    NULL_TELEMETRY,
    REQUIRED_FIELDS,
    CallbackSink,
    JsonlSink,
    MemorySink,
    NullTelemetry,
    Telemetry,
    as_telemetry,
)


class FakeClock:
    """Deterministic clock: each call advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpans:
    def test_span_paths_nest(self):
        tel = Telemetry()
        with tel.span("outer"):
            assert tel.span_path == "outer"
            with tel.span("inner"):
                assert tel.span_path == "outer/inner"
            assert tel.span_path == "outer"
        assert tel.span_path == ""
        assert set(tel.spans) == {"outer", "outer/inner"}

    def test_span_durations_aggregate(self):
        tel = Telemetry(clock=FakeClock(step=1.0))
        for _ in range(3):
            with tel.span("work"):
                pass
        agg = tel.spans["work"]
        assert agg["count"] == 3
        assert agg["seconds"] > 0.0

    def test_span_pops_on_exception(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with tel.span("broken"):
                raise ValueError("boom")
        assert tel.span_path == ""
        assert tel.spans["broken"]["count"] == 1

    def test_span_attrs_reach_sinks(self):
        sink = MemorySink()
        tel = Telemetry(sinks=[sink])
        with tel.span("sample", target=500):
            pass
        (record,) = sink.records
        assert record["kind"] == "span"
        assert record["target"] == 500


class TestCountersAndEvents:
    def test_counters_accumulate(self):
        tel = Telemetry()
        tel.count("engine.samples", 10)
        tel.count("engine.samples", 5)
        tel.count("engine.draw_calls")
        assert tel.counters == {"engine.samples": 15, "engine.draw_calls": 1}

    def test_counters_flushed_on_close(self):
        sink = MemorySink()
        tel = Telemetry(sinks=[sink])
        tel.count("engine.samples", 7)
        assert sink.records == []  # silent until close
        tel.close()
        (record,) = sink.records
        assert record["kind"] == "counter"
        assert record["name"] == "engine.samples"
        assert record["value"] == 7

    def test_events_recorded_in_order(self):
        tel = Telemetry()
        tel.event("iteration", q=1)
        tel.event("iteration", q=2)
        assert [e["q"] for e in tel.events] == [1, 2]

    def test_event_carries_span_path(self):
        tel = Telemetry()
        with tel.span("run"):
            record = tel.event("iteration", q=1)
        assert record["span"] == "run"

    def test_numpy_scalars_coerced(self):
        np = pytest.importorskip("numpy")
        sink = MemorySink()
        tel = Telemetry(sinks=[sink])
        tel.event("iteration", samples=np.int64(5), estimate=np.float64(0.5))
        tel.close()
        for record in sink.records:
            json.dumps(record)  # must not raise

    def test_snapshot_shape(self):
        tel = Telemetry()
        with tel.span("run"):
            tel.event("iteration", q=1)
        tel.count("x", 2)
        snap = tel.snapshot()
        assert set(snap) == {"counters", "spans", "events"}
        assert snap["counters"] == {"x": 2}
        assert snap["spans"]["run"]["count"] == 1
        assert len(snap["events"]) == 1

    def test_ops_counts_instrumentation_calls(self):
        tel = Telemetry()
        with tel.span("a"):
            tel.event("e")
        tel.count("c")
        assert tel.ops == 3


class TestJsonlSink:
    def test_every_line_parses_and_carries_schema(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tel = Telemetry(sinks=[JsonlSink(path)])
        with tel.span("run", k=5):
            tel.event("iteration", q=1, estimate=1.5)
            with tel.span("greedy"):
                pass
        tel.count("engine.samples", 100)
        tel.close()

        lines = path.read_text().strip().splitlines()
        assert len(lines) >= 4  # 2 spans + 1 event + 1 counter
        kinds = set()
        for line in lines:
            record = json.loads(line)
            for field in REQUIRED_FIELDS:
                assert field in record, f"{field!r} missing from {record}"
            kinds.add(record["kind"])
        assert kinds == {"span", "event", "counter"}

    def test_close_is_idempotent(self, tmp_path):
        tel = Telemetry(sinks=[JsonlSink(tmp_path / "x.jsonl")])
        tel.count("a", 1)
        tel.close()
        tel.close()  # second close must not re-emit or raise
        lines = (tmp_path / "x.jsonl").read_text().strip().splitlines()
        assert len(lines) == 1


class TestCallbackSink:
    def test_callback_invoked_per_record(self):
        seen = []
        tel = Telemetry(sinks=[CallbackSink(seen.append)])
        tel.event("iteration", q=1)
        assert len(seen) == 1
        assert seen[0]["name"] == "iteration"


class TestNullTelemetry:
    def test_null_operations_are_noops(self):
        null = NullTelemetry()
        with null.span("anything", k=5) as inner:
            assert inner is None
        assert null.event("e", x=1) is None
        null.count("c", 10)
        assert null.snapshot() == {}
        null.close()
        assert not null.enabled

    def test_null_span_is_shared(self):
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")

    def test_as_telemetry_normalizes(self):
        assert as_telemetry(None) is NULL_TELEMETRY
        tel = Telemetry()
        assert as_telemetry(tel) is tel
