"""Unit tests for the debug-mode invariant validators."""

import numpy as np
import pytest

from repro.coverage import CoverageInstance
from repro.exceptions import InvariantViolation
from repro.graph import erdos_renyi, path_graph
from repro.obs import check_coverage, check_instance, check_sample
from repro.paths import PathSampler
from repro.paths.sampler import PathSample


def _sample(graph, seed=0):
    sampler = PathSampler(graph, seed=seed)
    while True:
        sample = sampler.sample()
        if not sample.is_null:
            return sample


def _corrupted(sample, **overrides):
    fields = {
        "source": sample.source,
        "target": sample.target,
        "nodes": sample.nodes,
        "distance": sample.distance,
        "sigma_st": sample.sigma_st,
        "edges_explored": sample.edges_explored,
    }
    fields.update(overrides)
    return PathSample(**fields)


class TestCheckSample:
    def test_genuine_samples_pass(self):
        g = erdos_renyi(40, 0.15, seed=3)
        sampler = PathSampler(g, seed=4)
        for sample in sampler.sample_batch(50):
            check_sample(g, sample)  # must not raise

    def test_wrong_distance_rejected(self):
        g = path_graph(6)
        sample = _sample(g)
        bad = _corrupted(sample, distance=sample.distance + 1)
        with pytest.raises(InvariantViolation, match="distance"):
            check_sample(g, bad)

    def test_wrong_endpoints_rejected(self):
        g = erdos_renyi(30, 0.2, seed=5)
        sample = _sample(g)
        other = next(
            v for v in range(g.n) if v not in (sample.source, sample.target)
        )
        bad = _corrupted(sample, source=other)
        with pytest.raises(InvariantViolation, match="endpoints"):
            check_sample(g, bad)

    def test_nonexistent_arc_rejected(self):
        g = path_graph(6)  # 0-1-2-3-4-5: (0, 2) is not an edge
        bad = PathSample(
            source=0,
            target=2,
            nodes=np.array([0, 2]),
            distance=1,
            sigma_st=1.0,
            edges_explored=0,
        )
        with pytest.raises(InvariantViolation, match="arc"):
            check_sample(g, bad)

    def test_non_shortest_path_rejected(self):
        # 0-1-2 plus the chord 0-2: the two-hop route is not shortest
        from repro.graph import from_edges

        g = from_edges(np.array([[0, 1], [1, 2], [0, 2]]), n=3)
        bad = PathSample(
            source=0,
            target=2,
            nodes=np.array([0, 1, 2]),
            distance=2,
            sigma_st=1.0,
            edges_explored=0,
        )
        with pytest.raises(InvariantViolation, match="shortest"):
            check_sample(g, bad)

    def test_null_sample_for_reachable_pair_rejected(self):
        g = path_graph(4)
        bad = PathSample(
            source=0,
            target=3,
            nodes=np.empty(0, dtype=np.int64),
            distance=-1,
            sigma_st=0.0,
            edges_explored=0,
        )
        with pytest.raises(InvariantViolation, match="reachable"):
            check_sample(g, bad)


class TestCheckInstance:
    def _instance(self):
        instance = CoverageInstance(10)
        instance.add_path([0, 1, 2])
        instance.add_path([2, 3])
        instance.add_path([5])
        return instance

    def test_consistent_instance_passes(self):
        check_instance(self._instance())  # must not raise

    def test_corrupted_degree_counter_detected(self):
        instance = self._instance()
        instance._degrees[2] += 1  # simulate a double-count bug
        with pytest.raises(InvariantViolation, match="degree counter"):
            check_instance(instance)

    def test_empty_instance_passes(self):
        check_instance(CoverageInstance(5))


class TestCheckCoverage:
    def test_consistent_count_returned(self):
        instance = CoverageInstance(10)
        instance.add_path([0, 1, 2])
        instance.add_path([2, 3])
        instance.add_path([4, 5])
        assert check_coverage(instance, [2]) == 2
        assert check_coverage(instance, [0, 4]) == 2
        assert check_coverage(instance, [9]) == 0

    def test_matches_vectorized_count_on_random_instances(self):
        rng = np.random.default_rng(7)
        instance = CoverageInstance(30)
        for _ in range(60):
            size = int(rng.integers(1, 6))
            instance.add_path(rng.choice(30, size=size, replace=False))
        group = [0, 7, 13]
        assert check_coverage(instance, group) == instance.covered_count(group)


class TestAlgorithmDebugMode:
    def test_adaalg_debug_run_is_clean(self):
        from repro.algorithms import AdaAlg

        g = erdos_renyi(40, 0.15, seed=11)
        result = AdaAlg(eps=0.4, seed=12, debug=True).run(g, 3)
        assert len(result.group) == 3

    def test_debug_mode_catches_corrupted_sampler(self, monkeypatch):
        """A sampler that mangles distances must be caught at the engine."""
        from repro.engine import create_engine

        g = erdos_renyi(40, 0.15, seed=13)
        engine = create_engine("serial", g, seed=14, debug=True)
        original = PathSampler.sample_batch

        def corrupt(self, count):
            return [
                s if s.is_null else _corrupted(s, distance=s.distance + 1)
                for s in original(self, count)
            ]

        monkeypatch.setattr(PathSampler, "sample_batch", corrupt)
        instance = CoverageInstance(g.n)
        with pytest.raises(InvariantViolation):
            # >= n samples so the serial engine takes the batch path
            # the monkeypatch intercepts
            engine.extend(instance, g.n + 10)
        engine.close()
