"""Telemetry counters agree across execution engines.

The ``engine.*`` counters re-export :class:`repro.engine.base.EngineStats`
deltas at every ``extend``; the sample/draw accounting is part of the
engines' determinism contract, so for a fixed request sequence the
serial, batch, and process engines must report identical totals.
"""

import pytest

from repro.coverage import CoverageInstance
from repro.engine import ENGINES, create_engine
from repro.obs import Telemetry


def _run_engine(name, graph, requests):
    tel = Telemetry()
    # every request below lands on a 16-boundary, so the epoch engine's
    # round-up-to-epoch extend semantics yield the same totals
    extra = {"process": {"workers": 2}, "epoch": {"workers": 2, "epoch_size": 16}}
    engine = create_engine(
        name,
        graph,
        seed=41,
        telemetry=tel,
        **extra.get(name, {}),
    )
    with engine:
        instance = CoverageInstance(graph.n)
        for target in requests:
            engine.extend(instance, target)
    return tel, instance


@pytest.mark.parametrize("name", sorted(ENGINES))
def test_counter_totals_match_engine_stats(grid3x3, name):
    tel, instance = _run_engine(name, grid3x3, [32, 64])
    assert tel.counters["engine.samples"] == 64
    assert tel.counters["engine.draw_calls"] == 2
    assert tel.counters["engine.traversals"] > 0
    assert instance.num_paths == 64


def test_counter_totals_identical_across_engines(grid3x3):
    requests = [32, 80]
    baseline, _ = _run_engine("serial", grid3x3, requests)
    for name in sorted(set(ENGINES) - {"serial"}):
        tel, _ = _run_engine(name, grid3x3, requests)
        for counter in ("engine.samples", "engine.draw_calls"):
            assert tel.counters[counter] == baseline.counters[counter], (
                f"{name} disagrees with serial on {counter}"
            )


def test_spans_recorded_per_draw(grid3x3):
    tel, _ = _run_engine("serial", grid3x3, [16, 32])
    assert tel.spans["draw"]["count"] == 2
