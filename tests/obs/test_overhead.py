"""Disabled-telemetry overhead stays within the <2% budget.

The instrumentation call sites all go through the hub held by the
algorithm/engine; when nobody asked for telemetry that hub is
:data:`~repro.obs.NULL_TELEMETRY`.  An instrumented run counts its own
call sites (``Telemetry.ops``), so the micro-benchmark below can bound
the *disabled* cost directly: (per-op cost of the null hub) x (ops an
actual run performs) must stay under 2% of that run's wall-clock.
This is far more stable than differencing two timed runs, whose noise
on a fast algorithm dwarfs the effect being measured.
"""

import time

from repro.algorithms import AdaAlg
from repro.graph import erdos_renyi
from repro.obs import NULL_TELEMETRY, Telemetry


def _null_op_cost(repetitions: int = 20_000) -> float:
    """Measured seconds per disabled span+event+count trio."""
    null = NULL_TELEMETRY
    begin = time.perf_counter()
    for _ in range(repetitions):
        with null.span("sample", target=100):
            pass
        null.event("iteration", q=1, estimate=0.5)
        null.count("engine.samples", 64)
    elapsed = time.perf_counter() - begin
    return elapsed / (3 * repetitions)


def test_disabled_overhead_under_two_percent():
    g = erdos_renyi(60, 0.1, seed=21)
    tel = Telemetry()
    result = AdaAlg(eps=0.3, seed=22, telemetry=tel).run(g, 5)
    assert tel.ops > 0  # the run actually crossed instrumented sites

    per_op = _null_op_cost()
    disabled_cost = per_op * tel.ops
    budget = 0.02 * result.elapsed_seconds
    assert disabled_cost < budget, (
        f"disabled telemetry would cost ~{disabled_cost * 1e3:.3f}ms over "
        f"{tel.ops} ops, exceeding 2% of the {result.elapsed_seconds:.3f}s run"
    )


def test_disabled_run_produces_no_telemetry_diagnostics():
    g = erdos_renyi(40, 0.12, seed=23)
    result = AdaAlg(eps=0.4, seed=24).run(g, 3)
    assert "telemetry" not in result.diagnostics
