"""Checkpoint → kill → resume must be bit-identical to running straight
through — for every sampling algorithm and every engine.

Also freezes the pre-session-refactor reference results: with a fixed
seed, running through a session must reproduce the exact groups,
estimates, and sample counts the direct-engine implementation produced.
"""

from __future__ import annotations

import pytest

from repro.algorithms import AdaAlg, CentRa, Exhaust, Hedge
from repro.exceptions import CheckpointError, ParameterError, SessionInterrupted
from repro.graph import barabasi_albert


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert(80, 2, seed=5)


#: (group, estimate, estimate_unbiased, num_samples, iterations) of
#: AdaAlg(eps=0.4, gamma=0.1, seed=11).run(g, 4) recorded *before* the
#: session refactor (commit b59620f) — the refactor must not move them.
_FROZEN_ADAALG = {
    "serial": ([3, 0, 1, 13], 5008.599999999999, 5182.4, 800, 2),
    "batch": ([3, 0, 13, 1], 5071.8, 5198.2, 800, 2),
    "process": ([3, 0, 1, 13], 5135.0, 5087.6, 800, 2),
}


@pytest.mark.parametrize("engine", ["serial", "batch", "process"])
def test_adaalg_matches_pre_refactor_reference(graph, engine):
    workers = {"workers": 2} if engine == "process" else {}
    result = AdaAlg(eps=0.4, gamma=0.1, seed=11, engine=engine, **workers).run(
        graph, 4
    )
    group, estimate, unbiased, samples, iterations = _FROZEN_ADAALG[engine]
    assert result.group == group
    assert result.estimate == estimate
    assert result.estimate_unbiased == unbiased
    assert result.num_samples == samples
    assert result.iterations == iterations


def test_baselines_match_pre_refactor_reference(graph):
    result = Hedge(eps=0.5, gamma=0.1, seed=7, max_samples=20_000).run(graph, 3)
    assert (result.group, result.estimate, result.num_samples) == (
        [3, 0, 1], 4917.719568567026, 1298,
    )
    result = CentRa(eps=0.5, gamma=0.1, seed=7, max_samples=20_000).run(graph, 3)
    assert (result.group, result.estimate, result.num_samples) == (
        [3, 0, 1], 5167.734806629835, 362,
    )
    result = Exhaust(seed=7, num_samples=3000).run(graph, 3)
    assert (result.group, result.estimate, result.num_samples) == (
        [3, 0, 1], 4874.826666666667, 3000,
    )


# ----------------------------------------------------------------------
# Interrupt/resume equivalence
# ----------------------------------------------------------------------
_FACTORIES = {
    # multi-iteration configs: every algorithm passes ≥1 checkpointable
    # iteration boundary before converging on the module graph
    "adaalg": lambda **kw: AdaAlg(eps=0.4, gamma=0.1, seed=11, **kw),
    "hedge": lambda **kw: Hedge(eps=0.3, gamma=0.1, seed=7, guess_base=1.2, **kw),
    "centra": lambda **kw: CentRa(eps=0.3, gamma=0.1, seed=7, guess_base=1.2, **kw),
    "centra-era": lambda **kw: CentRa(
        eps=0.3, gamma=0.1, seed=7, guess_base=1.15, empirical_stop=True, **kw
    ),
    "exhaust": lambda **kw: Exhaust(seed=7, num_samples=3000, **kw),
}


def _assert_identical(resumed, straight):
    assert resumed.group == straight.group
    assert resumed.estimate == straight.estimate
    assert resumed.estimate_unbiased == straight.estimate_unbiased
    assert resumed.num_samples == straight.num_samples
    assert resumed.iterations == straight.iterations
    assert resumed.converged == straight.converged


def _kill_and_resume(graph, factory, k, path):
    straight = factory().run(graph, k)
    with pytest.raises(SessionInterrupted) as excinfo:
        factory(checkpoint_path=path, stop_after_checkpoints=1).run(graph, k)
    assert excinfo.value.path == path
    assert excinfo.value.checkpoints == 1
    resumed = factory(resume_from=path).run(graph, k)
    _assert_identical(resumed, straight)
    assert straight.diagnostics["resumed"] is False
    assert resumed.diagnostics["resumed"] is True
    assert straight.diagnostics["checkpoints"] == 0
    return straight, resumed


@pytest.mark.parametrize("name", sorted(_FACTORIES))
def test_resume_is_bit_identical(graph, tmp_path, name):
    _kill_and_resume(graph, _FACTORIES[name], 3, str(tmp_path / "ck.npz"))


@pytest.mark.parametrize("engine", ["serial", "batch", "process"])
@pytest.mark.parametrize("name", ["adaalg", "hedge", "exhaust"])
def test_resume_is_bit_identical_across_engines(graph, tmp_path, name, engine):
    workers = {"workers": 2} if engine == "process" else {}

    def factory(**kw):
        return _FACTORIES[name](engine=engine, **workers, **kw)

    _kill_and_resume(graph, factory, 3, str(tmp_path / "ck.npz"))


def test_checkpointing_does_not_perturb_results(graph, tmp_path):
    """A run with checkpointing enabled equals one without."""
    plain = _FACTORIES["adaalg"]().run(graph, 4)
    noisy = _FACTORIES["adaalg"](
        checkpoint_path=str(tmp_path / "ck.npz"), checkpoint_every=1
    ).run(graph, 4)
    _assert_identical(noisy, plain)
    assert noisy.diagnostics["checkpoints"] >= 1


def test_checkpoint_every_thins_snapshots(graph, tmp_path):
    path = str(tmp_path / "ck.npz")
    every = _FACTORIES["hedge"](checkpoint_path=path, checkpoint_every=1).run(
        graph, 3
    )
    sparse = _FACTORIES["hedge"](checkpoint_path=path, checkpoint_every=5).run(
        graph, 3
    )
    assert sparse.diagnostics["checkpoints"] <= every.diagnostics["checkpoints"]
    _assert_identical(sparse, every)


# ----------------------------------------------------------------------
# Misuse is rejected loudly
# ----------------------------------------------------------------------
class TestValidation:
    def test_wrong_algorithm_rejected(self, graph, tmp_path):
        path = str(tmp_path / "ck.npz")
        with pytest.raises(SessionInterrupted):
            _FACTORIES["adaalg"](
                checkpoint_path=path, stop_after_checkpoints=1
            ).run(graph, 3)
        with pytest.raises(CheckpointError):
            _FACTORIES["hedge"](resume_from=path).run(graph, 3)

    def test_wrong_k_rejected(self, graph, tmp_path):
        path = str(tmp_path / "ck.npz")
        with pytest.raises(SessionInterrupted):
            _FACTORIES["adaalg"](
                checkpoint_path=path, stop_after_checkpoints=1
            ).run(graph, 3)
        with pytest.raises(CheckpointError):
            _FACTORIES["adaalg"](resume_from=path).run(graph, 4)

    def test_failed_resume_validation_closes_the_session(
        self, graph, tmp_path, monkeypatch
    ):
        """Regression: a resumed session that fails tag validation must
        be closed before the error propagates, or its engines (workers,
        shared memory) outlive the failed run."""
        from repro.session import SamplingSession

        path = str(tmp_path / "ck.npz")
        with pytest.raises(SessionInterrupted):
            _FACTORIES["adaalg"](
                checkpoint_path=path, stop_after_checkpoints=1
            ).run(graph, 3)

        closed = []
        original_close = SamplingSession.close

        def recording_close(self):
            closed.append(self)
            return original_close(self)

        monkeypatch.setattr(SamplingSession, "close", recording_close)
        with pytest.raises(CheckpointError):
            _FACTORIES["hedge"](resume_from=path).run(graph, 3)
        assert len(closed) == 1

    def test_stop_requires_checkpoint_path(self):
        with pytest.raises(ParameterError):
            AdaAlg(seed=0, stop_after_checkpoints=1)

    def test_checkpoint_every_validated(self):
        with pytest.raises(ParameterError):
            AdaAlg(seed=0, checkpoint_every=0)

    def test_session_and_resume_exclusive(self, graph):
        from repro.session import SamplingSession

        with SamplingSession(graph, lanes=2, seed=0) as session:
            with pytest.raises(ParameterError):
                AdaAlg(seed=0, session=session, resume_from="x.npz")
