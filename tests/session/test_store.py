"""Unit tests for :class:`repro.session.SampleStore`."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.coverage import CoverageInstance
from repro.exceptions import CheckpointError
from repro.session import STORE_FORMAT, STORE_VERSION, SampleStore


def _filled_store(num_nodes=10, paths=((0, 1, 2), (2, 3), (4,), (0, 5, 6, 7))):
    store = SampleStore(num_nodes)
    for path in paths:
        store.add_path(np.asarray(path, dtype=np.int64))
    return store


class TestStoreBasics:
    def test_is_a_coverage_instance(self):
        assert isinstance(_filled_store(), CoverageInstance)

    def test_draw_schedule_records_targets(self):
        store = _filled_store()
        store.record_extend(100)
        store.record_extend(250)
        assert store.draw_schedule == [100, 250]

    def test_export_arrays_shapes(self):
        store = _filled_store()
        arrays = store.export_arrays()
        assert arrays["offsets"].shape == (store.num_paths + 1,)
        assert arrays["flat"].shape == (arrays["offsets"][-1],)
        assert arrays["degrees"].shape == (store.num_nodes,)


class TestRoundTrip:
    def test_from_arrays_preserves_queries(self):
        store = _filled_store()
        clone = SampleStore.from_arrays(store.num_nodes, store.export_arrays())
        assert clone.num_paths == store.num_paths
        for group in ([0], [2, 4], [0, 3, 5]):
            assert clone.covered_count(group) == store.covered_count(group)

    def test_loaded_store_can_keep_growing(self):
        store = _filled_store()
        clone = SampleStore.from_arrays(store.num_nodes, store.export_arrays())
        clone.add_path(np.asarray([8, 9], dtype=np.int64))
        assert clone.num_paths == store.num_paths + 1
        assert clone.covered_count([8]) == 1

    def test_save_load_file(self, tmp_path):
        store = _filled_store()
        store.record_extend(4)
        path = str(tmp_path / "pool.npz")
        store.save(path, rng_state={"bit_generator": "PCG64"},
                   provenance={"engine": "serial"})
        loaded, meta = SampleStore.load(path)
        assert loaded.num_paths == store.num_paths
        assert loaded.draw_schedule == [4]
        assert meta["format"] == STORE_FORMAT
        assert meta["version"] == STORE_VERSION
        assert meta["rng_state"] == {"bit_generator": "PCG64"}
        assert meta["provenance"] == {"engine": "serial"}

    def test_atomic_save_replaces_existing(self, tmp_path):
        path = str(tmp_path / "pool.npz")
        _filled_store().save(path)
        bigger = _filled_store(paths=((0, 1), (1, 2), (2, 3), (3, 4), (4, 5)))
        bigger.save(path)
        loaded, _ = SampleStore.load(path)
        assert loaded.num_paths == 5
        assert not [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]


class TestValidation:
    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            SampleStore.load(str(tmp_path / "nope.npz"))

    def test_load_non_store_npz(self, tmp_path):
        path = str(tmp_path / "other.npz")
        np.savez(path, x=np.arange(3))
        with pytest.raises(CheckpointError):
            SampleStore.load(path)

    def test_from_arrays_bad_offsets(self):
        arrays = _filled_store().export_arrays()
        arrays["offsets"] = arrays["offsets"][:-1]  # no longer ends at flat size
        with pytest.raises(CheckpointError):
            SampleStore.from_arrays(10, arrays)

    def test_from_arrays_wrong_universe(self):
        arrays = _filled_store().export_arrays()
        with pytest.raises(CheckpointError):
            SampleStore.from_arrays(7, arrays)

    def test_path_count_mismatch_detected(self, tmp_path):
        store = _filled_store()
        path = str(tmp_path / "pool.npz")
        store.save(path)
        with np.load(path) as payload:
            arrays = {k: payload[k] for k in payload.files}
        import json

        meta = json.loads(str(arrays["meta"]))
        meta["num_paths"] += 1
        arrays["meta"] = np.asarray(json.dumps(meta))
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError):
            SampleStore.load(path)


class TestSnapshotFieldValidation:
    """``from_arrays``/``load`` name the offending field on bad input."""

    def test_missing_field_named(self):
        arrays = _filled_store().export_arrays()
        del arrays["flat"]
        with pytest.raises(CheckpointError, match="'flat'.*missing"):
            SampleStore.from_arrays(10, arrays)

    def test_float_dtype_rejected(self):
        arrays = _filled_store().export_arrays()
        arrays["flat"] = arrays["flat"].astype(np.float64)
        with pytest.raises(CheckpointError, match="'flat'.*integer dtype"):
            SampleStore.from_arrays(10, arrays)

    def test_two_dimensional_array_rejected(self):
        arrays = _filled_store().export_arrays()
        arrays["offsets"] = arrays["offsets"].reshape(1, -1)
        with pytest.raises(CheckpointError, match="'offsets'.*1-D"):
            SampleStore.from_arrays(10, arrays)

    def test_wrong_length_degrees_named(self):
        arrays = _filled_store().export_arrays()
        arrays["degrees"] = arrays["degrees"][:-2]
        with pytest.raises(CheckpointError, match="'degrees'.*length"):
            SampleStore.from_arrays(10, arrays)

    def test_wrong_length_versions_named(self):
        arrays = _filled_store().export_arrays()
        arrays["versions"] = arrays["versions"][:-1]
        with pytest.raises(CheckpointError, match="'versions'.*length"):
            SampleStore.from_arrays(10, arrays)

    def test_narrower_int_widths_accepted(self):
        arrays = _filled_store().export_arrays()
        arrays["flat"] = arrays["flat"].astype(np.int32)
        arrays["offsets"] = arrays["offsets"].astype(np.uint32)
        clone = SampleStore.from_arrays(10, arrays)
        assert clone.num_paths == _filled_store().num_paths
        assert clone.export_arrays()["flat"].dtype == np.int64

    def test_load_surfaces_field_name(self, tmp_path):
        store = _filled_store()
        path = str(tmp_path / "pool.npz")
        store.save(path)
        with np.load(path, allow_pickle=True) as payload:
            arrays = {k: payload[k] for k in payload.files}
        arrays["degrees"] = arrays["degrees"].astype(np.float32)
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError, match="'degrees'"):
            SampleStore.load(path)
