"""Dynamic-graph tests: sample invalidation and incremental re-solve.

Covers the store's exact invalidation semantics, session migration
across all four engines, the checkpoint/resume behaviour of a mutated
pool, and the headline equivalence contract: mutate → requery returns
the same group as a cold run on the compacted graph at equal sample
count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import AdaAlg, CentRa, Exhaust, Hedge
from repro.exceptions import ParameterError
from repro.graph import DeltaGraph, GraphUpdate, barabasi_albert
from repro.session import SampleStore, SamplingSession


def _first_edge(graph, u=0):
    return u, int(graph.neighbors(u)[0])


def _missing_edge(graph):
    for u in range(graph.n):
        row = set(int(v) for v in graph.neighbors(u))
        for v in range(graph.n - 1, u, -1):
            if v != u and v not in row:
                return u, v
    raise AssertionError("graph is complete")


def _one_percent_update(graph, rng):
    """Delete ~0.5% of edges and insert as many new ones."""
    count = max(1, graph.num_edges // 200)
    deletes, inserts = [], []
    present = set()
    for u in range(graph.n):
        for v in graph.neighbors(u):
            if u < int(v):
                present.add((u, int(v)))
    pool = sorted(present)
    for index in rng.choice(len(pool), size=count, replace=False):
        deletes.append(pool[index])
        present.discard(pool[index])
    while len(inserts) < count:
        u, v = sorted(rng.choice(graph.n, size=2, replace=False))
        if (int(u), int(v)) not in present:
            inserts.append((int(u), int(v), 1))
            present.add((int(u), int(v)))
    return GraphUpdate.from_ops(inserts, deletes)


class TestStoreInvalidation:
    def test_drops_exactly_intersecting_paths(self):
        store = SampleStore(10)
        paths = [(0, 1, 2), (3, 4), (5, 6, 7), (2, 8)]
        for path in paths:
            store.add_path(np.asarray(path, dtype=np.int64))
        dropped = store.invalidate([2])
        assert dropped == 2
        assert store.num_paths == 2
        # survivors are exactly the paths avoiding node 2, order kept
        assert store.covered_count([3]) == 1
        assert store.covered_count([5]) == 1
        assert store.covered_count([0]) == 0

    def test_untouched_frontier_drops_nothing(self):
        store = SampleStore(10)
        store.add_path(np.asarray([0, 1], dtype=np.int64))
        assert store.invalidate([9]) == 0
        assert store.invalidate([]) == 0
        assert store.num_paths == 1

    def test_bloom_collisions_stay_exact(self):
        # nodes 3 and 67 share fingerprint bit 3 (mod 64): the packed
        # word alone cannot separate them, the exact pass must
        store = SampleStore(128)
        store.add_path(np.asarray([3, 10], dtype=np.int64))
        store.add_path(np.asarray([67, 20], dtype=np.int64))
        assert store.invalidate([3]) == 1
        assert store.num_paths == 1
        assert store.covered_count([67]) == 1

    def test_out_of_range_frontier_rejected(self):
        store = SampleStore(10)
        store.add_path(np.asarray([0, 1], dtype=np.int64))
        with pytest.raises(ParameterError):
            store.invalidate([10])
        with pytest.raises(ParameterError):
            store.invalidate([-1])

    def test_schedule_reset_to_surviving_pool(self):
        store = SampleStore(10)
        for path in ((0, 1), (2, 3), (4, 5)):
            store.add_path(np.asarray(path, dtype=np.int64))
        store.record_extend(3)
        store.invalidate([0])
        assert store.draw_schedule == [2]
        store.invalidate([2, 4])
        assert store.draw_schedule == []

    def test_random_invalidation_matches_reference(self):
        rng = np.random.default_rng(7)
        store = SampleStore(200)
        paths = []
        for _ in range(300):
            length = int(rng.integers(1, 8))
            path = rng.choice(200, size=length, replace=False)
            paths.append(set(int(v) for v in path))
            store.add_path(np.sort(path).astype(np.int64))
        touched = rng.choice(200, size=11, replace=False)
        frontier = set(int(v) for v in touched)
        expected_survivors = [p for p in paths if not (p & frontier)]
        dropped = store.invalidate(touched)
        assert dropped == len(paths) - len(expected_survivors)
        assert store.num_paths == len(expected_survivors)
        # surviving incidence matches the reference sets exactly
        for node in range(200):
            expected = sum(1 for p in expected_survivors if node in p)
            assert store.covered_count([node]) == expected

    def test_versions_stamped_and_survive_roundtrip(self):
        store = SampleStore(10)
        store.add_path(np.asarray([0, 1], dtype=np.int64))
        store.graph_version = 3
        store.add_path(np.asarray([2, 3], dtype=np.int64))
        assert store.path_version(0) == 0
        assert store.path_version(1) == 3
        clone = SampleStore.from_arrays(10, store.export_arrays())
        assert clone.path_version(1) == 3
        assert clone.graph_version == 3


class TestSessionMigration:
    def test_migrate_rejects_node_universe_change(self):
        with SamplingSession(barabasi_albert(30, 2, seed=0), seed=1) as sess:
            with pytest.raises(ParameterError, match="node universes"):
                sess.migrate(barabasi_albert(31, 2, seed=0), [0])

    def test_apply_update_invalidates_and_bumps_version(self):
        graph = barabasi_albert(60, 2, seed=3)
        with SamplingSession(graph, lanes=2, seed=5) as sess:
            sess.extend(40, lane=0)
            sess.extend(40, lane=1)
            u, v = _first_edge(graph)
            stats = sess.apply_update(GraphUpdate.from_ops(deletes=[(u, v)]))
            assert stats["version"] == 1 == sess.graph_version
            assert stats["invalidated"] > 0
            assert stats["surviving"] == sess.total_samples
            assert stats["invalidated"] + stats["surviving"] == 80
            assert sess.graph is not graph
            assert sess.graph.num_edges == graph.num_edges - 1
            for store in sess.stores:
                assert store.graph_version == 1

    @pytest.mark.parametrize(
        "engine_kwargs",
        [
            {"engine": "serial"},
            {"engine": "batch"},
            {"engine": "process", "workers": 2},
            {"engine": "epoch", "workers": 2, "epoch_size": 64},
        ],
        ids=["serial", "batch", "process", "epoch"],
    )
    def test_migrated_stream_matches_checkpoint_resume(
        self, engine_kwargs, tmp_path
    ):
        """After a migration, the surviving pool plus the continued
        stream stay bit-identically checkpointable: extending the live
        migrated session equals resuming its checkpoint and extending
        that — for every engine."""
        graph = barabasi_albert(60, 2, seed=3)
        update = GraphUpdate.from_ops(deletes=[_first_edge(graph)])
        path = str(tmp_path / "mutated.npz")

        live = SamplingSession(graph, seed=5, **engine_kwargs)
        try:
            live.extend(100)
            live.apply_update(update)
            live.checkpoint(path)
            thawed, state = SamplingSession.resume(path, live.graph)
            try:
                assert state is None
                assert thawed.graph_version == 1
                live.extend(200)
                thawed.extend(200)
                ours = live.store(0).export_arrays()
                theirs = thawed.store(0).export_arrays()
                assert sorted(ours) == sorted(theirs)
                for key in ours:
                    np.testing.assert_array_equal(ours[key], theirs[key])
            finally:
                thawed.close()
        finally:
            live.close()


def _equivalence_case(
    algorithm_cls, engine_kwargs, samples_tolerance=None, **params
):
    """Mutate → requery equals a cold run on the compacted graph.

    The group (and convergence verdict) must match; a
    ``samples_tolerance`` additionally pins the sample count to within
    that slack — structural for EXHAUST's fixed budget (0 exactly,
    except the epoch engine's round-up-to-epoch-boundary, where one
    epoch of slack is inherent: the surviving pool size is not an
    epoch multiple).  The adaptive stopping rules may legitimately
    halt at a different schedule entry on a different stream.
    """
    graph = barabasi_albert(60, 2, seed=3)
    rng = np.random.default_rng(11)
    update = _one_percent_update(graph, rng)

    warm_algorithm = algorithm_cls(seed=7, **params, **engine_kwargs)
    session = warm_algorithm.build_session(graph)
    try:
        warm_algorithm.session = session
        warm_algorithm.run(graph, 2)
        session.apply_update(update)
        assert session.total_samples > 0, "mutation wiped the whole pool"
        requery = algorithm_cls(seed=7, **params, **engine_kwargs)
        requery.session = session
        warm = requery.run(session.graph, 2)
    finally:
        session.close()

    cold = algorithm_cls(seed=7, **params, **engine_kwargs).run(
        session.graph, 2
    )
    assert sorted(warm.group) == sorted(cold.group)
    assert warm.converged == cold.converged
    if samples_tolerance is not None:
        assert abs(warm.num_samples - cold.num_samples) <= samples_tolerance


class TestEquivalenceContract:
    """The PR's acceptance bar, across algorithms and engines."""

    @pytest.mark.parametrize(
        "engine_kwargs",
        [
            {"engine": "serial"},
            {"engine": "batch"},
            {"engine": "process", "workers": 2},
            {"engine": "epoch", "workers": 2, "epoch_size": 128},
        ],
        ids=["serial", "batch", "process", "epoch"],
    )
    def test_adaalg_requery_matches_cold_run(self, engine_kwargs):
        _equivalence_case(AdaAlg, engine_kwargs, eps=0.6, gamma=0.1)

    def test_hedge_requery_matches_cold_run(self):
        _equivalence_case(Hedge, {"engine": "serial"}, eps=0.6, gamma=0.1)

    def test_centra_requery_matches_cold_run(self):
        _equivalence_case(CentRa, {"engine": "serial"}, eps=0.6, gamma=0.1)

    @pytest.mark.parametrize(
        "engine_kwargs, tolerance",
        [
            ({"engine": "serial"}, 0),
            ({"engine": "batch"}, 0),
            ({"engine": "process", "workers": 2}, 0),
            ({"engine": "epoch", "workers": 2, "epoch_size": 128}, 128),
        ],
        ids=["serial", "batch", "process", "epoch"],
    )
    def test_exhaust_requery_matches_cold_at_equal_samples(
        self, engine_kwargs, tolerance
    ):
        """EXHAUST's fixed budget makes the sample counts structurally
        equal, pinning the strictest form of the contract (the epoch
        engine gets one epoch of round-up slack)."""
        _equivalence_case(
            Exhaust, engine_kwargs, samples_tolerance=tolerance
        )

    def test_post_mutate_checkpoint_resumes_cleanly(self, tmp_path):
        """An interrupted checkpointed run, mutated mid-flight, resumes
        into the same answer as the straight-through warm requery."""
        graph = barabasi_albert(60, 2, seed=3)
        update = GraphUpdate.from_ops(deletes=[_first_edge(graph)])
        path = str(tmp_path / "run.npz")

        algorithm = AdaAlg(eps=0.6, gamma=0.1, seed=7)
        session = algorithm.build_session(graph)
        try:
            algorithm.session = session
            algorithm.run(graph, 2)
            session.apply_update(update)
            new_graph = session.graph
            # freeze the mutated pool with NO loop state: the resumed
            # algorithm re-enters its stopping rule over the warm pool
            session.checkpoint(
                path,
                state={
                    "algorithm": "AdaAlg",
                    "k": 2,
                    "params": {"eps": 0.6, "gamma": 0.1},
                    "algorithm_rng": None,
                    "loop": None,
                    "meta": {},
                },
            )
            requery = AdaAlg(eps=0.6, gamma=0.1, seed=7)
            requery.session = session
            warm = requery.run(new_graph, 2)
        finally:
            session.close()

        resumed_algorithm = AdaAlg(
            eps=0.6, gamma=0.1, seed=7, resume_from=path
        )
        resumed = resumed_algorithm.run(new_graph, 2)
        assert sorted(resumed.group) == sorted(warm.group)
        assert resumed.num_samples == warm.num_samples

    def test_reuse_fraction_is_substantial(self):
        """A 1%-edge delta keeps well over 40% of the pool warm at
        touch radius 0 (endpoint-only invalidation)."""
        graph = barabasi_albert(200, 2, seed=3)
        rng = np.random.default_rng(5)
        update = _one_percent_update(graph, rng)
        with SamplingSession(graph, seed=7) as sess:
            sess.extend(500)
            delta = DeltaGraph(graph, touch_radius=0)
            touched = delta.apply(update)
            stats = sess.migrate(delta.compact(), touched)
        assert stats["surviving"] / 500 >= 0.4
