"""End-to-end epoch-engine determinism through sessions and algorithms.

The headline guarantee of the epoch engine: for a fixed
``(seed, epoch_size)`` every sampling algorithm returns the *same*
group, estimates, and sample counts whether the epochs were computed
in-process (``workers=0``) or by 1 or 4 persistent workers — and a
checkpointed run killed at an epoch boundary resumes bit-identically.
"""

from __future__ import annotations

import pytest

from repro.algorithms import AdaAlg, CentRa, Exhaust, Hedge
from repro.exceptions import SessionInterrupted
from repro.graph import barabasi_albert
from repro.session import SamplingSession


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert(80, 2, seed=5)


_FACTORIES = {
    "adaalg": lambda **kw: AdaAlg(eps=0.4, gamma=0.1, seed=11, **kw),
    "hedge": lambda **kw: Hedge(
        eps=0.3, gamma=0.1, seed=7, guess_base=1.2, max_samples=20_000, **kw
    ),
    "centra": lambda **kw: CentRa(
        eps=0.3, gamma=0.1, seed=7, guess_base=1.2, max_samples=20_000, **kw
    ),
    "exhaust": lambda **kw: Exhaust(seed=7, num_samples=3000, **kw),
}


def _assert_identical(a, b):
    assert a.group == b.group
    assert a.estimate == b.estimate
    assert a.estimate_unbiased == b.estimate_unbiased
    assert a.num_samples == b.num_samples
    assert a.iterations == b.iterations
    assert a.converged == b.converged


@pytest.mark.parametrize("name", sorted(_FACTORIES))
def test_groups_identical_across_worker_counts(graph, name):
    def run(workers):
        algorithm = _FACTORIES[name](
            engine="epoch", workers=workers, epoch_size=100
        )
        return algorithm.run(graph, 3)

    reference = run(0)
    for workers in (1, 4):
        _assert_identical(run(workers), reference)


@pytest.mark.parametrize("name", sorted(_FACTORIES))
def test_resume_is_bit_identical(graph, tmp_path, name):
    """Kill after the first checkpoint (an epoch boundary), resume, and
    land on the uninterrupted run's exact result."""
    path = str(tmp_path / "ck.npz")

    def factory(**kw):
        return _FACTORIES[name](engine="epoch", epoch_size=100, **kw)

    straight = factory().run(graph, 3)
    with pytest.raises(SessionInterrupted):
        factory(checkpoint_path=path, stop_after_checkpoints=1).run(graph, 3)
    resumed = factory(resume_from=path).run(graph, 3)
    _assert_identical(resumed, straight)
    assert resumed.diagnostics["resumed"] is True


def test_resume_across_worker_counts(graph, tmp_path):
    """A checkpoint written by a 2-worker run resumes in-process (and
    vice versa) without moving a single sample."""
    path = str(tmp_path / "ck.npz")
    straight = _FACTORIES["adaalg"](
        engine="epoch", epoch_size=100, workers=2
    ).run(graph, 3)
    with pytest.raises(SessionInterrupted):
        _FACTORIES["adaalg"](
            engine="epoch", epoch_size=100, workers=2,
            checkpoint_path=path, stop_after_checkpoints=1,
        ).run(graph, 3)
    resumed = _FACTORIES["adaalg"](
        engine="epoch", epoch_size=100, workers=0, resume_from=path
    ).run(graph, 3)
    _assert_identical(resumed, straight)


def test_checkpoint_records_epoch_size(graph, tmp_path):
    path = str(tmp_path / "ck.npz")
    with pytest.raises(SessionInterrupted):
        _FACTORIES["adaalg"](
            engine="epoch", epoch_size=100,
            checkpoint_path=path, stop_after_checkpoints=1,
        ).run(graph, 3)
    meta = SamplingSession.peek(path)
    assert meta["provenance"]["engine"] == "epoch"
    assert meta["provenance"]["epoch_size"] == 100
    # every lane's RNG state sits on an epoch boundary
    for state in meta["rng_states"]:
        assert state["bit_generator"] == "repro-epoch-stream"
        assert state["epoch_size"] == 100


def test_session_extends_land_on_epoch_boundaries(graph):
    session = SamplingSession(
        graph, lanes=1, seed=0, engine="epoch", epoch_size=64
    )
    with session:
        session.extend(100)
        assert session.store(0).num_paths == 128
        # the schedule records what is actually there, so warm-started
        # reuse sees the real pool size
        assert session.store(0).draw_schedule == [128]
        session.extend(120)  # already satisfied by the overshoot
        assert session.store(0).num_paths == 128
        assert session.store(0).draw_schedule == [128]


def test_session_round_trips_epoch_engine(graph, tmp_path):
    path = str(tmp_path / "ck.npz")
    session = SamplingSession(
        graph, lanes=2, seed=9, engine="epoch", epoch_size=64, workers=2
    )
    with session:
        session.extend(128, lane=0)
        session.extend(64, lane=1)
        session.checkpoint(path)
        session.extend(256, lane=0)
        expected = session.store(0).export_arrays()
    thawed, _state = SamplingSession.resume(path, graph)
    with thawed:
        assert thawed.provenance["epoch_size"] == 64
        thawed.extend(256, lane=0)
        observed = thawed.store(0).export_arrays()
    for key in ("flat", "offsets", "degrees"):
        assert (observed[key] == expected[key]).all()
