"""Unit tests for :class:`repro.session.SamplingSession`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CheckpointError, ParameterError
from repro.graph import barabasi_albert, erdos_renyi
from repro.obs import Telemetry
from repro.session import SamplingSession


@pytest.fixture
def graph():
    return barabasi_albert(60, 2, seed=3)


class TestLifecycle:
    def test_lanes_and_stores(self, graph):
        with SamplingSession(graph, lanes=2, seed=1) as session:
            assert session.lanes == 2
            assert session.total_samples == 0
            assert session.store(0) is not session.store(1)

    def test_extend_grows_and_counts(self, graph):
        with SamplingSession(graph, seed=1) as session:
            assert session.extend(50) == 50
            assert session.extend(30) == 0  # already covered
            assert session.extend(80) == 30
            assert session.samples_drawn == 80
            assert session.store(0).draw_schedule == [50, 80]

    def test_lane_streams_are_independent(self, graph):
        with SamplingSession(graph, lanes=2, seed=1) as session:
            session.extend(40, lane=0)
            session.extend(40, lane=1)
            a = session.store(0).path(0)
            b = session.store(1).path(0)
            assert a.shape != b.shape or not np.array_equal(a, b)

    def test_at_least_one_lane(self, graph):
        with pytest.raises(ParameterError):
            SamplingSession(graph, lanes=0)

    def test_repr_mentions_state(self, graph):
        with SamplingSession(graph, seed=1) as session:
            text = repr(session)
            assert "lanes=1" in text and "resumed=False" in text


class TestCheckpointResume:
    def test_round_trip_restores_everything(self, graph, tmp_path):
        path = str(tmp_path / "ck.npz")
        with SamplingSession(graph, lanes=2, seed=7) as session:
            session.extend(60, lane=0)
            session.extend(25, lane=1)
            session.checkpoint(path, state={"loop": {"q": 3}})
        thawed, state = SamplingSession.resume(path, graph)
        with thawed:
            assert thawed.resumed
            assert thawed.checkpoints_written == 1
            assert state == {"loop": {"q": 3}}
            assert thawed.total_samples == 85
            assert thawed.store(0).num_paths == 60

    def test_resume_continues_bit_identically(self, graph, tmp_path):
        path = str(tmp_path / "ck.npz")
        with SamplingSession(graph, seed=42) as straight:
            straight.extend(50)
            straight.extend(120)
            reference = [straight.store(0).path(i) for i in range(120)]
        with SamplingSession(graph, seed=42) as first:
            first.extend(50)
            first.checkpoint(path)
        thawed, _ = SamplingSession.resume(path, graph)
        with thawed:
            thawed.extend(120)
            for i in (0, 49, 50, 119):
                assert np.array_equal(thawed.store(0).path(i), reference[i])

    def test_peek_reads_meta_without_arrays(self, graph, tmp_path):
        path = str(tmp_path / "ck.npz")
        with SamplingSession(graph, lanes=2, seed=7, engine="serial") as session:
            session.extend(10)
            session.checkpoint(path)
        meta = SamplingSession.peek(path)
        assert meta["lanes"] == 2
        assert meta["provenance"]["engine"] == "serial"
        assert meta["num_paths"] == [10, 0]

    def test_resume_rejects_other_graph(self, graph, tmp_path):
        path = str(tmp_path / "ck.npz")
        with SamplingSession(graph, seed=1) as session:
            session.extend(5)
            session.checkpoint(path)
        other = erdos_renyi(30, 0.2, seed=0)
        with pytest.raises(CheckpointError) as excinfo:
            SamplingSession.resume(path, other)
        # the error names BOTH fingerprints so the operator can see
        # what was swapped, not just that something was
        message = str(excinfo.value)
        assert "fingerprint mismatch" in message
        assert f'"n": {graph.n}' in message
        assert f'"n": {other.n}' in message

    def test_resume_rejects_mismatched_mmap_graph(self, graph, tmp_path):
        """The fingerprint guard must cover graphs loaded through the
        out-of-core mmap tier, and the error must say which spill
        directory the wrong graph came from."""
        from repro.graph.mmap import load_mmap, save_mmap

        path = str(tmp_path / "ck.npz")
        with SamplingSession(graph, seed=1) as session:
            session.extend(5)
            session.checkpoint(path)
        other = erdos_renyi(30, 0.2, seed=0)
        spill = save_mmap(other, str(tmp_path / "other.graph"))
        mapped = load_mmap(spill)
        with pytest.raises(CheckpointError) as excinfo:
            SamplingSession.resume(path, mapped)
        message = str(excinfo.value)
        assert "fingerprint mismatch" in message
        assert "mmap" in message and "other.graph" in message

    def test_resume_accepts_same_graph_via_mmap(self, graph, tmp_path):
        """Round-tripping the SAME graph through the mmap tier keeps
        its checkpoints resumable — n/m/directedness/weights all agree."""
        from repro.graph.mmap import load_mmap, save_mmap

        path = str(tmp_path / "ck.npz")
        with SamplingSession(graph, seed=1) as session:
            session.extend(5)
            session.checkpoint(path)
        mapped = load_mmap(save_mmap(graph, str(tmp_path / "same.graph")))
        thawed, _ = SamplingSession.resume(path, mapped)
        with thawed:
            assert thawed.total_samples == 5

    def test_peek_rejects_foreign_npz(self, tmp_path):
        path = str(tmp_path / "other.npz")
        np.savez(path, meta=np.asarray('{"format": "something-else"}'))
        with pytest.raises(CheckpointError):
            SamplingSession.peek(path)

    def test_checkpoint_count_survives_lineage(self, graph, tmp_path):
        path = str(tmp_path / "ck.npz")
        with SamplingSession(graph, seed=1) as session:
            session.extend(5)
            session.checkpoint(path)
            session.checkpoint(path)
        thawed, _ = SamplingSession.resume(path, graph)
        with thawed:
            thawed.checkpoint(path)
            assert thawed.checkpoints_written == 3


class TestTelemetry:
    def test_session_counters_and_spans(self, graph, tmp_path):
        hub = Telemetry()
        path = str(tmp_path / "ck.npz")
        with SamplingSession(graph, seed=1, telemetry=hub) as session:
            session.extend(20)
            session.checkpoint(path)
        SamplingSession.resume(path, graph, telemetry=hub)[0].close()
        snapshot = hub.snapshot()
        counters = snapshot["counters"]
        assert counters["session.samples_drawn"] == 20
        assert counters["session.extend_calls"] == 1
        assert counters["session.checkpoints"] == 1
        assert counters["session.restores"] == 1
        span_paths = set(snapshot["spans"])
        assert any("checkpoint" in path for path in span_paths)
        assert any("restore" in path for path in span_paths)
